"""Package metadata and install configuration.

The project is a plain src-layout package; tests run straight off the tree
with ``PYTHONPATH=src`` (no install needed), so the dependency story lives
here: the library itself is dependency-free, and the ``test`` extra pins the
floor versions CI installs (``hypothesis`` powers the differential
property-test harness in ``tests/``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-provenance-semirings",
    version="1.0.0",
    description=(
        "Reproduction of 'Provenance Semirings' (Green, Karvounarakis & "
        "Tannen, PODS 2007): K-relations, positive relational algebra and "
        "datalog over arbitrary commutative semirings"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "pytest-cov>=4.0",
            "hypothesis>=6.80",
        ],
    },
)
