"""The knowledge-compilation map, structurally: d-DNNF properties on circuits.

Darwiche and Marquis organize Boolean-circuit languages by which queries they
answer in polynomial time; the properties that matter for exact probabilistic
inference are

* **decomposability** -- conjuncts share no variables, so the probability of
  an AND is the product of the probabilities of its children;
* **determinism** -- disjuncts are pairwise logically inconsistent, so the
  probability of an OR is the sum of the probabilities of its children;
* **smoothness** -- all disjuncts mention the same variables, so no
  marginalization correction is needed when summing.

Together they make weighted model counting (and with it exact
tuple-probability computation over lineage, Jha-Suciu style) a *single
linear pass* over the DAG -- see :func:`repro.circuits.evaluate.wmc`.

The checks here are *structural and sound*: a ``True`` answer is a proof the
property holds (decomposability via variable supports, determinism via
certain-literal conflicts, smoothness via support equality), while ``False``
only means the structure does not exhibit the property -- semantic
determinism in general is coNP-hard, which is precisely why the compiler
(:mod:`repro.circuits.compile`) produces circuits whose determinism and
decomposability are evident by construction: every :class:`Decision` gate
branches on complementary literals of one variable and conditions that
variable out of both branches.

:func:`smooth` upgrades a compiled decision diagram to the *smooth* form by
re-inserting redundant tests (``ite(x, f, f)``) for skipped variables -- the
quasi-reduction of the OBDD literature -- and :func:`to_nnf` expands decision
gates into the ``x·hi + ¬x·lo`` sum-of-guarded-products form, exhibiting the
result as an ordinary (negation-normal-form) d-DNNF.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.circuits.nodes import (
    ZERO,
    Const,
    Decision,
    Node,
    Not,
    Prod,
    Sum,
    Var,
    decision_node,
    iter_nodes,
    not_node,
    prod_node,
    sum_node,
    var,
)
from repro.errors import SemiringError

__all__ = [
    "variable_supports",
    "is_decomposable",
    "is_deterministic",
    "is_smooth",
    "check_ddnnf",
    "classify",
    "smooth",
    "to_nnf",
]

#: A literal: (variable name, phase).  ``("x", True)`` is ``x``, ``("x", False)``
#: is ``¬x``.
Literal = Tuple[str, bool]


def variable_supports(*roots: Node) -> Dict[int, FrozenSet[str]]:
    """Per-node variable supports (node id -> variables the node depends on).

    One bottom-up pass; decision gates contribute their own test variable in
    addition to both branches'.
    """
    supports: Dict[int, FrozenSet[str]] = {}
    for node in iter_nodes(*roots):
        if isinstance(node, Var):
            supports[node._id] = frozenset((node.name,))
        elif isinstance(node, Const):
            supports[node._id] = frozenset()
        elif isinstance(node, Not):
            supports[node._id] = supports[node.child._id]
        elif isinstance(node, Decision):
            supports[node._id] = (
                supports[node.hi._id] | supports[node.lo._id] | {node.name}
            )
        else:
            merged: FrozenSet[str] = frozenset()
            for child in node.children:
                merged = merged | supports[child._id]
            supports[node._id] = merged
    return supports


def is_decomposable(root: Node) -> bool:
    """Structural decomposability: conjuncts (and decision branches) share no
    variables.

    ``Prod`` children must have pairwise disjoint supports, and neither
    branch of a ``Decision`` may mention its own test variable (the branches
    *may* share variables with each other -- the gate's implicit conjunctions
    are with the guard literals only).
    """
    supports = variable_supports(root)
    for node in iter_nodes(root):
        if isinstance(node, Prod):
            seen: set[str] = set()
            for child in node.children:
                child_support = supports[child._id]
                if seen & child_support:
                    return False
                seen |= child_support
        elif isinstance(node, Decision):
            if node.name in supports[node.hi._id] or node.name in supports[node.lo._id]:
                return False
    return True


def _certain_literals(root: Node) -> Dict[int, FrozenSet[Literal]]:
    """Literals entailed by every model of each node (bottom-up, sound).

    * a literal entails itself;
    * a product entails the union of what its factors entail;
    * a sum (or a decision gate) entails the intersection over its branches,
      with each decision branch additionally entailing its guard literal;
    * the unsatisfiable ``ZERO`` entails everything -- represented by
      ``None`` and treated as the absorbing element of intersection.
    """
    certain: Dict[int, FrozenSet[Literal] | None] = {}
    for node in iter_nodes(root):
        if isinstance(node, Var):
            certain[node._id] = frozenset(((node.name, True),))
        elif isinstance(node, Not):
            certain[node._id] = frozenset(((node.child.name, False),))
        elif isinstance(node, Const):
            certain[node._id] = None if node.value == 0 else frozenset()
        elif isinstance(node, Prod):
            merged: FrozenSet[Literal] | None = frozenset()
            for child in node.children:
                child_lits = certain[child._id]
                if child_lits is None:
                    merged = None
                    break
                merged = merged | child_lits
            certain[node._id] = merged
        elif isinstance(node, Decision):
            hi = certain[node.hi._id]
            lo = certain[node.lo._id]
            hi = None if hi is None else hi | {(node.name, True)}
            lo = None if lo is None else lo | {(node.name, False)}
            if hi is None:
                certain[node._id] = lo
            elif lo is None:
                certain[node._id] = hi
            else:
                certain[node._id] = hi & lo
        else:  # Sum
            acc: FrozenSet[Literal] | None = None
            all_false = True
            for child in node.children:
                child_lits = certain[child._id]
                if child_lits is None:
                    continue
                all_false = False
                acc = child_lits if acc is None else acc & child_lits
            certain[node._id] = None if all_false else (acc or frozenset())
    # Downgrade the ``None`` sentinel: callers only need *some* sound set.
    return {
        node_id: (lits if lits is not None else frozenset())
        for node_id, lits in certain.items()
    }


def _conflict(a: FrozenSet[Literal], b: FrozenSet[Literal]) -> bool:
    """Whether two certain-literal sets contain an opposite pair."""
    if len(b) < len(a):
        a, b = b, a
    return any((name, not phase) in b for name, phase in a)


def is_deterministic(root: Node) -> bool:
    """Structural determinism: every ``Sum``'s children pairwise conflict.

    Decision gates are deterministic by construction (complementary guard
    literals); for explicit ``Sum`` gates the check demands a *certain
    literal* conflict between every pair of children -- the Shannon shape
    ``x·f + ¬x·g`` passes, a plain provenance union ``x + y`` does not.
    ``ZERO`` children (unsatisfiable) conflict with everything.
    """
    certain = _certain_literals(root)
    for node in iter_nodes(root):
        if isinstance(node, Sum):
            children = node.children
            for i in range(len(children)):
                if children[i] is ZERO:
                    continue
                for j in range(i + 1, len(children)):
                    if children[j] is ZERO:
                        continue
                    if not _conflict(certain[children[i]._id], certain[children[j]._id]):
                        return False
    return True


def is_smooth(root: Node, variables: Iterable[str] | None = None) -> bool:
    """Structural smoothness: all disjuncts (and decision branches) mention
    the same variables.

    With ``variables`` given, additionally requires the root's support to be
    exactly that set -- the form needed for model enumeration over a fixed
    variable universe (top-k, MAP).
    """
    supports = variable_supports(root)
    for node in iter_nodes(root):
        if isinstance(node, Sum):
            child_supports = {supports[child._id] for child in node.children}
            if len(child_supports) > 1:
                return False
        elif isinstance(node, Decision):
            if supports[node.hi._id] != supports[node.lo._id]:
                return False
    if variables is not None:
        return supports[root._id] == frozenset(variables)
    return True


def classify(root: Node) -> Dict[str, bool]:
    """The structural property profile of a circuit (d-DNNF membership et al.)."""
    decomposable = is_decomposable(root)
    deterministic = is_deterministic(root)
    return {
        "decomposable": decomposable,
        "deterministic": deterministic,
        "smooth": is_smooth(root),
        "d-DNNF": decomposable and deterministic,
    }


def check_ddnnf(root: Node) -> None:
    """Raise unless the circuit is structurally deterministic-decomposable."""
    if not is_decomposable(root):
        raise SemiringError(
            "circuit is not decomposable: a conjunction shares variables between factors"
        )
    if not is_deterministic(root):
        raise SemiringError(
            "circuit is not (structurally) deterministic: "
            "a disjunction has possibly-overlapping branches"
        )


def _decision_level(node: Node, index: Dict[str, int], depth: int) -> int:
    """The order index of a decision node's variable (``depth`` for leaves)."""
    if isinstance(node, Decision):
        return index[node.name]
    return depth


def smooth(root: Node, order: Sequence[str]) -> Node:
    """Quasi-reduce a decision diagram: test *every* order variable on every path.

    The input must be an ordered decision diagram over ``order`` (what the
    compiler emits); the output denotes the same function but every
    root-to-leaf path decides every variable, re-inserting ``ite(x, f, f)``
    gates (``collapse=False``) where the reduced form skipped ``x``.  Models
    then correspond bijectively to root-to-leaf paths, which is what the
    top-k and MAP passes enumerate.
    """
    index = {name: i for i, name in enumerate(order)}
    depth = len(order)
    for node in iter_nodes(root):
        if isinstance(node, (Sum, Prod, Not, Var)):
            raise SemiringError(
                "smooth() expects a compiled decision diagram; "
                f"found a {type(node).__name__} gate (compile first)"
            )
        if isinstance(node, Decision):
            if node.name not in index:
                raise SemiringError(
                    f"decision variable {node.name!r} is not in the smoothing order"
                )
            level = index[node.name]
            for branch in (node.hi, node.lo):
                if _decision_level(branch, index, depth) <= level:
                    raise SemiringError(
                        "smooth() expects an *ordered* decision diagram: "
                        f"{node.name!r} is tested above a branch deciding an "
                        "earlier (or the same) order variable"
                    )
    # memo[(node id, level)]: the smoothed equivalent of ``node`` in which
    # all of order[level:] are tested.  Built iteratively, deepest level
    # first, to stay recursion-free on long orders.
    memo: Dict[Tuple[int, int], Node] = {}
    nodes = list(iter_nodes(root))
    for level in range(depth, -1, -1):
        for node in nodes:
            node_level = _decision_level(node, index, depth)
            if node_level < level:
                continue
            if level == depth:
                if isinstance(node, Const):
                    memo[(node._id, level)] = node
                continue
            if node_level == level:
                # ``node`` decides order[level] itself: smooth both branches
                # from the next level down.
                assert isinstance(node, Decision)
                memo[(node._id, level)] = decision_node(
                    node.name,
                    memo[(node.hi._id, level + 1)],
                    memo[(node.lo._id, level + 1)],
                    collapse=False,
                )
            else:
                # ``node`` skips order[level]: insert a redundant test.
                skipped = memo[(node._id, level + 1)]
                memo[(node._id, level)] = decision_node(
                    order[level], skipped, skipped, collapse=False
                )
    return memo[(root._id, 0)]


def to_nnf(root: Node) -> Node:
    """Expand decision gates into guarded sums: ``ite(x, f, g) -> x·f + ¬x·g``.

    The result is an explicit negation-normal-form circuit; on compiler
    output it is a d-DNNF in the classical presentation (and smooth if the
    input was smoothed), with determinism still structurally checkable via
    the complementary guard literals.  ``ZERO`` branches simplify away
    through the constructors, exactly as in the standard reduction.
    """
    rebuilt: Dict[int, Node] = {}
    for node in iter_nodes(root):
        if isinstance(node, (Var, Const)):
            rebuilt[node._id] = node
        elif isinstance(node, Not):
            rebuilt[node._id] = not_node(rebuilt[node.child._id])
        elif isinstance(node, Decision):
            guard = var(node.name)
            rebuilt[node._id] = sum_node(
                prod_node(guard, rebuilt[node.hi._id]),
                prod_node(not_node(guard), rebuilt[node.lo._id]),
            )
        elif isinstance(node, Sum):
            rebuilt[node._id] = sum_node(*(rebuilt[c._id] for c in node.children))
        else:
            rebuilt[node._id] = prod_node(*(rebuilt[c._id] for c in node.children))
    return rebuilt[root._id]
