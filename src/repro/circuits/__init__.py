"""Provenance circuits: hash-consed DAG annotations for RA and datalog.

The compact successor to the expanded ``N[X]`` polynomials of Section 4:
same semantics by universality (Proposition 4.2 / Theorem 4.3),
polynomially smaller objects under deep joins and fixpoints, and one
memoized pass per valuation instead of monomial-by-monomial re-evaluation.

* :mod:`repro.circuits.nodes` -- immutable, interned ``Var``/``Const``/
  ``Sum``/``Prod`` nodes forming a DAG with structural sharing;
* :mod:`repro.circuits.semiring` -- :class:`CircuitSemiring`, a drop-in
  annotation semiring for K-relations and the datalog engine;
* :mod:`repro.circuits.evaluate` -- the memoized ``Eval_v`` pass,
  polynomial converters, :func:`specialize` (one query, many semirings),
  and the linear inference passes (``wmc`` / ``map_model`` /
  ``top_k_models``) over compiled circuits;
* :mod:`repro.circuits.knowledge` -- the structural property layer of the
  knowledge-compilation map (decomposability, determinism, smoothness);
* :mod:`repro.circuits.compile` -- Shannon-expansion compilation of any
  provenance circuit or PosBool condition into an ordered decision diagram,
  the engine behind ``method="compile"`` probabilistic inference.
"""

from repro.circuits.compile import (
    CircuitCompiler,
    CompiledCircuit,
    choose_variable_order,
    compile_circuit,
)
from repro.circuits.evaluate import (
    CircuitEvaluator,
    circuit_evaluation,
    eval_circuit,
    from_polynomial,
    map_model,
    restrict_vars,
    specialize,
    to_polynomial,
    top_k_models,
    wmc,
)
from repro.circuits.knowledge import (
    check_ddnnf,
    classify,
    is_decomposable,
    is_deterministic,
    is_smooth,
    smooth,
    to_nnf,
)
from repro.circuits.nodes import (
    ONE,
    ZERO,
    Const,
    Decision,
    Node,
    Not,
    Prod,
    Sum,
    Var,
    circuit_depth,
    circuit_variables,
    const,
    decision_node,
    iter_nodes,
    node_count,
    not_node,
    prod_node,
    render,
    sum_node,
    var,
)
from repro.circuits.semiring import CircuitSemiring

__all__ = [
    "Node",
    "Var",
    "Const",
    "Sum",
    "Prod",
    "Not",
    "Decision",
    "ZERO",
    "ONE",
    "var",
    "const",
    "sum_node",
    "prod_node",
    "not_node",
    "decision_node",
    "iter_nodes",
    "node_count",
    "circuit_depth",
    "circuit_variables",
    "render",
    "CircuitSemiring",
    "CircuitEvaluator",
    "eval_circuit",
    "circuit_evaluation",
    "to_polynomial",
    "from_polynomial",
    "specialize",
    "restrict_vars",
    "wmc",
    "map_model",
    "top_k_models",
    "is_decomposable",
    "is_deterministic",
    "is_smooth",
    "classify",
    "check_ddnnf",
    "smooth",
    "to_nnf",
    "CircuitCompiler",
    "CompiledCircuit",
    "compile_circuit",
    "choose_variable_order",
]
