"""Provenance circuits: hash-consed DAG annotations for RA and datalog.

The compact successor to the expanded ``N[X]`` polynomials of Section 4:
same semantics by universality (Proposition 4.2 / Theorem 4.3),
polynomially smaller objects under deep joins and fixpoints, and one
memoized pass per valuation instead of monomial-by-monomial re-evaluation.

* :mod:`repro.circuits.nodes` -- immutable, interned ``Var``/``Const``/
  ``Sum``/``Prod`` nodes forming a DAG with structural sharing;
* :mod:`repro.circuits.semiring` -- :class:`CircuitSemiring`, a drop-in
  annotation semiring for K-relations and the datalog engine;
* :mod:`repro.circuits.evaluate` -- the memoized ``Eval_v`` pass,
  polynomial converters, and :func:`specialize` (one query, many
  semirings).
"""

from repro.circuits.evaluate import (
    CircuitEvaluator,
    circuit_evaluation,
    eval_circuit,
    from_polynomial,
    restrict_vars,
    specialize,
    to_polynomial,
)
from repro.circuits.nodes import (
    ONE,
    ZERO,
    Const,
    Node,
    Prod,
    Sum,
    Var,
    circuit_depth,
    circuit_variables,
    const,
    iter_nodes,
    node_count,
    prod_node,
    render,
    sum_node,
    var,
)
from repro.circuits.semiring import CircuitSemiring

__all__ = [
    "Node",
    "Var",
    "Const",
    "Sum",
    "Prod",
    "ZERO",
    "ONE",
    "var",
    "const",
    "sum_node",
    "prod_node",
    "iter_nodes",
    "node_count",
    "circuit_depth",
    "circuit_variables",
    "render",
    "CircuitSemiring",
    "CircuitEvaluator",
    "eval_circuit",
    "circuit_evaluation",
    "to_polynomial",
    "from_polynomial",
    "specialize",
    "restrict_vars",
]
