"""Knowledge compilation: provenance circuits -> ordered decision diagrams.

This is the bridge from provenance to *tractable* exact probabilistic
inference (the Jha-Suciu route): the lineage of an answer tuple -- an
``N[X]``/``Circ[X]`` circuit or a ``PosBool(X)`` condition over the
tuple-independent base facts -- is compiled by **Shannon expansion**

    f  =  x · f[x := 1]  +  ¬x · f[x := 0]

into a DAG of :class:`~repro.circuits.nodes.Decision` gates.  The result is
deterministic and decomposable *by construction* (each gate branches on
complementary literals of one variable and conditions that variable out of
both branches), i.e. a d-DNNF/OBDD-style form in the Darwiche-Marquis
knowledge-compilation map, on which weighted model counting, top-k model
enumeration and MAP are single linear passes
(:func:`repro.circuits.evaluate.wmc` and friends).

Three kinds of sharing keep compilation polynomial whenever a small diagram
exists:

* restricted circuits are built through the hash-consing factories, so
  syntactically equal cofactors are *identical* nodes;
* the compiler memoizes compiled results per restricted circuit
  (``self`` -- the compile cache), so equal cofactors compile once, which is
  exactly the OBDD node-merging rule;
* one :class:`CircuitCompiler` can be shared across all the annotations of a
  relation (as the probabilistic layer does), extending both caches across
  answer tuples whose lineages overlap.

The branching order is chosen by a small cost model
(:func:`choose_variable_order`): the default ``"dfs"`` model orders
variables by first touch in a depth-first walk of the circuit, keeping
co-occurring variables adjacent -- the right shape for the join/fixpoint
lineages this system produces (series-parallel-ish), where locality bounds
the live frontier of the expansion.  The ``"frequency"`` model (most shared
variables first) is available for comparison, and an explicit order always
wins.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Sequence, Tuple

from repro.circuits.knowledge import check_ddnnf, smooth
from repro.circuits.nodes import (
    ONE,
    ZERO,
    Const,
    Decision,
    Node,
    Not,
    Prod,
    Sum,
    Var,
    decision_node,
    iter_nodes,
    node_count,
    prod_node,
    sum_node,
    var,
)
from repro.errors import SemiringError
from repro.obs.metrics import compilation as _compile_stats
from repro.obs.trace import span
from repro.semirings.posbool import BoolExpr

__all__ = [
    "choose_variable_order",
    "CircuitCompiler",
    "CompiledCircuit",
    "compile_circuit",
    "clear_compile_cache",
]

ORDER_MODELS = ("dfs", "frequency")


def as_circuit(value: Any) -> Node:
    """Read ``value`` as a circuit: a node, a PosBool condition, or anything
    :class:`~repro.circuits.semiring.CircuitSemiring` can coerce (polynomials,
    monomials, variable names, ints)."""
    if isinstance(value, Node):
        return value
    if isinstance(value, BoolExpr):
        return sum_node(
            *(prod_node(*(var(name) for name in sorted(clause))) for clause in value.clauses)
        ) if not value.is_true else ONE
    from repro.circuits.semiring import CircuitSemiring

    return CircuitSemiring().coerce(value)


def _dfs_first_touch(roots: Sequence[Node]) -> Dict[str, int]:
    """First-touch index of every variable in a deterministic DFS walk."""
    order: Dict[str, int] = {}
    seen: set[int] = set()
    stack: List[Node] = list(reversed(roots))
    while stack:
        node = stack.pop()
        if node._id in seen:
            continue
        seen.add(node._id)
        if isinstance(node, Var):
            order.setdefault(node.name, len(order))
        elif isinstance(node, Not):
            order.setdefault(node.child.name, len(order))
            stack.append(node.child)
        elif isinstance(node, Decision):
            order.setdefault(node.name, len(order))
            stack.append(node.lo)
            stack.append(node.hi)
        elif isinstance(node, (Sum, Prod)):
            stack.extend(reversed(node.children))
    return order


def choose_variable_order(*roots: Node, model: str = "dfs") -> Tuple[str, ...]:
    """Pick a branching order for Shannon expansion over ``roots``.

    ``model="dfs"`` (default): variables in order of first touch during a
    depth-first walk -- a locality heuristic that keeps variables which are
    multiplied together adjacent in the order, bounding the number of
    simultaneously "live" cofactors (the decision-diagram width).

    ``model="frequency"``: variables by descending reference count (gates
    pointing at the leaf), the classic most-constrained-first rule;
    first-touch order breaks ties so the result stays deterministic.
    """
    if model not in ORDER_MODELS:
        raise SemiringError(f"unknown order model {model!r} (have {ORDER_MODELS})")
    touch = _dfs_first_touch(roots)
    if model == "dfs":
        return tuple(sorted(touch, key=touch.__getitem__))
    counts: Dict[str, int] = {name: 0 for name in touch}
    for node in iter_nodes(*roots):
        if isinstance(node, (Sum, Prod)):
            for child in node.children:
                if isinstance(child, Var):
                    counts[child.name] += 1
                elif isinstance(child, Not):
                    counts[child.child.name] += 1
        elif isinstance(node, Decision):
            counts[node.name] += 1
    return tuple(sorted(counts, key=lambda name: (-counts[name], touch[name])))


@dataclass(frozen=True)
class CompiledCircuit:
    """A circuit in compiled (ordered-decision-diagram) form.

    ``root`` contains only :class:`Decision` gates over ``order`` and the
    constant leaves, denotes the same Boolean function as ``source`` under
    the Boolean abstraction (a world satisfies an ``N``-circuit iff it
    evaluates to non-zero), and is structurally deterministic and
    decomposable -- the inference passes below are exact single passes.
    """

    source: Node
    root: Node
    order: Tuple[str, ...]
    stats: Mapping[str, Any] = field(compare=False, default_factory=dict)

    @property
    def variables(self) -> FrozenSet[str]:
        """The variables the compiled function may depend on."""
        return frozenset(self.order)

    @property
    def size(self) -> int:
        """Distinct DAG nodes of the compiled form."""
        return node_count(self.root)

    def wmc(self, weights: Mapping[str, float]) -> float:
        """Weighted model count: ``P(source is true)`` under independent
        ``weights`` (variable -> marginal probability)."""
        from repro.circuits.evaluate import wmc

        return wmc(self.root, weights)

    def map_model(
        self, weights: Mapping[str, float]
    ) -> Tuple[float, Dict[str, bool]] | None:
        """The most probable satisfying assignment (or ``None`` if unsatisfiable)."""
        from repro.circuits.evaluate import map_model

        return map_model(self.root, weights, order=self.order)

    def top_k(
        self, weights: Mapping[str, float], k: int
    ) -> List[Tuple[float, Dict[str, bool]]]:
        """The ``k`` most probable satisfying assignments, most probable first."""
        from repro.circuits.evaluate import top_k_models

        return top_k_models(self.root, weights, k, order=self.order)

    def evaluate(self, target, valuation: Mapping[str, Any], *, complement=None) -> Any:
        """Evaluate the compiled form in a semiring (negation via ``complement``).

        For a semiring with complements -- e.g. the event semiring
        ``P(Omega)`` -- this reads the compiled diagram back as an event,
        which is how the differential tests check compilation against the
        enumeration oracle.
        """
        from repro.circuits.evaluate import CircuitEvaluator

        return CircuitEvaluator(target, valuation, complement=complement)(self.root)

    def smoothed(self) -> "CompiledCircuit":
        """The smooth form: every path decides every variable of ``order``."""
        return CompiledCircuit(
            source=self.source,
            root=smooth(self.root, self.order),
            order=self.order,
            stats=dict(self.stats),
        )


class CircuitCompiler:
    """Shannon-expansion compiler with persistent caches.

    One compiler instance should be reused for every annotation of a
    relation: the compile cache (restricted circuit -> compiled node), the
    conditioning cache and the support table are all keyed by interned node
    identity, so lineages that share subcircuits share compilation work --
    the same argument that makes :class:`CircuitEvaluator` relation-level.

    ``order`` fixes the global branching order (an OBDD-style total order);
    when omitted, the first :meth:`compile` call chooses one from its root
    via the ``model`` cost model and later calls extend it on demand with
    variables they see that the order does not yet contain.
    """

    def __init__(
        self, *, order: Sequence[str] | None = None, model: str = "dfs"
    ):
        if model not in ORDER_MODELS:
            raise SemiringError(f"unknown order model {model!r} (have {ORDER_MODELS})")
        self.model = model
        self._order: List[str] = list(order) if order is not None else []
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._order)}
        if len(self._index) != len(self._order):
            raise SemiringError("variable order contains duplicates")
        self._explicit_order = order is not None
        self._compiled: Dict[int, Node] = {}
        self._cond: Dict[Tuple[int, str, int], Node] = {}
        self._supports: Dict[int, FrozenSet[str]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def order(self) -> Tuple[str, ...]:
        """The (possibly extended) global branching order."""
        return tuple(self._order)

    # -- bookkeeping ---------------------------------------------------------
    def _ensure_ordered(self, root: Node) -> None:
        """Extend the global order with any new variables of ``root``."""
        support = self._support(root)
        missing = [name for name in support if name not in self._index]
        if not missing:
            return
        if self._explicit_order:
            raise SemiringError(
                f"circuit mentions variables outside the fixed order: {sorted(missing)}"
            )
        for name, _ in sorted(
            _dfs_first_touch((root,)).items(), key=lambda item: item[1]
        ) if self.model == "dfs" else [
            (name, 0) for name in choose_variable_order(root, model=self.model)
        ]:
            if name not in self._index:
                self._index[name] = len(self._order)
                self._order.append(name)

    def _support(self, node: Node) -> FrozenSet[str]:
        """The variable support of ``node`` (cached across the compiler)."""
        supports = self._supports
        cached = supports.get(node._id)
        if cached is not None:
            return cached
        for current in iter_nodes(node):
            if current._id in supports:
                continue
            if isinstance(current, Var):
                supports[current._id] = frozenset((current.name,))
            elif isinstance(current, Const):
                supports[current._id] = frozenset()
            elif isinstance(current, Not):
                supports[current._id] = supports[current.child._id]
            elif isinstance(current, Decision):
                supports[current._id] = (
                    supports[current.hi._id] | supports[current.lo._id] | {current.name}
                )
            else:
                merged: FrozenSet[str] = frozenset()
                for child in current.children:
                    merged = merged | supports[child._id]
                supports[current._id] = merged
        return supports[node._id]

    # -- conditioning --------------------------------------------------------
    def _condition(self, root: Node, name: str, bit: int) -> Node:
        """``root[name := bit]`` rebuilt through the simplifying factories.

        Memoized persistently per ``(node, variable, bit)``; subcircuits
        whose support does not mention ``name`` are returned as-is without
        descending, which is what makes repeated cofactoring cheap on DAGs
        with locality.
        """
        cache = self._cond
        stack: List[Node] = [root]
        while stack:
            node = stack[-1]
            key = (node._id, name, bit)
            if key in cache:
                stack.pop()
                continue
            if name not in self._support(node):
                cache[key] = node
                stack.pop()
                continue
            if isinstance(node, Var):
                cache[key] = ONE if bit else ZERO
                stack.pop()
            elif isinstance(node, Not):
                cache[key] = ZERO if bit else ONE
                stack.pop()
            elif isinstance(node, Decision):
                if node.name == name:
                    branch = node.hi if bit else node.lo
                    branch_key = (branch._id, name, bit)
                    if branch_key in cache:
                        cache[key] = cache[branch_key]
                        stack.pop()
                    else:
                        stack.append(branch)
                else:
                    hi_key = (node.hi._id, name, bit)
                    lo_key = (node.lo._id, name, bit)
                    if hi_key in cache and lo_key in cache:
                        cache[key] = decision_node(
                            node.name, cache[hi_key], cache[lo_key]
                        )
                        stack.pop()
                    else:
                        if lo_key not in cache:
                            stack.append(node.lo)
                        if hi_key not in cache:
                            stack.append(node.hi)
            else:  # Sum / Prod
                child_keys = [(child._id, name, bit) for child in node.children]
                missing = [
                    child
                    for child, child_key in zip(node.children, child_keys)
                    if child_key not in cache
                ]
                if missing:
                    stack.extend(reversed(missing))
                else:
                    parts = [cache[child_key] for child_key in child_keys]
                    rebuild = sum_node if isinstance(node, Sum) else prod_node
                    cache[key] = rebuild(*parts)
                    stack.pop()
        return cache[(root._id, name, bit)]

    # -- the expansion -------------------------------------------------------
    def _branch_variable(self, support: FrozenSet[str]) -> str:
        index = self._index
        return min(support, key=index.__getitem__)

    def _lookup(self, node: Node) -> Node | None:
        compiled = self._compiled.get(node._id)
        if compiled is not None:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return compiled

    def _compile_node(self, root: Node) -> Node:
        compiled = self._compiled
        done = self._lookup(root)
        if done is not None:
            return done
        stack: List[Node] = [root]
        while stack:
            node = stack[-1]
            if node._id in compiled:
                stack.pop()
                continue
            if isinstance(node, Const):
                compiled[node._id] = ZERO if node.value == 0 else ONE
                stack.pop()
                continue
            name = self._branch_variable(self._support(node))
            hi = self._condition(node, name, 1)
            lo = self._condition(node, name, 0)
            hi_done = self._lookup(hi)
            lo_done = self._lookup(lo)
            if hi_done is not None and lo_done is not None:
                compiled[node._id] = decision_node(name, hi_done, lo_done)
                stack.pop()
            else:
                if lo_done is None:
                    stack.append(lo)
                if hi_done is None:
                    stack.append(hi)
        return compiled[root._id]

    def compile(self, value: Any) -> CompiledCircuit:
        """Compile a circuit / PosBool condition / polynomial to decision form.

        Emits a ``circuit.compile`` span and updates the process-wide
        :data:`repro.obs.metrics.compilation` counters, so compilation cost
        shows up next to planning and execution in traces and
        ``explain(analyze=True)`` reports.
        """
        root = as_circuit(value)
        with span("circuit.compile", model=self.model) as sp:
            hits_before, misses_before = self.cache_hits, self.cache_misses
            self._ensure_ordered(root)
            compiled = self._compile_node(root)
            support = self._support(root)
            order = tuple(
                name for name in self._order if name in support
            )
            input_nodes = node_count(root)
            output_nodes = node_count(compiled)
            hits = self.cache_hits - hits_before
            misses = self.cache_misses - misses_before
            stats = {
                "input_nodes": input_nodes,
                "output_nodes": output_nodes,
                "variables": len(order),
                "cache_hits": hits,
                "cache_misses": misses,
                "model": self.model,
            }
            _compile_stats.compiles += 1
            _compile_stats.cache_hits += hits
            _compile_stats.cache_misses += misses
            _compile_stats.input_nodes += input_nodes
            _compile_stats.output_nodes += output_nodes
            sp.set(
                input_nodes=input_nodes,
                output_nodes=output_nodes,
                variables=len(order),
                cache_hits=hits,
                cache_misses=misses,
            )
            return CompiledCircuit(source=root, root=compiled, order=order, stats=stats)


#: Module-level compile cache: one entry per (source root, order spec), LRU.
_CACHE: "OrderedDict[tuple, CompiledCircuit]" = OrderedDict()
_CACHE_LIMIT = 512


def clear_compile_cache() -> None:
    """Drop every cached compilation (tests and memory-sensitive callers)."""
    _CACHE.clear()


def compile_circuit(
    value: Any,
    *,
    order: Sequence[str] | None = None,
    model: str = "dfs",
    check: bool = False,
) -> CompiledCircuit:
    """Compile one circuit, with a process-wide compile cache.

    Repeated compilation of the same (hash-consed) circuit under the same
    order specification returns the cached :class:`CompiledCircuit`.  For
    compiling *many related* circuits -- all the annotations of an answer
    relation -- build one :class:`CircuitCompiler` instead, so intermediate
    cofactors are shared too.  ``check=True`` re-verifies determinism and
    decomposability structurally on the output (they hold by construction;
    the check is a linear-pass audit used by the tests).
    """
    root = as_circuit(value)
    key = (root._id, tuple(order) if order is not None else None, model)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        return cached
    compiled = CircuitCompiler(order=order, model=model).compile(root)
    if check:
        check_ddnnf(compiled.root)
    _CACHE[key] = compiled
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
    return compiled
