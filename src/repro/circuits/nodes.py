"""Hash-consed arithmetic circuits: the DAG representation of provenance.

The paper annotates tuples with *fully expanded* polynomials of ``N[X]``
(Definition 4.1), whose size can grow exponentially with join depth and
fixpoint rounds.  The standard successor representation is an arithmetic
*circuit*: a DAG built from variables, constants, ``+`` and ``·`` gates in
which common subexpressions are stored once.  By the universality of
``N[X]`` (Proposition 4.2) a circuit denotes exactly the polynomial obtained
by expanding it, so every semantic statement about polynomial provenance
transfers verbatim; the circuit is just (often exponentially) smaller.

Nodes are immutable and **hash-consed**: construction goes through the
module-level factories (:func:`var`, :func:`const`, :func:`sum_node`,
:func:`prod_node`), which intern structurally identical nodes in a weak
table.  Consequences:

* equality of canonically-constructed circuits is *identity* (``is``), so
  ``==`` and dictionary lookups are O(1) regardless of circuit size;
* structural sharing is automatic -- re-deriving the same subcircuit during
  a fixpoint round returns the existing node, which is what makes Kleene
  iteration's convergence check cheap;
* the intern table holds weak references only, so circuits are reclaimed
  normally when no relation references them;
* nodes pickle by *reconstruction through the factories* (``__reduce__``),
  so an unpickled circuit re-interns into the receiving process's table and
  identity equality keeps holding across process boundaries (worker IPC).

``Sum``/``Prod`` children are kept sorted by interning id, which makes the
constructors commutative at the representation level (``a + b`` and
``b + a`` are the same node).  Associativity is *not* canonicalized --
``(a+b)+c`` and ``a+(b+c)`` are distinct DAGs denoting the same polynomial
-- which is the usual circuit trade-off: equality stays cheap and
conservative, while semantic equality is decided via
:func:`repro.circuits.evaluate.to_polynomial`.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Any, Dict, Iterable, Iterator, List, Tuple

from repro.errors import InvalidAnnotationError
from repro.obs.metrics import consing as _consing
from repro.semirings.numeric import NatInf

__all__ = [
    "Node",
    "Var",
    "Const",
    "Sum",
    "Prod",
    "Not",
    "Decision",
    "ZERO",
    "ONE",
    "var",
    "const",
    "sum_node",
    "prod_node",
    "not_node",
    "decision_node",
    "iter_nodes",
    "node_count",
    "circuit_depth",
    "circuit_variables",
    "render",
]

_IDS = itertools.count()
_INTERN: "weakref.WeakValueDictionary[tuple, Node]" = weakref.WeakValueDictionary()


class Node:
    """Base class of circuit nodes.  Instances are immutable and interned.

    Do not instantiate subclasses directly -- always go through the factory
    functions so that hash-consing (and with it O(1) equality) is preserved.
    Equality and hashing are identity-based, which is sound because the
    factories never create two structurally identical live nodes.
    """

    __slots__ = ("_id", "__weakref__")

    @property
    def node_id(self) -> int:
        """The interning id (creation order; stable for the node's lifetime)."""
        return self._id

    # Identity equality/hash inherited from object is exactly right for
    # hash-consed nodes; we only add the arithmetic conveniences.
    def __add__(self, other: "Node") -> "Node":
        if not isinstance(other, Node):
            return NotImplemented
        return sum_node(self, other)

    def __mul__(self, other: "Node") -> "Node":
        if not isinstance(other, Node):
            return NotImplemented
        return prod_node(self, other)

    def __str__(self) -> str:
        return render(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} id={self._id}>"


class Var(Node):
    """A provenance variable (tuple id) leaf."""

    __slots__ = ("name",)

    def __reduce__(self):
        # Unpickle through the factory so the node re-interns: default
        # unpickling would bypass the hash-cons table and break the
        # identity-based equality every circuit consumer relies on.
        return (var, (self.name,))


class Const(Node):
    """A constant leaf: a non-negative ``int`` or the infinite :class:`NatInf`."""

    __slots__ = ("value",)

    def __reduce__(self):
        return (const, (self.value,))


class Sum(Node):
    """An n-ary ``+`` gate (children sorted by interning id, length >= 2)."""

    __slots__ = ("children",)

    def __reduce__(self):
        # Gates serialize as a *flat postorder spec* rebuilt iteratively
        # through the factories: recursing node-by-node (the obvious
        # ``(sum_node, children)`` reduce) would overflow the pickler's
        # stack on circuits deeper than a few hundred gates, which datalog
        # fixpoints produce routinely.  Rebuilding through the factories
        # re-interns every node, so identity equality survives the trip.
        return (_rebuild_circuit, (_circuit_spec(self),))


class Prod(Node):
    """An n-ary ``·`` gate (children sorted by interning id, length >= 2)."""

    __slots__ = ("children",)

    def __reduce__(self):
        return (_rebuild_circuit, (_circuit_spec(self),))


class Not(Node):
    """A negated literal ``¬x`` (child is always a :class:`Var`).

    Negation enters the algebra only at the leaves (negation normal form):
    the Boolean/probabilistic semantics of an interior ``¬`` gate would not
    be expressible in the ``N``-valued provenance semiring, while negated
    *literals* are exactly what the knowledge-compiled forms (d-DNNF, OBDD)
    need to state "this derivation holds in the worlds where fact ``x`` is
    absent".  Build through :func:`not_node`.
    """

    __slots__ = ("child",)

    def __reduce__(self):
        return (_rebuild_circuit, (_circuit_spec(self),))


class Decision(Node):
    """A Shannon decision gate ``ite(x, hi, lo)`` on variable ``name``.

    Denotes ``x·hi + ¬x·lo``: the two branches are guarded by complementary
    literals, so a decision gate is *deterministic* by construction, and the
    compiler guarantees neither branch mentions ``name`` again, which makes
    it *decomposable* -- the two properties that turn probability
    computation into one linear pass (:func:`repro.circuits.evaluate.wmc`).
    Build through :func:`decision_node`.
    """

    __slots__ = ("name", "hi", "lo")

    def __reduce__(self):
        return (_rebuild_circuit, (_circuit_spec(self),))


def _circuit_spec(root: Node) -> List[tuple]:
    """Flatten ``root``'s DAG to a postorder list with child back-references.

    Each entry is ``("v", name)``, ``("c", value)`` or ``(kind, positions)``
    with ``kind`` in ``{"s", "p"}`` and ``positions`` indexing earlier
    entries; shared subcircuits appear once.  The inverse is
    :func:`_rebuild_circuit`.
    """
    position: Dict[int, int] = {}
    spec: List[tuple] = []
    for node in iter_nodes(root):
        if isinstance(node, Var):
            entry: tuple = ("v", node.name)
        elif isinstance(node, Const):
            entry = ("c", node.value)
        elif isinstance(node, Not):
            entry = ("n", position[node.child._id])
        elif isinstance(node, Decision):
            entry = ("d", (node.name, position[node.hi._id], position[node.lo._id]))
        else:
            kind = "s" if isinstance(node, Sum) else "p"
            entry = (kind, tuple(position[child._id] for child in node.children))
        position[node._id] = len(spec)
        spec.append(entry)
    return spec


def _rebuild_circuit(spec: List[tuple]) -> Node:
    """Rebuild a :func:`_circuit_spec` flat form through the interning factories."""
    nodes: List[Node] = []
    for kind, payload in spec:
        if kind == "v":
            nodes.append(var(payload))
        elif kind == "c":
            nodes.append(const(payload))
        elif kind == "n":
            nodes.append(not_node(nodes[payload]))
        elif kind == "d":
            name, hi, lo = payload
            nodes.append(decision_node(name, nodes[hi], nodes[lo], collapse=False))
        elif kind == "s":
            nodes.append(sum_node(*(nodes[i] for i in payload)))
        else:
            nodes.append(prod_node(*(nodes[i] for i in payload)))
    return nodes[-1]


def _intern(key: tuple, build) -> Node:
    node = _INTERN.get(key)
    if node is None:
        if _consing.enabled:
            _consing.misses += 1
        node = build()
        object.__setattr__(node, "_id", next(_IDS))
        _INTERN[key] = node
    elif _consing.enabled:
        _consing.hits += 1
    return node


def _check_const(value: Any) -> Any:
    """Canonicalize a constant payload: bool -> int, finite NatInf -> int."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, NatInf):
        return value if value.is_infinite else value.finite_value()
    if isinstance(value, int) and value >= 0:
        return value
    raise InvalidAnnotationError(
        f"{value!r} is not a valid circuit constant (need N or the infinite N∞ value)"
    )


def var(name: str) -> Var:
    """The (interned) variable node for tuple id ``name``."""
    if not isinstance(name, str) or not name:
        raise InvalidAnnotationError(f"{name!r} is not a valid variable name")

    def build() -> Var:
        node = Var.__new__(Var)
        object.__setattr__(node, "name", name)
        return node

    return _intern(("v", name), build)


def const(value: Any) -> Const:
    """The (interned) constant node for ``value`` (``int`` >= 0 or ``NatInf``)."""
    value = _check_const(value)

    def build() -> Const:
        node = Const.__new__(Const)
        object.__setattr__(node, "value", value)
        return node

    return _intern(("c", value), build)


def _add_values(a: Any, b: Any) -> Any:
    return _check_const(NatInf.of(a) + NatInf.of(b)) if isinstance(a, NatInf) or isinstance(b, NatInf) else a + b


def _mul_values(a: Any, b: Any) -> Any:
    return _check_const(NatInf.of(a) * NatInf.of(b)) if isinstance(a, NatInf) or isinstance(b, NatInf) else a * b


def sum_node(*parts: Node) -> Node:
    """The sum of ``parts`` with local simplification.

    Applies ``0 + x = x`` and constant folding; returns ``ZERO`` for the
    empty sum and the sole part for a singleton.  Children are ordered by
    interning id so the constructor is commutative.
    """
    children: List[Node] = []
    constant: Any = 0
    for part in parts:
        if not isinstance(part, Node):
            raise InvalidAnnotationError(f"{part!r} is not a circuit node")
        if isinstance(part, Const):
            constant = _add_values(constant, part.value)
        else:
            children.append(part)
    if constant != 0 or not children:
        children.append(const(constant))
    if len(children) == 1:
        return children[0]
    children.sort(key=lambda node: node._id)
    key = ("s", tuple(node._id for node in children))

    def build() -> Sum:
        node = Sum.__new__(Sum)
        object.__setattr__(node, "children", tuple(children))
        return node

    return _intern(key, build)


def prod_node(*parts: Node) -> Node:
    """The product of ``parts`` with local simplification.

    Applies ``1 · x = x``, ``0 · x = 0`` and constant folding; returns
    ``ONE`` for the empty product and the sole part for a singleton.
    Children are ordered by interning id so the constructor is commutative.
    """
    children: List[Node] = []
    constant: Any = 1
    for part in parts:
        if not isinstance(part, Node):
            raise InvalidAnnotationError(f"{part!r} is not a circuit node")
        if isinstance(part, Const):
            constant = _mul_values(constant, part.value)
        else:
            children.append(part)
    if constant == 0:
        return ZERO
    if constant != 1 or not children:
        children.append(const(constant))
    if len(children) == 1:
        return children[0]
    children.sort(key=lambda node: node._id)
    key = ("p", tuple(node._id for node in children))

    def build() -> Prod:
        node = Prod.__new__(Prod)
        object.__setattr__(node, "children", tuple(children))
        return node

    return _intern(key, build)


def not_node(part: Node) -> Node:
    """The negated literal ``¬part`` (negation normal form: leaves only).

    Applies ``¬¬x = x`` and constant complementation (``¬0 = 1``, ``¬c = 0``
    for non-zero ``c`` under the Boolean abstraction).  Anything but a
    variable, a constant or a negated literal is rejected: interior negation
    has no ``N[X]`` semantics, and the compiled forms never need it.
    """
    if isinstance(part, Not):
        return part.child
    if isinstance(part, Const):
        return ONE if part.value == 0 else ZERO
    if not isinstance(part, Var):
        raise InvalidAnnotationError(
            f"negation is only defined on literals, not {part!r}"
        )

    def build() -> Not:
        node = Not.__new__(Not)
        object.__setattr__(node, "child", part)
        return node

    return _intern(("n", part._id), build)


def decision_node(name: str, hi: Node, lo: Node, *, collapse: bool = True) -> Node:
    """The Shannon gate ``ite(name, hi, lo)`` with BDD-style reduction.

    ``collapse=True`` (the default) applies the reduction rule
    ``ite(x, f, f) = f``, which is what keeps compiled decision diagrams
    small; :func:`repro.circuits.knowledge.smooth` passes ``collapse=False``
    to *keep* redundant tests, because smoothness is exactly the property
    that every branch mentions the same variables.
    """
    if not isinstance(name, str) or not name:
        raise InvalidAnnotationError(f"{name!r} is not a valid decision variable")
    if not isinstance(hi, Node) or not isinstance(lo, Node):
        raise InvalidAnnotationError("decision branches must be circuit nodes")
    if collapse and hi is lo:
        return hi

    def build() -> Decision:
        node = Decision.__new__(Decision)
        object.__setattr__(node, "name", name)
        object.__setattr__(node, "hi", hi)
        object.__setattr__(node, "lo", lo)
        return node

    return _intern(("d", name, hi._id, lo._id), build)


#: The canonical additive/multiplicative identities (kept strongly alive so
#: identity checks like ``value is ZERO`` work for the process lifetime).
ZERO: Const = const(0)
ONE: Const = const(1)


# ----------------------------------------------------------------------
# Traversal and metrics (all iterative: circuits from deep fixpoints can
# exceed Python's recursion limit).
# ----------------------------------------------------------------------

def iter_nodes(*roots: Node) -> Iterator[Node]:
    """Yield every distinct node reachable from ``roots`` in postorder.

    Shared subcircuits are yielded once, which is what makes ``sum(1 for _)``
    the honest DAG size rather than the expanded-tree size.
    """
    seen: set[int] = set()
    stack: List[Tuple[Node, bool]] = [(root, False) for root in reversed(roots)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        if node._id in seen:
            continue
        seen.add(node._id)
        stack.append((node, True))
        if isinstance(node, (Sum, Prod)):
            stack.extend((child, False) for child in reversed(node.children))
        elif isinstance(node, Not):
            stack.append((node.child, False))
        elif isinstance(node, Decision):
            stack.append((node.lo, False))
            stack.append((node.hi, False))


def node_count(*roots: Node) -> int:
    """Number of distinct DAG nodes reachable from ``roots`` (with sharing)."""
    return sum(1 for _ in iter_nodes(*roots))


def circuit_depth(root: Node) -> int:
    """Length (in edges) of the longest leaf-to-root path (leaves have depth 0)."""
    depths: Dict[int, int] = {}
    for node in iter_nodes(root):
        if isinstance(node, (Sum, Prod)):
            depths[node._id] = 1 + max(depths[child._id] for child in node.children)
        elif isinstance(node, Not):
            depths[node._id] = 1 + depths[node.child._id]
        elif isinstance(node, Decision):
            depths[node._id] = 1 + max(depths[node.hi._id], depths[node.lo._id])
        else:
            depths[node._id] = 0
    return depths[root._id]


def circuit_variables(*roots: Node) -> frozenset[str]:
    """The provenance variables occurring in the circuits.

    Decision variables count: a :class:`Decision` gate *reads* its variable
    even though no :class:`Var` leaf for it need survive the compile.
    """
    names: set[str] = set()
    for node in iter_nodes(*roots):
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, Decision):
            names.add(node.name)
    return frozenset(names)


def render(root: Node) -> str:
    """Fully expanded infix rendering (``Sum`` children of ``Prod`` get parens).

    The output length can be exponential in the DAG size -- callers that may
    hold large circuits should check :func:`node_count` first (as
    ``CircuitSemiring.format_value`` does) or use the compact summary.
    """
    rendered: Dict[int, str] = {}
    for node in iter_nodes(root):
        if isinstance(node, Var):
            rendered[node._id] = node.name
        elif isinstance(node, Const):
            rendered[node._id] = str(node.value)
        elif isinstance(node, Not):
            rendered[node._id] = f"¬{rendered[node.child._id]}"
        elif isinstance(node, Decision):
            rendered[node._id] = (
                f"ite({node.name}, {rendered[node.hi._id]}, {rendered[node.lo._id]})"
            )
        elif isinstance(node, Sum):
            rendered[node._id] = " + ".join(rendered[c._id] for c in node.children)
        else:
            parts = []
            for child in node.children:
                text = rendered[child._id]
                parts.append(f"({text})" if isinstance(child, Sum) else text)
            rendered[node._id] = "·".join(parts)
    return rendered[root._id]
