"""Evaluating circuits: one memoized pass instead of monomial-by-monomial.

``Eval_v`` (Proposition 4.2) on the expanded polynomial touches every
monomial separately; on the circuit the same homomorphism is a single
bottom-up pass that visits each *distinct* DAG node once, so shared
subexpressions are evaluated once no matter how many monomials they expand
to.  :class:`CircuitEvaluator` keeps its memo table across calls, which
extends the sharing across all the annotations of a relation -- the common
case after a join-heavy query or a datalog fixpoint, where output tuples
share most of their provenance.

The module also provides the exact/expanded bridges ``to_polynomial`` /
``from_polynomial`` (semantics-preserving by construction, used by the
equivalence tests) and :func:`specialize`, which maps one circuit-annotated
relation into any target semiring without re-running the query --
Theorem 4.3 operationalized on the compact representation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.circuits.nodes import (
    Const,
    Decision,
    Node,
    Not,
    Prod,
    Sum,
    Var,
    const,
    iter_nodes,
    prod_node,
    sum_node,
    var,
)
from repro.errors import SemiringError
from repro.semirings.base import Semiring
from repro.semirings.homomorphism import SemiringHomomorphism
from repro.semirings.numeric import NatInf
from repro.semirings.polynomial import Polynomial, _scale_in

__all__ = [
    "CircuitEvaluator",
    "eval_circuit",
    "circuit_evaluation",
    "to_polynomial",
    "from_polynomial",
    "specialize",
    "restrict_vars",
    "wmc",
    "map_model",
    "top_k_models",
]


class CircuitEvaluator:
    """The homomorphism ``Eval_v`` on circuits, with a persistent memo table.

    One evaluator instance should be reused for every annotation of a
    relation (as :func:`specialize` does): the memo is keyed by interned
    node, so subcircuits shared *between* annotations are also evaluated
    only once.

    Semirings have no subtraction, so ``Not``/``Decision`` gates (which only
    compiled circuits contain) need an explicit ``complement`` callable --
    e.g. set complement for the event semiring ``P(Omega)``.  Without one,
    evaluating a compiled circuit raises: the plain positive fragment never
    produces those gates.
    """

    def __init__(
        self,
        target: Semiring,
        valuation: Mapping[str, Any],
        *,
        complement: Callable[[Any], Any] | None = None,
    ):
        self.target = target
        self.valuation = {name: target.coerce(value) for name, value in valuation.items()}
        self.complement = complement
        self._memo: Dict[int, Any] = {}

    def _lookup(self, name: str) -> Any:
        try:
            return self.valuation[name]
        except KeyError:
            raise SemiringError(f"valuation is missing variable {name!r}") from None

    def _complemented(self, name: str) -> Any:
        if self.complement is None:
            raise SemiringError(
                "evaluating a compiled circuit (with negation) needs a "
                "complement= callable; plain semirings have no subtraction"
            )
        return self.complement(self._lookup(name))

    def __call__(self, node: Node) -> Any:
        memo = self._memo
        cached = memo.get(node.node_id)
        if cached is not None:
            return cached
        target = self.target
        for current in iter_nodes(node):
            if current.node_id in memo:
                continue
            if isinstance(current, Var):
                value = self._lookup(current.name)
            elif isinstance(current, Const):
                value = _const_in(target, current.value)
            elif isinstance(current, Not):
                value = self._complemented(current.child.name)
            elif isinstance(current, Decision):
                value = target.add(
                    target.mul(self._lookup(current.name), memo[current.hi.node_id]),
                    target.mul(self._complemented(current.name), memo[current.lo.node_id]),
                )
            elif isinstance(current, Sum):
                value = target.sum(memo[child.node_id] for child in current.children)
            else:
                value = target.product(memo[child.node_id] for child in current.children)
            memo[current.node_id] = value
        return memo[node.node_id]


def _const_in(target: Semiring, value: Any) -> Any:
    """Embed a circuit constant into ``target`` (``n`` as the n-fold sum of 1)."""
    if isinstance(value, NatInf) and value.is_infinite:
        # The infinite constant is the sum of infinitely many 1s; _scale_in
        # implements the paper's treatment (idempotent -> 1, topped -> top).
        return _scale_in(target, value, target.one())
    return target.from_int(value)


def eval_circuit(node: Node, valuation: Mapping[str, Any], target_semiring: Semiring) -> Any:
    """Evaluate one circuit in ``target_semiring`` under ``valuation``.

    For many circuits sharing structure, build one :class:`CircuitEvaluator`
    and reuse it (or call :func:`specialize` on the whole relation) so the
    memo table is shared.
    """
    return CircuitEvaluator(target_semiring, valuation)(node)


def circuit_evaluation(
    target: Semiring, valuation: Mapping[str, Any], *, name: str | None = None
) -> SemiringHomomorphism:
    """The homomorphism ``Eval_v : Circ[X] -> K``, packaged like its N[X] twin.

    This is the circuit counterpart of
    :func:`repro.semirings.homomorphism.polynomial_evaluation`; by
    universality the two agree with ``to_polynomial`` in between.
    """
    from repro.circuits.semiring import CircuitSemiring

    return SemiringHomomorphism(
        CircuitSemiring(),
        target,
        CircuitEvaluator(target, valuation),
        name=name or f"Eval_v (circuit) into {target.name}",
    )


def to_polynomial(node: Node) -> Polynomial:
    """Expand a circuit into the ``N[X]`` polynomial it denotes.

    This is the semantics map: two circuits are equivalent iff their
    expansions are equal polynomials.  The expansion can be exponentially
    larger than the DAG -- that is the point of circuits -- so use this for
    testing, display of small annotations, and interoperation, not on hot
    paths.
    """
    memo: Dict[int, Polynomial] = {}
    for current in iter_nodes(node):
        if isinstance(current, (Not, Decision)):
            raise SemiringError(
                "compiled circuits (with negation/decision gates) have no N[X] "
                "polynomial expansion; expand the source circuit instead"
            )
        if isinstance(current, Var):
            value = Polynomial.var(current.name)
        elif isinstance(current, Const):
            value = Polynomial.constant(current.value)
        elif isinstance(current, Sum):
            value = Polynomial.zero()
            for child in current.children:
                value = value + memo[child.node_id]
        else:
            value = Polynomial.one()
            for child in current.children:
                value = value * memo[child.node_id]
        memo[current.node_id] = value
    return memo[node.node_id]


def from_polynomial(polynomial: Polynomial | Any) -> Node:
    """Build the (flat, sum-of-products) circuit for a polynomial.

    The result has no sharing beyond the interned leaves; it exists so that
    polynomial-annotated data can enter the circuit world, and as the other
    half of the ``to_polynomial`` round-trip used by the tests.
    """
    polynomial = Polynomial.of(polynomial)
    terms: List[Node] = []
    for monomial, coefficient in polynomial.terms:
        parts: List[Node] = []
        if coefficient != 1:
            parts.append(const(coefficient))
        for name, exponent in monomial.powers:
            parts.extend([var(name)] * exponent)
        terms.append(prod_node(*parts))
    return sum_node(*terms)


def restrict_vars(node: Node, zero_variables: "frozenset[str] | set[str]") -> Node:
    """Partially evaluate a circuit with ``zero_variables`` set to zero.

    The circuit counterpart of :meth:`Polynomial.drop_variables`: one
    memoized bottom-up pass that replaces the named variable leaves with
    ``ZERO`` and rebuilds the interior through the simplifying constructors
    (``0 · x = 0``, ``0 + x = x``), so whole subcircuits supported only by
    the zeroed variables collapse.  Other variables stay symbolic -- unlike
    :class:`CircuitEvaluator`, no full valuation is needed.  Expanding the
    result equals expanding the input and dropping every monomial that
    mentions a zeroed variable, which is what licenses provenance-assisted
    deletion: with deleted EDB facts tagged by fresh variables, this removes
    exactly the derivations they supported.
    """
    from repro.circuits.nodes import ONE, ZERO, decision_node

    memo: Dict[int, Node] = {}
    for current in iter_nodes(node):
        if isinstance(current, Var):
            value = ZERO if current.name in zero_variables else current
        elif isinstance(current, Const):
            value = current
        elif isinstance(current, Not):
            # On compiled circuits the same homomorphism applies: a zeroed
            # variable is certainly-absent, so its negation is certainly true.
            value = ONE if current.child.name in zero_variables else current
        elif isinstance(current, Decision):
            if current.name in zero_variables:
                value = memo[current.lo.node_id]
            else:
                value = decision_node(
                    current.name, memo[current.hi.node_id], memo[current.lo.node_id]
                )
        elif isinstance(current, Sum):
            value = sum_node(*(memo[child.node_id] for child in current.children))
        else:
            value = prod_node(*(memo[child.node_id] for child in current.children))
        memo[current.node_id] = value
    return memo[node.node_id]


def specialize(
    value: Any, target: Semiring, valuation: Mapping[str, Any]
) -> Any:
    """Map a circuit -- or a whole circuit-annotated K-relation -- into ``target``.

    This is "run the query once, read the answer in many semirings": the
    query is evaluated a single time over ``Circ[X]`` and each target
    (bag, tropical, fuzzy, PosBool, probability, ...) is obtained by one
    memoized pass over the shared provenance DAG.  For a
    :class:`~repro.relations.krelation.KRelation` the evaluator (and hence
    the memo) is shared across all tuples.
    """
    from repro.relations.krelation import KRelation

    evaluator = CircuitEvaluator(target, valuation)
    if isinstance(value, KRelation):
        return value.map_annotations(evaluator, target)
    if isinstance(value, Node):
        return evaluator(value)
    raise SemiringError(
        f"specialize expects a circuit node or a circuit-annotated KRelation, got {value!r}"
    )


# ---------------------------------------------------------------------------
# Inference passes on compiled circuits (repro.circuits.compile output).
#
# All three exploit the same structure: on a deterministic-decomposable
# circuit, probability distributes over products (independent supports) and
# adds over sums (disjoint models), so what is #P-hard on arbitrary lineage
# becomes one bottom-up pass over the DAG.
# ---------------------------------------------------------------------------


def _weight(weights: Mapping[str, float], name: str) -> float:
    try:
        p = float(weights[name])
    except KeyError:
        raise SemiringError(f"weights are missing variable {name!r}") from None
    if not 0.0 <= p <= 1.0:
        raise SemiringError(f"weight of {name!r} must be a probability, got {p}")
    return p


def wmc(root: Node, weights: Mapping[str, float]) -> float:
    """Weighted model counting: ``P(root true)`` in one linear pass.

    ``weights`` maps each variable to its (independent) marginal
    probability.  Exact when ``root`` is deterministic and decomposable --
    the compiler's output is, by construction; for hand-built NNF use
    :func:`repro.circuits.knowledge.check_ddnnf` first.  No smoothing is
    needed: a decision gate that skips variables marginalizes them
    implicitly because ``p + (1-p) = 1``.
    """
    memo: Dict[int, float] = {}
    for current in iter_nodes(root):
        if isinstance(current, Var):
            value = _weight(weights, current.name)
        elif isinstance(current, Const):
            value = 0.0 if current.value == 0 else 1.0
        elif isinstance(current, Not):
            value = 1.0 - _weight(weights, current.child.name)
        elif isinstance(current, Decision):
            p = _weight(weights, current.name)
            value = p * memo[current.hi.node_id] + (1.0 - p) * memo[current.lo.node_id]
        elif isinstance(current, Sum):
            value = 0.0
            for child in current.children:
                value += memo[child.node_id]
        else:
            value = 1.0
            for child in current.children:
                value *= memo[child.node_id]
        memo[current.node_id] = value
    return memo[root.node_id]


def _decision_levels(root: Node, order: Sequence[str]) -> Dict[int, int]:
    """Map each node of an *ordered* decision diagram to its order level.

    A node's level is the index of the variable it decides (``len(order)``
    for leaves); branches must decide strictly later variables, which is the
    invariant the compiler guarantees for a fixed global order.
    """
    index = {name: i for i, name in enumerate(order)}
    depth = len(order)
    levels: Dict[int, int] = {}
    for current in iter_nodes(root):
        if isinstance(current, Const):
            levels[current.node_id] = depth
        elif isinstance(current, Decision):
            try:
                level = index[current.name]
            except KeyError:
                raise SemiringError(
                    f"decision variable {current.name!r} not in the given order"
                ) from None
            for branch in (current.hi, current.lo):
                if levels[branch.node_id] <= level:
                    raise SemiringError(
                        "map_model/top_k_models expect an *ordered* decision "
                        "diagram (branches decide strictly later variables); "
                        "got an out-of-order edge at "
                        f"{current.name!r}"
                    )
            levels[current.node_id] = level
        else:
            raise SemiringError(
                "map_model/top_k_models run on compiled circuits only "
                f"(decision gates and constants); found {type(current).__name__}"
            )
    return levels


def map_model(
    root: Node, weights: Mapping[str, float], *, order: Sequence[str]
) -> Tuple[float, Dict[str, bool]] | None:
    """The most probable satisfying assignment of a compiled circuit.

    Max-product over the decision diagram, with *gap accounting*: an edge
    that skips order levels contributes ``max(p, 1-p)`` per skipped
    variable (the free variables take their individually most likely value).
    Returns ``(probability, assignment)`` over every variable of ``order``,
    or ``None`` when the circuit is unsatisfiable.  Ties break toward
    ``True``/the hi branch, deterministically.
    """
    levels = _decision_levels(root, order)
    probs = [_weight(weights, name) for name in order]
    maxes = [max(p, 1.0 - p) for p in probs]

    def gap(a: int, b: int) -> float:
        value = 1.0
        for i in range(a, b):
            value *= maxes[i]
        return value

    best: Dict[int, float] = {}
    sat: Dict[int, bool] = {}
    for current in iter_nodes(root):
        if isinstance(current, Const):
            best[current.node_id] = 0.0 if current.value == 0 else 1.0
            sat[current.node_id] = current.value != 0
        else:
            level = levels[current.node_id]
            p = probs[level]
            hi_value = (
                p
                * gap(level + 1, levels[current.hi.node_id])
                * best[current.hi.node_id]
            )
            lo_value = (
                (1.0 - p)
                * gap(level + 1, levels[current.lo.node_id])
                * best[current.lo.node_id]
            )
            best[current.node_id] = max(hi_value, lo_value)
            sat[current.node_id] = sat[current.hi.node_id] or sat[current.lo.node_id]
    if not sat[root.node_id]:
        return None
    probability = gap(0, levels[root.node_id]) * best[root.node_id]

    assignment: Dict[str, bool] = {}

    def fill_gap(a: int, b: int) -> None:
        for i in range(a, b):
            assignment[order[i]] = probs[i] >= 0.5

    fill_gap(0, levels[root.node_id])
    node = root
    while not isinstance(node, Const):
        level = levels[node.node_id]
        p = probs[level]
        hi_value = p * gap(level + 1, levels[node.hi.node_id]) * best[node.hi.node_id]
        lo_value = (
            (1.0 - p) * gap(level + 1, levels[node.lo.node_id]) * best[node.lo.node_id]
        )
        # Pick the better branch, but never a provably unsatisfiable one --
        # with 0/1 weights both values can be 0 while only one branch has
        # models at all.
        hi_ok = sat[node.hi.node_id]
        lo_ok = sat[node.lo.node_id]
        take_hi = hi_ok and (not lo_ok or hi_value >= lo_value)
        assignment[order[level]] = take_hi
        child = node.hi if take_hi else node.lo
        fill_gap(level + 1, levels[child.node_id])
        node = child
    return probability, assignment


def _top_completions(
    segment: Sequence[int], probs: Sequence[float], k: int
) -> List[Tuple[float, Tuple[bool, ...]]]:
    """The ``k`` most probable assignments of independent variables.

    ``segment`` holds order levels; each level is a free Bernoulli variable.
    Classic best-first subset enumeration: start from the argmax assignment,
    and explore "flip sets" ordered by the product of flip ratios
    ``min(p,1-p)/max(p,1-p) <= 1``, each subset generated exactly once.
    """
    if not segment:
        return [(1.0, ())]
    baseline = tuple(probs[i] >= 0.5 for i in segment)
    base = 1.0
    for i in segment:
        base *= max(probs[i], 1.0 - probs[i])
    ratios = []
    for i in segment:
        hi, lo = max(probs[i], 1.0 - probs[i]), min(probs[i], 1.0 - probs[i])
        ratios.append(lo / hi if hi > 0.0 else 0.0)
    positions = sorted(range(len(segment)), key=lambda j: -ratios[j])
    out: List[Tuple[float, Tuple[bool, ...]]] = []
    heap: List[Tuple[float, int, Tuple[int, ...]]] = [(-base, -1, ())]
    while heap and len(out) < k:
        neg_prob, last, flips = heapq.heappop(heap)
        values = list(baseline)
        for j in flips:
            pos = positions[j]
            values[pos] = not values[pos]
        out.append((-neg_prob, tuple(values)))
        for j in range(last + 1, len(positions)):
            heapq.heappush(heap, (neg_prob * ratios[positions[j]], j, flips + (j,)))
    return out


def top_k_models(
    root: Node, weights: Mapping[str, float], k: int, *, order: Sequence[str]
) -> List[Tuple[float, Dict[str, bool]]]:
    """The ``k`` most probable satisfying assignments, most probable first.

    Bottom-up over the ordered decision diagram: each node carries its top-k
    suffix assignments (over the order levels at or below it); a decision
    gate combines each branch's list with the branch probability and the
    best-first completions of any skipped levels, merges, and truncates to
    ``k``.  Determinism makes the two branch lists disjoint, so the merge
    never double-counts a model.
    """
    if k <= 0:
        return []
    levels = _decision_levels(root, order)
    probs = [_weight(weights, name) for name in order]

    def lift(
        models: List[Tuple[float, Tuple[bool, ...]]], from_level: int, to_level: int
    ) -> List[Tuple[float, Tuple[bool, ...]]]:
        """Extend suffix models at ``to_level`` down to ``from_level``."""
        if from_level == to_level or not models:
            return models
        completions = _top_completions(range(from_level, to_level), probs, k)
        combined = [
            (cp * mp, cass + mass)
            for cp, cass in completions
            for mp, mass in models
        ]
        combined.sort(key=lambda entry: -entry[0])
        return combined[:k]

    memo: Dict[int, List[Tuple[float, Tuple[bool, ...]]]] = {}
    for current in iter_nodes(root):
        if isinstance(current, Const):
            memo[current.node_id] = [] if current.value == 0 else [(1.0, ())]
        else:
            level = levels[current.node_id]
            p = probs[level]
            hi_models = [
                (p * mp, (True,) + mass)
                for mp, mass in lift(
                    memo[current.hi.node_id], level + 1, levels[current.hi.node_id]
                )
            ]
            lo_models = [
                ((1.0 - p) * mp, (False,) + mass)
                for mp, mass in lift(
                    memo[current.lo.node_id], level + 1, levels[current.lo.node_id]
                )
            ]
            merged = hi_models + lo_models
            merged.sort(key=lambda entry: -entry[0])
            memo[current.node_id] = merged[:k]
    rooted = lift(memo[root.node_id], 0, levels[root.node_id])
    return [
        (probability, {order[i]: value for i, value in enumerate(assignment)})
        for probability, assignment in rooted
    ]
