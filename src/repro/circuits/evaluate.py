"""Evaluating circuits: one memoized pass instead of monomial-by-monomial.

``Eval_v`` (Proposition 4.2) on the expanded polynomial touches every
monomial separately; on the circuit the same homomorphism is a single
bottom-up pass that visits each *distinct* DAG node once, so shared
subexpressions are evaluated once no matter how many monomials they expand
to.  :class:`CircuitEvaluator` keeps its memo table across calls, which
extends the sharing across all the annotations of a relation -- the common
case after a join-heavy query or a datalog fixpoint, where output tuples
share most of their provenance.

The module also provides the exact/expanded bridges ``to_polynomial`` /
``from_polynomial`` (semantics-preserving by construction, used by the
equivalence tests) and :func:`specialize`, which maps one circuit-annotated
relation into any target semiring without re-running the query --
Theorem 4.3 operationalized on the compact representation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.circuits.nodes import (
    Const,
    Node,
    Prod,
    Sum,
    Var,
    const,
    iter_nodes,
    prod_node,
    sum_node,
    var,
)
from repro.errors import SemiringError
from repro.semirings.base import Semiring
from repro.semirings.homomorphism import SemiringHomomorphism
from repro.semirings.numeric import NatInf
from repro.semirings.polynomial import Polynomial, _scale_in

__all__ = [
    "CircuitEvaluator",
    "eval_circuit",
    "circuit_evaluation",
    "to_polynomial",
    "from_polynomial",
    "specialize",
    "restrict_vars",
]


class CircuitEvaluator:
    """The homomorphism ``Eval_v`` on circuits, with a persistent memo table.

    One evaluator instance should be reused for every annotation of a
    relation (as :func:`specialize` does): the memo is keyed by interned
    node, so subcircuits shared *between* annotations are also evaluated
    only once.
    """

    def __init__(self, target: Semiring, valuation: Mapping[str, Any]):
        self.target = target
        self.valuation = {name: target.coerce(value) for name, value in valuation.items()}
        self._memo: Dict[int, Any] = {}

    def __call__(self, node: Node) -> Any:
        memo = self._memo
        cached = memo.get(node.node_id)
        if cached is not None:
            return cached
        target = self.target
        for current in iter_nodes(node):
            if current.node_id in memo:
                continue
            if isinstance(current, Var):
                try:
                    value = self.valuation[current.name]
                except KeyError:
                    raise SemiringError(
                        f"valuation is missing variable {current.name!r}"
                    ) from None
            elif isinstance(current, Const):
                value = _const_in(target, current.value)
            elif isinstance(current, Sum):
                value = target.sum(memo[child.node_id] for child in current.children)
            else:
                value = target.product(memo[child.node_id] for child in current.children)
            memo[current.node_id] = value
        return memo[node.node_id]


def _const_in(target: Semiring, value: Any) -> Any:
    """Embed a circuit constant into ``target`` (``n`` as the n-fold sum of 1)."""
    if isinstance(value, NatInf) and value.is_infinite:
        # The infinite constant is the sum of infinitely many 1s; _scale_in
        # implements the paper's treatment (idempotent -> 1, topped -> top).
        return _scale_in(target, value, target.one())
    return target.from_int(value)


def eval_circuit(node: Node, valuation: Mapping[str, Any], target_semiring: Semiring) -> Any:
    """Evaluate one circuit in ``target_semiring`` under ``valuation``.

    For many circuits sharing structure, build one :class:`CircuitEvaluator`
    and reuse it (or call :func:`specialize` on the whole relation) so the
    memo table is shared.
    """
    return CircuitEvaluator(target_semiring, valuation)(node)


def circuit_evaluation(
    target: Semiring, valuation: Mapping[str, Any], *, name: str | None = None
) -> SemiringHomomorphism:
    """The homomorphism ``Eval_v : Circ[X] -> K``, packaged like its N[X] twin.

    This is the circuit counterpart of
    :func:`repro.semirings.homomorphism.polynomial_evaluation`; by
    universality the two agree with ``to_polynomial`` in between.
    """
    from repro.circuits.semiring import CircuitSemiring

    return SemiringHomomorphism(
        CircuitSemiring(),
        target,
        CircuitEvaluator(target, valuation),
        name=name or f"Eval_v (circuit) into {target.name}",
    )


def to_polynomial(node: Node) -> Polynomial:
    """Expand a circuit into the ``N[X]`` polynomial it denotes.

    This is the semantics map: two circuits are equivalent iff their
    expansions are equal polynomials.  The expansion can be exponentially
    larger than the DAG -- that is the point of circuits -- so use this for
    testing, display of small annotations, and interoperation, not on hot
    paths.
    """
    memo: Dict[int, Polynomial] = {}
    for current in iter_nodes(node):
        if isinstance(current, Var):
            value = Polynomial.var(current.name)
        elif isinstance(current, Const):
            value = Polynomial.constant(current.value)
        elif isinstance(current, Sum):
            value = Polynomial.zero()
            for child in current.children:
                value = value + memo[child.node_id]
        else:
            value = Polynomial.one()
            for child in current.children:
                value = value * memo[child.node_id]
        memo[current.node_id] = value
    return memo[node.node_id]


def from_polynomial(polynomial: Polynomial | Any) -> Node:
    """Build the (flat, sum-of-products) circuit for a polynomial.

    The result has no sharing beyond the interned leaves; it exists so that
    polynomial-annotated data can enter the circuit world, and as the other
    half of the ``to_polynomial`` round-trip used by the tests.
    """
    polynomial = Polynomial.of(polynomial)
    terms: List[Node] = []
    for monomial, coefficient in polynomial.terms:
        parts: List[Node] = []
        if coefficient != 1:
            parts.append(const(coefficient))
        for name, exponent in monomial.powers:
            parts.extend([var(name)] * exponent)
        terms.append(prod_node(*parts))
    return sum_node(*terms)


def restrict_vars(node: Node, zero_variables: "frozenset[str] | set[str]") -> Node:
    """Partially evaluate a circuit with ``zero_variables`` set to zero.

    The circuit counterpart of :meth:`Polynomial.drop_variables`: one
    memoized bottom-up pass that replaces the named variable leaves with
    ``ZERO`` and rebuilds the interior through the simplifying constructors
    (``0 · x = 0``, ``0 + x = x``), so whole subcircuits supported only by
    the zeroed variables collapse.  Other variables stay symbolic -- unlike
    :class:`CircuitEvaluator`, no full valuation is needed.  Expanding the
    result equals expanding the input and dropping every monomial that
    mentions a zeroed variable, which is what licenses provenance-assisted
    deletion: with deleted EDB facts tagged by fresh variables, this removes
    exactly the derivations they supported.
    """
    from repro.circuits.nodes import ZERO

    memo: Dict[int, Node] = {}
    for current in iter_nodes(node):
        if isinstance(current, Var):
            value = ZERO if current.name in zero_variables else current
        elif isinstance(current, Const):
            value = current
        elif isinstance(current, Sum):
            value = sum_node(*(memo[child.node_id] for child in current.children))
        else:
            value = prod_node(*(memo[child.node_id] for child in current.children))
        memo[current.node_id] = value
    return memo[node.node_id]


def specialize(
    value: Any, target: Semiring, valuation: Mapping[str, Any]
) -> Any:
    """Map a circuit -- or a whole circuit-annotated K-relation -- into ``target``.

    This is "run the query once, read the answer in many semirings": the
    query is evaluated a single time over ``Circ[X]`` and each target
    (bag, tropical, fuzzy, PosBool, probability, ...) is obtained by one
    memoized pass over the shared provenance DAG.  For a
    :class:`~repro.relations.krelation.KRelation` the evaluator (and hence
    the memo) is shared across all tuples.
    """
    from repro.relations.krelation import KRelation

    evaluator = CircuitEvaluator(target, valuation)
    if isinstance(value, KRelation):
        return value.map_annotations(evaluator, target)
    if isinstance(value, Node):
        return evaluator(value)
    raise SemiringError(
        f"specialize expects a circuit node or a circuit-annotated KRelation, got {value!r}"
    )
