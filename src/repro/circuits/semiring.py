"""``Circ[X]``: the provenance-circuit semiring.

:class:`CircuitSemiring` makes circuits a drop-in annotation structure:
``add``/``mul`` build interned DAG nodes (with the local simplifications
``0 + x = x``, ``1 · x = x``, ``0 · x = 0`` and constant folding), so
:class:`~repro.relations.krelation.KRelation`, every operator of
:mod:`repro.algebra.operators` and the datalog engine of
:mod:`repro.datalog.fixpoint` run over circuits *unchanged* -- the same
genericity argument the paper makes for semirings in general, applied to a
representation that stays polynomially small where ``N[X]`` explodes.

``Circ[X]`` is (a presentation of) ``N∞[X]``: elements denote polynomials
via :func:`repro.circuits.evaluate.to_polynomial`, and all semiring laws
hold *semantically* (two syntactically different circuits may denote the
same polynomial; equality of annotations is the conservative structural
one, exactly as cheap and exactly as partial as for hash-consed terms).
"""

from __future__ import annotations

from typing import Any

from repro.circuits.nodes import (
    ONE,
    ZERO,
    Node,
    circuit_depth,
    circuit_variables,
    const,
    node_count,
    prod_node,
    render,
    sum_node,
    var,
)
from repro.errors import InvalidAnnotationError
from repro.semirings.base import Semiring
from repro.semirings.numeric import NatInf

__all__ = ["CircuitSemiring"]

#: Circuits up to this DAG size are rendered in full by ``format_value``;
#: larger ones fall back to the compact node-count/depth summary.
_FULL_RENDER_LIMIT = 24


class CircuitSemiring(Semiring):
    """The hash-consed circuit semiring ``(Circ[X], +, ·, 0, 1)``.

    Use it exactly like :class:`~repro.semirings.polynomial.PolynomialSemiring`
    -- abstractly tag inputs with :meth:`var`, run any positive-algebra query
    or datalog program, then evaluate the output circuits through
    :func:`repro.circuits.evaluate.specialize` / ``eval_circuit`` into any
    target semiring (Theorem 4.3 without the exponential intermediate).
    """

    name = "Circ[X]"
    idempotent_add = False
    is_omega_continuous = False  # like N[X]: no infinite sums of *circuits*
    naturally_ordered = True

    def zero(self) -> Node:
        return ZERO

    def one(self) -> Node:
        return ONE

    def add(self, a: Node, b: Node) -> Node:
        return sum_node(a, b)

    def mul(self, a: Node, b: Node) -> Node:
        return prod_node(a, b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, Node)

    def coerce(self, value: Any) -> Node:
        if isinstance(value, Node):
            return value
        from repro.circuits.evaluate import from_polynomial
        from repro.semirings.polynomial import Monomial, Polynomial

        if isinstance(value, bool):
            return ONE if value else ZERO
        if isinstance(value, (int, NatInf)):
            return const(value)
        if isinstance(value, (str, Monomial, Polynomial)):
            return from_polynomial(Polynomial.of(value))
        raise InvalidAnnotationError(
            f"{value!r} cannot be read as a provenance circuit"
        )

    # -- identities (identity checks are exact thanks to interning) ----------
    def is_zero(self, value: Any) -> bool:
        return value is ZERO

    def is_one(self, value: Any) -> bool:
        return value is ONE

    def from_int(self, n: int) -> Node:
        return self.coerce(n)

    def scale(self, n: int, value: Node) -> Node:
        return prod_node(const(n), value)

    def power(self, value: Node, n: int) -> Node:
        if n < 0:
            raise InvalidAnnotationError("circuits cannot have negative powers")
        return prod_node(*([value] * n))

    def var(self, name: str) -> Node:
        """Convenience: the circuit for a single tuple id / variable."""
        return var(name)

    # -- order ----------------------------------------------------------------
    def leq(self, a: Node, b: Node) -> bool:
        """Natural order, decided on the *expanded* polynomials.

        Exact but potentially exponential in the DAG size; intended for
        tests and small instances, mirroring ``PolynomialSemiring.leq``.
        """
        from repro.circuits.evaluate import to_polynomial
        from repro.semirings.polynomial import PolynomialSemiring

        return PolynomialSemiring(allow_infinite_coefficients=True).leq(
            to_polynomial(a), to_polynomial(b)
        )

    # -- display ---------------------------------------------------------------
    def format_value(self, value: Any) -> str:
        size = node_count(value)
        if size <= _FULL_RENDER_LIMIT:
            return render(value)
        return self.summarize_value(value)

    def summarize_value(self, value: Any) -> str:
        return (
            f"⟨circuit: {node_count(value)} nodes, depth {circuit_depth(value)}, "
            f"{len(circuit_variables(value))} vars⟩"
        )
