"""Semiring-safe rewrite rules over positive-algebra query trees.

Every rule applied here is an instance of an identity that Proposition 3.4
proves valid over **any** commutative semiring:

* cascaded selections fuse (``σ_P(σ_Q(R)) = σ_{P∧Q}(R)`` -- both factors are
  {0, 1}-valued);
* selections push through unions (always), projections (when the predicate
  reads only preserved attributes), renames (rewriting the predicate through
  the inverse mapping), and joins (each CNF conjunct moves to the side whose
  schema covers it);
* projections push through unions, renames, and into the sides of a join
  (keeping the join attributes, by distributivity);
* cascaded projections and renames fuse; identity projections and renames
  vanish; the empty relation annihilates joins and selections and is the
  unit of union; ``σ_true`` vanishes and ``σ_false`` produces ∅.

Two further rewrites are **not** semiring-generic and are gated on the
annotation structure (the bag-semantics counterexamples of Proposition 3.4):

* ``R ∪ R = R`` requires idempotent addition (fails over ``N``: 2 ≠ 1);
* the self-join ``R ⋈ R = R`` requires idempotent multiplication (fails over
  ``N``: annotations square).

The gate is the :class:`SemiringProfile` computed by
:func:`semiring_profile`, which reads the semiring's declared flags and can
optionally re-verify them through the axiom checkers of
:mod:`repro.semirings.properties`.

Structurally, all rules move operators *downward* or delete nodes -- nothing
is ever hoisted -- so repeated bottom-up passes reach a fixpoint; the engine
detects it by plan signature and stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import (
    BasePredicate,
    Conjunction,
    FalsePredicate,
    TruePredicate,
    as_predicate,
    conjunction,
)
from repro.planner.plans import infer_attributes, plan_signature
from repro.semirings.base import Semiring
from repro.semirings.properties import check_semiring_axioms

__all__ = ["SemiringProfile", "semiring_profile", "RewriteContext", "rewrite_fixpoint"]

#: Bottom-up passes after which the engine gives up waiting for a fixpoint.
#: Every rule moves operators downward or deletes nodes, so in practice the
#: signature stabilizes after a handful of passes even on deep trees.
DEFAULT_MAX_PASSES = 10


@dataclass(frozen=True)
class SemiringProfile:
    """The algebraic capabilities that gate non-generic rewrites."""

    idempotent_add: bool = False
    idempotent_mul: bool = False


def semiring_profile(
    semiring: Semiring | None, *, verify: bool = False
) -> SemiringProfile:
    """The rewrite gate for ``semiring`` (everything off when ``None``).

    With ``verify=True`` the declared idempotence flags are re-checked
    through :func:`repro.semirings.properties.check_semiring_axioms` on the
    semiring's 0/1 sample; a semiring whose declaration fails its own axioms
    gets no gated rewrites at all (fail safe).
    """
    if semiring is None:
        return SemiringProfile()
    if verify:
        report = check_semiring_axioms(semiring, [semiring.zero(), semiring.one()])
        if not report.ok:
            return SemiringProfile()
    return SemiringProfile(
        idempotent_add=semiring.idempotent_add,
        idempotent_mul=semiring.idempotent_mul,
    )


@dataclass
class RewriteContext:
    """Catalog, gate, and trace shared by one optimization run."""

    catalog: Mapping[str, Sequence[str]] = field(default_factory=dict)
    profile: SemiringProfile = field(default_factory=SemiringProfile)
    trace: list[str] = field(default_factory=list)

    def attrs(self, query: Query) -> tuple[str, ...] | None:
        return infer_attributes(query, self.catalog)

    def record(self, rule: str, detail: str = "") -> None:
        self.trace.append(f"{rule}: {detail}" if detail else rule)


# ---------------------------------------------------------------------------
# Predicate normalization
# ---------------------------------------------------------------------------


def _simplified_predicate(predicate) -> BasePredicate:
    """Flatten trivial conjunction structure (∧ of none = true, ∧ with false
    = false, singleton ∧ unwrapped) without touching opaque callables."""
    predicate = as_predicate(predicate)
    if isinstance(predicate, Conjunction):
        parts = [p for p in predicate.parts if not isinstance(p, TruePredicate)]
        if any(isinstance(p, FalsePredicate) for p in parts):
            return FalsePredicate()
        if not parts:
            return TruePredicate()
        if len(parts) == 1:
            return parts[0]
        return Conjunction(parts)
    return predicate


def _select(child: Query, predicate: BasePredicate) -> Query:
    """A Select node, collapsing ``σ_true`` on the spot."""
    predicate = _simplified_predicate(predicate)
    if isinstance(predicate, TruePredicate):
        return child
    return Select(child, predicate, description=str(predicate))


# ---------------------------------------------------------------------------
# Node-level rules.  Each returns a replacement query or None.
# ---------------------------------------------------------------------------


def _rule_select_trivial(query: Select, ctx: RewriteContext) -> Query | None:
    predicate = _simplified_predicate(query.predicate)
    if isinstance(predicate, TruePredicate):
        ctx.record("select-true-elimination", str(query))
        return query.child
    if isinstance(predicate, FalsePredicate):
        attrs = ctx.attrs(query.child)
        if attrs is None:
            return None
        ctx.record("select-false-to-empty", str(query))
        return EmptyRelation(attrs)
    if predicate.signature() != as_predicate(query.predicate).signature():
        return Select(query.child, predicate, description=str(predicate))
    return None


def _rule_fuse_selections(query: Select, ctx: RewriteContext) -> Query | None:
    child = query.child
    if not isinstance(child, Select):
        return None
    ctx.record("cascaded-selection-fusion", f"{query.description} ∧ {child.description}")
    # Inner predicate first: σ_P(σ_Q(R)) evaluates Q before P as written, and
    # guard-style predicates (Q filters the tuples P would choke on) rely on
    # the conjunction short-circuiting in that same order.
    fused = conjunction(as_predicate(child.predicate), as_predicate(query.predicate))
    return _select(child.child, fused)


def _rule_push_selection(query: Select, ctx: RewriteContext) -> Query | None:
    child = query.child
    predicate = as_predicate(query.predicate)

    if isinstance(child, Union):
        # σ_P(R ∪ S) = σ_P(R) ∪ σ_P(S) -- pointwise, legal for any predicate.
        ctx.record("selection-pushdown-union", str(predicate))
        return Union(_select(child.left, predicate), _select(child.right, predicate))

    if isinstance(child, Project):
        # σ_P(π_V(R)) = π_V(σ_P(R)) -- P reads only V, so the scalar factor
        # distributes over the projection's annotation sums.
        attrs = predicate.attributes
        if attrs is None or not attrs <= set(child.attributes):
            return None
        ctx.record("selection-pushdown-project", str(predicate))
        return Project(_select(child.child, predicate), child.attributes)

    if isinstance(child, Rename):
        # σ_P(ρ_m(R)) = ρ_m(σ_{P∘m}(R)) -- the pushed predicate reads the
        # pre-rename attribute names.
        if predicate.attributes is None:
            return None
        inverse = {new: old for old, new in child.mapping.items()}
        ctx.record("selection-pushdown-rename", str(predicate))
        return Rename(_select(child.child, predicate.rename(inverse)), child.mapping)

    if isinstance(child, Join):
        left_attrs = ctx.attrs(child.left)
        right_attrs = ctx.attrs(child.right)
        if left_attrs is None or right_attrs is None:
            return None
        left_set, right_set = set(left_attrs), set(right_attrs)
        push_left: list[BasePredicate] = []
        push_right: list[BasePredicate] = []
        keep: list[BasePredicate] = []
        for conjunct in predicate.conjuncts():
            attrs = conjunct.attributes
            # Pushing into a join side evaluates the conjunct on tuples the
            # join would have filtered away, so only *total* predicates move
            # (an ordering comparison may raise on tuples it never saw).
            if attrs is None or not conjunct.total:
                keep.append(conjunct)
            elif attrs <= left_set:
                push_left.append(conjunct)
            elif attrs <= right_set:
                push_right.append(conjunct)
            else:
                keep.append(conjunct)
        if not push_left and not push_right:
            return None
        ctx.record(
            "selection-pushdown-join",
            f"{len(push_left)} left, {len(push_right)} right, {len(keep)} kept",
        )
        left = _select(child.left, conjunction(*push_left)) if push_left else child.left
        right = (
            _select(child.right, conjunction(*push_right)) if push_right else child.right
        )
        joined: Query = Join(left, right)
        if keep:
            joined = _select(joined, conjunction(*keep))
        return joined

    return None


def _rule_fuse_projections(query: Project, ctx: RewriteContext) -> Query | None:
    child = query.child
    if not isinstance(child, Project):
        return None
    ctx.record("cascaded-projection-fusion", ",".join(query.attributes))
    return Project(child.child, query.attributes)


def _rule_identity_projection(query: Project, ctx: RewriteContext) -> Query | None:
    child_attrs = ctx.attrs(query.child)
    if child_attrs is None or set(query.attributes) != set(child_attrs):
        return None
    # π over the full attribute set merges nothing: each output tuple has a
    # single preimage, so annotations are untouched in any semiring.
    ctx.record("identity-projection-elimination", ",".join(query.attributes))
    return query.child


def _rule_push_projection(query: Project, ctx: RewriteContext) -> Query | None:
    child = query.child
    wanted = set(query.attributes)

    if isinstance(child, Union):
        # π_V(R ∪ S) = π_V(R) ∪ π_V(S) -- annotation sums regroup freely.
        ctx.record("projection-pushdown-union", ",".join(query.attributes))
        return Union(
            Project(child.left, query.attributes),
            Project(child.right, query.attributes),
        )

    if isinstance(child, Rename):
        inverse = {new: old for old, new in child.mapping.items()}
        below = tuple(inverse.get(a, a) for a in query.attributes)
        kept_mapping = {
            old: new for old, new in child.mapping.items() if new in wanted
        }
        ctx.record("projection-pushdown-rename", ",".join(query.attributes))
        if not kept_mapping:
            return Project(child.child, below)
        return Rename(Project(child.child, below), kept_mapping)

    if isinstance(child, Join):
        # π_V(L ⋈ R) = π_V(π_{(V∩U_L)∪J}(L) ⋈ π_{(V∩U_R)∪J}(R)) with J the
        # shared attributes: grouping the annotation sums per side first is
        # exactly distributivity of · over +.
        left_attrs = ctx.attrs(child.left)
        right_attrs = ctx.attrs(child.right)
        if left_attrs is None or right_attrs is None:
            return None
        shared = set(left_attrs) & set(right_attrs)
        need_left = tuple(a for a in left_attrs if a in wanted or a in shared)
        need_right = tuple(a for a in right_attrs if a in wanted or a in shared)
        # A Project node needs at least one attribute; a side of a cross
        # product that contributes nothing to the output still keeps one
        # column (its annotations -- the multiplicities -- must survive).
        if not need_left:
            need_left = left_attrs[:1]
        if not need_right:
            need_right = right_attrs[:1]
        if len(need_left) == len(left_attrs) and len(need_right) == len(right_attrs):
            return None
        ctx.record(
            "projection-pushdown-join",
            f"{','.join(need_left)} | {','.join(need_right)}",
        )
        left = child.left if len(need_left) == len(left_attrs) else Project(child.left, need_left)
        right = (
            child.right
            if len(need_right) == len(right_attrs)
            else Project(child.right, need_right)
        )
        return Project(Join(left, right), query.attributes)

    return None


def _rule_rename_trivial(query: Rename, ctx: RewriteContext) -> Query | None:
    mapping = {old: new for old, new in query.mapping.items() if old != new}
    if not mapping:
        ctx.record("identity-rename-elimination")
        return query.child
    if len(mapping) != len(query.mapping):
        return Rename(query.child, mapping)
    return None


def _rule_fuse_renames(query: Rename, ctx: RewriteContext) -> Query | None:
    child = query.child
    if not isinstance(child, Rename):
        return None
    composed: dict[str, str] = {}
    inner_targets = set(child.mapping.values())
    for old, mid in child.mapping.items():
        composed[old] = query.mapping.get(mid, mid)
    for old, new in query.mapping.items():
        if old not in inner_targets:
            composed[old] = new
    composed = {old: new for old, new in composed.items() if old != new}
    ctx.record("cascaded-rename-fusion")
    if not composed:
        return child.child
    return Rename(child.child, composed)


def _rule_eliminate_empty(query: Query, ctx: RewriteContext) -> Query | None:
    if isinstance(query, Union):
        if isinstance(query.left, EmptyRelation):
            ctx.record("empty-union-elimination")
            return query.right
        if isinstance(query.right, EmptyRelation):
            ctx.record("empty-union-elimination")
            return query.left
    if isinstance(query, Join) and (
        isinstance(query.left, EmptyRelation) or isinstance(query.right, EmptyRelation)
    ):
        left_attrs = ctx.attrs(query.left)
        right_attrs = ctx.attrs(query.right)
        if left_attrs is None or right_attrs is None:
            return None
        ctx.record("empty-join-annihilation")
        return EmptyRelation(
            tuple(left_attrs) + tuple(a for a in right_attrs if a not in set(left_attrs))
        )
    if isinstance(query, Project) and isinstance(query.child, EmptyRelation):
        ctx.record("empty-projection-elimination")
        return EmptyRelation(query.attributes)
    if isinstance(query, Select) and isinstance(query.child, EmptyRelation):
        ctx.record("empty-selection-elimination")
        return query.child
    if isinstance(query, Rename) and isinstance(query.child, EmptyRelation):
        ctx.record("empty-rename-elimination")
        return EmptyRelation(
            tuple(query.mapping.get(a, a) for a in query.child.schema.attributes)
        )
    return None


def _rule_idempotent_dedupe(query: Query, ctx: RewriteContext) -> Query | None:
    if isinstance(query, Union) and ctx.profile.idempotent_add:
        # R ∪ R = R needs a + a = a; Proposition 3.4 lists its failure under
        # bags as the reason idempotence is *not* a semiring-generic law.
        if plan_signature(query.left) == plan_signature(query.right):
            ctx.record("idempotent-union-dedupe", str(query.left))
            return query.left
    if isinstance(query, Join) and ctx.profile.idempotent_mul:
        # R ⋈ R = R (a natural self-join pairs each tuple only with itself,
        # same schema on both sides) needs a · a = a.
        if plan_signature(query.left) == plan_signature(query.right):
            ctx.record("idempotent-self-join-dedupe", str(query.left))
            return query.left
    return None


_SELECT_RULES = (_rule_select_trivial, _rule_fuse_selections, _rule_push_selection)
_PROJECT_RULES = (
    _rule_fuse_projections,
    _rule_identity_projection,
    _rule_push_projection,
)
_RENAME_RULES = (_rule_rename_trivial, _rule_fuse_renames)


def _apply_node_rules(query: Query, ctx: RewriteContext) -> Query | None:
    """The first applicable rule's result at this node, or None."""
    replaced = _rule_eliminate_empty(query, ctx)
    if replaced is not None:
        return replaced
    rules = ()
    if isinstance(query, Select):
        rules = _SELECT_RULES
    elif isinstance(query, Project):
        rules = _PROJECT_RULES
    elif isinstance(query, Rename):
        rules = _RENAME_RULES
    for rule in rules:
        replaced = rule(query, ctx)
        if replaced is not None:
            return replaced
    return _rule_idempotent_dedupe(query, ctx)


def _rewrite_once(query: Query, ctx: RewriteContext) -> Query:
    """One bottom-up pass: children first, then this node (repeatedly)."""
    if isinstance(query, Union):
        query = Union(_rewrite_once(query.left, ctx), _rewrite_once(query.right, ctx))
    elif isinstance(query, Join):
        query = Join(_rewrite_once(query.left, ctx), _rewrite_once(query.right, ctx))
    elif isinstance(query, Project):
        query = Project(_rewrite_once(query.child, ctx), query.attributes)
    elif isinstance(query, Select):
        query = Select(
            _rewrite_once(query.child, ctx), query.predicate, description=query.description
        )
    elif isinstance(query, Rename):
        query = Rename(_rewrite_once(query.child, ctx), query.mapping)
    # Apply node-local rules until none fires (each application either
    # deletes a node or moves an operator strictly downward, so this halts).
    for _ in range(DEFAULT_MAX_PASSES):
        replaced = _apply_node_rules(query, ctx)
        if replaced is None:
            return query
        query = replaced
    return query


def rewrite_fixpoint(
    query: Query, ctx: RewriteContext, max_passes: int = DEFAULT_MAX_PASSES
) -> Query:
    """Run bottom-up rewrite passes until the plan signature stops changing."""
    signature = plan_signature(query)
    for _ in range(max_passes):
        query = _rewrite_once(query, ctx)
        new_signature = plan_signature(query)
        if new_signature == signature:
            break
        signature = new_signature
    return query
