"""Semiring-aware query planning for the positive algebra.

Green, Karvounarakis & Tannen prove (Proposition 3.4) that the classic
relational-algebra identities -- pushdowns, fusions, join commutativity and
associativity, distribution over union -- hold over *any* commutative
semiring, while idempotence-based laws (``R ∪ R = R``, ``R ⋈ R = R``) hold
exactly when the semiring's operations are idempotent.  This package turns
those theorems into an optimizer:

* :mod:`repro.planner.rewrites` -- the semiring-safe rewrite rules plus the
  idempotence-gated ones, applied bottom-up to a fixpoint;
* :mod:`repro.planner.cost` -- database statistics and System-R style
  cardinality estimation;
* :mod:`repro.planner.reorder` -- greedy cost-based join reordering;
* :mod:`repro.planner.optimizer` -- the :func:`optimize`/:func:`explain`
  entry points;
* :mod:`repro.planner.plans` -- schema inference and structural plan
  signatures.

Entry points::

    from repro.planner import optimize, explain

    plan = optimize(query, database)       # an equivalent, cheaper Query
    print(explain(query, database))        # rules applied + cost estimates
    query.evaluate(database, optimize=True)  # optimize-and-run in one call
"""

from repro.planner.cost import (
    CostModel,
    Estimate,
    ParallelDecision,
    Statistics,
    TableStats,
    choose_partitions,
)
from repro.planner.optimizer import OptimizationReport, explain, optimize
from repro.planner.plans import catalog_of, infer_attributes, plan_signature
from repro.planner.reorder import reorder_joins
from repro.planner.rewrites import (
    RewriteContext,
    SemiringProfile,
    rewrite_fixpoint,
    semiring_profile,
)

__all__ = [
    "optimize",
    "explain",
    "OptimizationReport",
    "Statistics",
    "TableStats",
    "CostModel",
    "Estimate",
    "ParallelDecision",
    "choose_partitions",
    "plan_signature",
    "infer_attributes",
    "catalog_of",
    "reorder_joins",
    "rewrite_fixpoint",
    "RewriteContext",
    "SemiringProfile",
    "semiring_profile",
]
