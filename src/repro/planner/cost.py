"""Cardinality estimation and plan costing from database statistics.

The planner's cost model is deliberately textbook: per-relation cardinalities
and per-attribute distinct counts collected once from a
:class:`~repro.relations.database.Database` (:class:`Statistics`), combined
bottom-up with System-R style estimation formulas (:class:`CostModel`):

* selection scales cardinality by a predicate selectivity (``1/V(R, a)`` for
  ``a = const``, ``1/max(V(R, a), V(R, b))`` for ``a = b``, a fixed default
  for opaque predicates);
* a natural join on shared attributes ``J`` estimates
  ``|L| * |R| / prod_{a in J} max(V(L, a), V(R, a))``;
* projection caps cardinality at the product of the kept attributes'
  distinct counts; union adds.

Estimates drive the greedy join reordering of :mod:`repro.planner.reorder`
and the plan-cost comparisons of :func:`repro.planner.optimizer.explain`.
Absent statistics fall back to uniform defaults, so the rewrite engine works
(just less informedly) on bare queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import (
    AttrEquals,
    AttrEqualsConst,
    AttrNotEqualsConst,
    BasePredicate,
    ComparisonPredicate,
    Conjunction,
    Disjunction,
    FalsePredicate,
    Negation,
    TruePredicate,
    as_predicate,
)
from repro.relations.database import Database

__all__ = [
    "TableStats",
    "Statistics",
    "Estimate",
    "CostModel",
    "ParallelDecision",
    "choose_partitions",
    "PARALLEL_ROW_OVERHEAD",
]

#: Cardinality assumed for base relations without collected statistics.
DEFAULT_CARDINALITY = 100.0

#: Distinct-count assumed for attributes without collected statistics.
DEFAULT_DISTINCT = 10.0

#: Selectivity assumed for predicates the model cannot analyze.
DEFAULT_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class TableStats:
    """Cardinality and per-attribute distinct counts of one base relation."""

    cardinality: int
    distinct: Mapping[str, int]


class Statistics:
    """Per-relation statistics snapshot used by the cost model."""

    def __init__(self, tables: Mapping[str, TableStats] | None = None):
        self.tables: dict[str, TableStats] = dict(tables or {})

    @classmethod
    def from_database(
        cls, database: Database, relations: "set[str] | frozenset[str] | None" = None
    ) -> "Statistics":
        """Collect cardinalities and distinct counts from the database.

        ``relations`` restricts the scan to the named relations (the
        optimizer passes the query's ``relation_names()``, so planning a
        small query never pays for scanning unrelated large tables).
        """
        tables: dict[str, TableStats] = {}
        for name, relation in database.items():
            if relations is not None and name not in relations:
                continue
            attributes = relation.schema.attributes
            seen: dict[str, set] = {a: set() for a in attributes}
            for tup in relation:
                for a in attributes:
                    seen[a].add(tup[a])
            tables[name] = TableStats(
                cardinality=len(relation),
                distinct={a: len(values) for a, values in seen.items()},
            )
        return cls(tables)

    def table(self, name: str) -> TableStats | None:
        return self.tables.get(name)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Statistics({sorted(self.tables)})"


@dataclass
class Estimate:
    """Estimated output of a subplan: cardinality and distinct counts.

    ``distinct`` doubles as the schema of the estimated relation -- its keys
    are exactly the output attributes (when the schema is inferable).
    """

    cardinality: float
    distinct: dict[str, float] = field(default_factory=dict)

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset(self.distinct)

    def clamp(self) -> "Estimate":
        """Distinct counts can never exceed the cardinality (or fall below 1
        while the relation is non-empty)."""
        cardinality = max(self.cardinality, 0.0)
        bound = max(cardinality, 1.0) if cardinality > 0 else 0.0
        return Estimate(
            cardinality,
            {a: min(max(d, min(1.0, bound)), bound) for a, d in self.distinct.items()},
        )


class CostModel:
    """Bottom-up cardinality estimation and total-work costing of plans."""

    def __init__(self, statistics: Statistics | None = None):
        self.statistics = statistics or Statistics()

    # -- cardinality --------------------------------------------------------------
    def estimate(self, query: Query) -> Estimate:
        """Estimated cardinality and distinct counts of ``query``'s output."""
        if isinstance(query, RelationRef):
            stats = self.statistics.table(query.name)
            if stats is None:
                return Estimate(DEFAULT_CARDINALITY, {}).clamp()
            return Estimate(
                float(stats.cardinality),
                {a: float(d) for a, d in stats.distinct.items()},
            ).clamp()
        if isinstance(query, EmptyRelation):
            return Estimate(0.0, {a: 0.0 for a in query.schema.attributes})
        if isinstance(query, Select):
            child = self.estimate(query.child)
            factor = self.selectivity(query.predicate, child)
            return Estimate(
                child.cardinality * factor,
                {a: d * max(factor, DEFAULT_SELECTIVITY) for a, d in child.distinct.items()},
            ).clamp()
        if isinstance(query, Project):
            child = self.estimate(query.child)
            limit = 1.0
            distinct: dict[str, float] = {}
            for a in query.attributes:
                d = child.distinct.get(a, DEFAULT_DISTINCT)
                distinct[a] = d
                limit = min(limit * max(d, 1.0), child.cardinality + 1.0)
            return Estimate(min(child.cardinality, limit), distinct).clamp()
        if isinstance(query, Rename):
            child = self.estimate(query.child)
            return Estimate(
                child.cardinality,
                {query.mapping.get(a, a): d for a, d in child.distinct.items()},
            )
        if isinstance(query, Union):
            left, right = self.estimate(query.left), self.estimate(query.right)
            distinct = dict(left.distinct)
            for a, d in right.distinct.items():
                distinct[a] = distinct.get(a, 0.0) + d
            return Estimate(left.cardinality + right.cardinality, distinct).clamp()
        if isinstance(query, Join):
            return self.join_estimate(
                self.estimate(query.left), self.estimate(query.right)
            )
        # Unknown node: be pessimistic but functional.
        return Estimate(DEFAULT_CARDINALITY, {})

    def join_estimate(self, left: Estimate, right: Estimate) -> Estimate:
        """The System-R natural-join formula on two subplan estimates."""
        shared = left.attributes & right.attributes
        cardinality = left.cardinality * right.cardinality
        for a in sorted(shared):
            divisor = max(
                left.distinct.get(a, DEFAULT_DISTINCT),
                right.distinct.get(a, DEFAULT_DISTINCT),
                1.0,
            )
            cardinality /= divisor
        distinct = dict(right.distinct)
        for a, d in left.distinct.items():
            distinct[a] = min(d, distinct.get(a, d))
        return Estimate(cardinality, distinct).clamp()

    def cardinality(self, query: Query) -> float:
        """Estimated output cardinality of ``query``."""
        return self.estimate(query).cardinality

    # -- selectivity --------------------------------------------------------------
    def selectivity(self, predicate: Any, child: Estimate) -> float:
        """The fraction of ``child``'s tuples estimated to satisfy ``predicate``."""
        predicate = as_predicate(predicate)
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, FalsePredicate):
            return 0.0
        if isinstance(predicate, AttrEqualsConst):
            return 1.0 / max(
                child.distinct.get(predicate.attribute, DEFAULT_DISTINCT), 1.0
            )
        if isinstance(predicate, AttrNotEqualsConst):
            eq = 1.0 / max(
                child.distinct.get(predicate.attribute, DEFAULT_DISTINCT), 1.0
            )
            return max(1.0 - eq, 0.0)
        if isinstance(predicate, AttrEquals):
            return 1.0 / max(
                child.distinct.get(predicate.left, DEFAULT_DISTINCT),
                child.distinct.get(predicate.right, DEFAULT_DISTINCT),
                1.0,
            )
        if isinstance(predicate, ComparisonPredicate):
            if predicate.operator == "==":
                return 1.0 / max(
                    child.distinct.get(predicate.attribute, DEFAULT_DISTINCT), 1.0
                )
            if predicate.operator == "!=":
                eq = 1.0 / max(
                    child.distinct.get(predicate.attribute, DEFAULT_DISTINCT), 1.0
                )
                return max(1.0 - eq, 0.0)
            return DEFAULT_SELECTIVITY
        if isinstance(predicate, Conjunction):
            factor = 1.0
            for part in predicate.parts:
                factor *= self.selectivity(part, child)
            return factor
        if isinstance(predicate, Disjunction):
            miss = 1.0
            for part in predicate.parts:
                miss *= 1.0 - self.selectivity(part, child)
            return min(1.0 - miss, 1.0)
        if isinstance(predicate, Negation):
            return max(1.0 - self.selectivity(predicate.inner, child), 0.0)
        if isinstance(predicate, BasePredicate):
            return DEFAULT_SELECTIVITY
        return DEFAULT_SELECTIVITY  # pragma: no cover - as_predicate wraps callables

    # -- total cost ----------------------------------------------------------------
    def cost(self, query: Query) -> float:
        """Total estimated work: the sum over all operator nodes of the tuples
        they read plus the tuples they emit (hash joins read both inputs once)."""
        if isinstance(query, (RelationRef, EmptyRelation)):
            return self.estimate(query).cardinality
        children = query.children()
        total = sum(self.cost(child) for child in children)
        total += sum(self.estimate(child).cardinality for child in children)
        total += self.estimate(query).cardinality
        return total


# ---------------------------------------------------------------------------
# Partition-parallelism decision
# ---------------------------------------------------------------------------

#: Fixed per-worker cost of one parallel dispatch, expressed in
#: row-equivalents: partition construction, pickling the payload across the
#: process boundary, scheduling, and merging the partial result back.  A
#: partition must carry at least this many estimated rows before shipping it
#: beats processing it in place.
PARALLEL_ROW_OVERHEAD = 512.0


@dataclass(frozen=True)
class ParallelDecision:
    """The cost model's verdict on fanning one operation out to workers.

    ``partitions`` is the chosen fan-out (1 means "stay serial/local");
    ``estimated_rows`` the row estimate the decision was made on;
    ``reason`` a human-readable justification surfaced by the obs spans.
    """

    partitions: int
    estimated_rows: float
    reason: str


def choose_partitions(
    estimated_rows: float,
    max_workers: int,
    *,
    row_overhead: float = PARALLEL_ROW_OVERHEAD,
) -> ParallelDecision:
    """How many hash partitions an operation of ``estimated_rows`` deserves.

    The model is the standard amortization argument: fanning out to ``p``
    workers costs ``p * row_overhead`` row-equivalents of fixed work
    (partitioning, IPC, merge) and saves ``estimated_rows * (p - 1) / p``
    of in-line work, so the largest ``p`` with
    ``estimated_rows / p >= row_overhead`` is the widest fan-out that still
    pays for itself.  Degenerates to 1 (serial) for small inputs, is capped
    by ``max_workers``, and never exceeds the row count itself (a partition
    with no rows is pure overhead).
    """
    workers = max(int(max_workers), 1)
    rows = max(float(estimated_rows), 0.0)
    if workers == 1 or rows < 2 * row_overhead:
        return ParallelDecision(
            1, rows, f"{rows:.0f} estimated rows under 2x the {row_overhead:.0f}-row "
            "dispatch overhead; staying serial"
        )
    affordable = int(rows // row_overhead)
    partitions = max(1, min(workers, affordable, int(rows)))
    if partitions == 1:
        return ParallelDecision(1, rows, "fan-out does not amortize; staying serial")
    return ParallelDecision(
        partitions,
        rows,
        f"{rows:.0f} estimated rows over {partitions} partitions "
        f"({rows / partitions:.0f} rows/worker, overhead {row_overhead:.0f})",
    )
