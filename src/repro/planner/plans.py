"""Plan-level inspection helpers: output schemas and structural signatures.

The rewrite rules of :mod:`repro.planner.rewrites` need to know which
attributes a subquery produces (pushdown legality) and when two subplans are
structurally identical (idempotence-gated deduplication, fixpoint
detection).  Both are pure functions of the query tree plus a catalog of
base-relation schemas.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import as_predicate
from repro.errors import QueryError
from repro.relations.database import Database

__all__ = ["catalog_of", "infer_attributes", "plan_signature"]


def catalog_of(database: Database | None) -> dict[str, tuple[str, ...]]:
    """The base-relation schema catalog of ``database`` (empty when ``None``)."""
    if database is None:
        return {}
    return {name: relation.schema.attributes for name, relation in database.items()}


def infer_attributes(
    query: Query, catalog: Mapping[str, Sequence[str]]
) -> tuple[str, ...] | None:
    """The output attributes of ``query``, or ``None`` when not inferable.

    ``catalog`` maps base-relation names to their attribute tuples (see
    :func:`catalog_of`).  A reference to a relation absent from the catalog
    makes the whole subtree uninferable; schema-dependent rewrites then
    simply skip it.
    """
    if isinstance(query, RelationRef):
        attrs = catalog.get(query.name)
        return tuple(attrs) if attrs is not None else None
    if isinstance(query, EmptyRelation):
        return query.schema.attributes
    if isinstance(query, Project):
        return tuple(query.attributes)
    if isinstance(query, (Select,)):
        return infer_attributes(query.child, catalog)
    if isinstance(query, Rename):
        child = infer_attributes(query.child, catalog)
        if child is None:
            return None
        return tuple(query.mapping.get(a, a) for a in child)
    if isinstance(query, Union):
        # Both sides are union-compatible; the left side fixes display order.
        left = infer_attributes(query.left, catalog)
        if left is not None:
            return left
        return infer_attributes(query.right, catalog)
    if isinstance(query, Join):
        left = infer_attributes(query.left, catalog)
        right = infer_attributes(query.right, catalog)
        if left is None or right is None:
            return None
        return left + tuple(a for a in right if a not in left)
    raise QueryError(
        f"cannot infer the schema of query node {type(query).__name__}; "
        "the planner covers the positive algebra of Definition 3.2"
    )


def plan_signature(query: Query) -> tuple:
    """A hashable structural key for a query plan.

    Two plans with equal signatures evaluate identically on every database:
    the signature captures the operator tree, projection/rename attribute
    lists, and predicate structure (opaque predicates compare by the wrapped
    callable's identity, so distinct-but-equal lambdas are conservatively
    unequal).
    """
    if isinstance(query, RelationRef):
        return ("rel", query.name)
    if isinstance(query, EmptyRelation):
        return ("empty", tuple(sorted(query.schema.attributes)))
    if isinstance(query, Union):
        return ("union", plan_signature(query.left), plan_signature(query.right))
    if isinstance(query, Join):
        return ("join", plan_signature(query.left), plan_signature(query.right))
    if isinstance(query, Project):
        return ("project", tuple(query.attributes), plan_signature(query.child))
    if isinstance(query, Rename):
        return (
            "rename",
            tuple(sorted(query.mapping.items())),
            plan_signature(query.child),
        )
    if isinstance(query, Select):
        return (
            "select",
            as_predicate(query.predicate).signature(),
            plan_signature(query.child),
        )
    raise QueryError(
        f"cannot compute a plan signature for query node {type(query).__name__}"
    )
