"""Greedy join reordering over flattened join trees.

Join commutativity and associativity hold in every commutative semiring
(Proposition 3.4), so any re-bracketing of a chain of natural joins computes
the same K-relation.  This module flattens maximal ``Join`` subtrees into
their non-join leaves, estimates each leaf with the cost model, and rebuilds
a left-deep tree greedily:

1. start from the smallest-cardinality leaf;
2. repeatedly attach the leaf that minimizes the estimated cardinality of
   the next intermediate result, preferring leaves that share attributes
   with the tree built so far (connected joins before cross products).

Ties break on the leaf's position in the original tree, which makes the
ordering deterministic and -- because the greedy choice depends only on the
leaf *set* -- idempotent: reordering an already-reordered tree reproduces it,
so ``optimize`` is a no-op fixpoint.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.algebra.ast import Join, Project, Query, Rename, Select, Union
from repro.planner.cost import CostModel, Estimate

__all__ = ["reorder_joins"]


def _flatten(query: Query, leaves: List[Query]) -> None:
    if isinstance(query, Join):
        _flatten(query.left, leaves)
        _flatten(query.right, leaves)
    else:
        leaves.append(query)


def _reorder_leaves(
    leaves: List[Tuple[Query, Estimate]], model: CostModel
) -> List[Query]:
    remaining = list(enumerate(leaves))
    # Seed: smallest estimated leaf (position breaks ties deterministically).
    start = min(remaining, key=lambda item: (item[1][1].cardinality, item[0]))
    remaining.remove(start)
    order = [start[1][0]]
    current = start[1][1]
    while remaining:
        scored = []
        for position, (leaf, estimate) in remaining:
            joined = model.join_estimate(current, estimate)
            connected = bool(current.attributes & estimate.attributes)
            scored.append(((not connected, joined.cardinality, position), position, joined))
        best_key, best_position, best_joined = min(scored, key=lambda item: item[0])
        chosen = next(item for item in remaining if item[0] == best_position)
        remaining.remove(chosen)
        order.append(chosen[1][0])
        current = best_joined
    return order


def reorder_joins(query: Query, model: CostModel) -> Query:
    """Reorder every maximal join chain in ``query`` greedily by cost."""
    if isinstance(query, Join):
        leaves: List[Query] = []
        _flatten(query, leaves)
        reordered = [reorder_joins(leaf, model) for leaf in leaves]
        estimated = [(leaf, model.estimate(leaf)) for leaf in reordered]
        ordered = _reorder_leaves(estimated, model)
        tree = ordered[0]
        for leaf in ordered[1:]:
            tree = Join(tree, leaf)
        return tree
    if isinstance(query, Union):
        return Union(reorder_joins(query.left, model), reorder_joins(query.right, model))
    if isinstance(query, Project):
        return Project(reorder_joins(query.child, model), query.attributes)
    if isinstance(query, Select):
        return Select(
            reorder_joins(query.child, model),
            query.predicate,
            description=query.description,
        )
    if isinstance(query, Rename):
        return Rename(reorder_joins(query.child, model), query.mapping)
    return query
