"""The ``optimize`` entry point: rewrite to fixpoint, then reorder joins.

``optimize(query, database)`` returns a new :class:`~repro.algebra.ast.Query`
that evaluates to the *same K-relation* as ``query`` on ``database`` (and on
any database with the same schemas and a semiring with the same declared
properties) -- annotation for annotation, over every commutative semiring.
Only the output attribute *order* may differ (the named perspective is
order-free; :meth:`KRelation.equal_to` compares attribute sets).

The pipeline:

1. :func:`~repro.planner.rewrites.rewrite_fixpoint` -- semiring-safe
   algebraic rewrites (pushdowns, fusions, eliminations, and the
   idempotence-gated deduplications) until the plan stops changing;
2. :func:`~repro.planner.reorder.reorder_joins` -- greedy cost-based
   reordering of every maximal join chain;
3. one more rewrite pass to clean up opportunities the reorder exposed.

``optimize`` is a fixpoint: optimizing an optimized plan returns a plan with
the same signature (the regression suite asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.ast import Query
from repro.obs import trace as _trace
from repro.planner.cost import CostModel, Statistics
from repro.planner.plans import catalog_of, infer_attributes, plan_signature
from repro.planner.reorder import reorder_joins
from repro.planner.rewrites import (
    DEFAULT_MAX_PASSES,
    RewriteContext,
    rewrite_fixpoint,
    semiring_profile,
)
from repro.relations.database import Database
from repro.semirings.base import Semiring

__all__ = ["optimize", "explain", "OptimizationReport"]


def _context(
    query: Query,
    database: Database | None,
    semiring: Semiring | None,
    statistics: Statistics | None,
    verify_properties: bool,
) -> tuple[RewriteContext, CostModel]:
    if semiring is None and database is not None:
        semiring = database.semiring
    if statistics is None and database is not None:
        statistics = Statistics.from_database(database, query.relation_names())
    catalog = catalog_of(database)
    profile = semiring_profile(semiring, verify=verify_properties)
    return RewriteContext(catalog=catalog, profile=profile), CostModel(statistics)


def optimize(
    query: Query,
    database: Database | None = None,
    *,
    semiring: Semiring | None = None,
    statistics: Statistics | None = None,
    reorder: bool = True,
    verify_properties: bool = False,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> Query:
    """Return an equivalent, cheaper plan for ``query``.

    Parameters
    ----------
    query:
        Any positive-algebra query (Definition 3.2 nodes).
    database:
        Supplies base-relation schemas (pushdown legality), statistics
        (join ordering), and the semiring (idempotence-gated rewrites).
        Optional: without it, schema-dependent rewrites simply skip and
        reordering falls back to uniform estimates.
    semiring, statistics:
        Override (or supply, when ``database`` is absent) the rewrite gate
        and the cost model inputs.
    reorder:
        Disable greedy join reordering (rewrites only) when ``False``.
    verify_properties:
        Re-check declared idempotence through
        :mod:`repro.semirings.properties` before trusting it.
    """
    ctx, model = _context(query, database, semiring, statistics, verify_properties)
    return _pipeline(query, ctx, model, reorder, max_passes)


def _pipeline(
    query: Query,
    ctx: RewriteContext,
    model: CostModel,
    reorder: bool,
    max_passes: int,
) -> Query:
    with _trace.span("planner.rewrite") as sp:
        plan = rewrite_fixpoint(query, ctx, max_passes)
        sp.set(rules=len(ctx.trace))
    if reorder:
        with _trace.span("planner.reorder"):
            plan = reorder_joins(plan, model)
            plan = rewrite_fixpoint(plan, ctx, max_passes)
    return plan


@dataclass
class OptimizationReport:
    """What :func:`explain` saw: the plans, the trace, and the estimates."""

    original: Query
    optimized: Query
    applied_rules: list[str] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0

    @property
    def changed(self) -> bool:
        return plan_signature(self.original) != plan_signature(self.optimized)

    def __str__(self) -> str:
        lines = [
            f"original:  {self.original}",
            f"optimized: {self.optimized}",
            f"estimated cost: {self.cost_before:.1f} -> {self.cost_after:.1f}",
        ]
        if self.applied_rules:
            lines.append("applied rules:")
            lines.extend(f"  - {rule}" for rule in self.applied_rules)
        else:
            lines.append("applied rules: (none)")
        return "\n".join(lines)


def explain(
    query: Query,
    database: Database | None = None,
    *,
    semiring: Semiring | None = None,
    statistics: Statistics | None = None,
    reorder: bool = True,
    verify_properties: bool = False,
    max_passes: int = DEFAULT_MAX_PASSES,
) -> OptimizationReport:
    """Optimize ``query`` and report the applied rules and cost estimates."""
    ctx, model = _context(query, database, semiring, statistics, verify_properties)
    plan = _pipeline(query, ctx, model, reorder, max_passes)
    return OptimizationReport(
        original=query,
        optimized=plan,
        applied_rules=list(ctx.trace),
        cost_before=model.cost(query),
        cost_after=model.cost(plan),
    )
