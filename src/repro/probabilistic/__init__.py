"""Probabilistic databases: event tables and tuple-independent databases (Figure 4, Section 8)."""

from repro.probabilistic.event_tables import (
    EventTable,
    IndependentEventSpace,
    event_database,
)
from repro.probabilistic.tuple_independent import ProbabilisticDatabase

__all__ = [
    "EventTable",
    "IndependentEventSpace",
    "event_database",
    "ProbabilisticDatabase",
]
