"""Tuple-independent probabilistic databases and exact query probabilities.

This is the user-facing layer over the probabilistic machinery, with two
exact inference paths selected per call by ``method=``:

* ``"compile"`` (the default for probabilities) -- evaluate the query over a
  *lineage* database annotated in ``Circ[X]`` (one variable per base event),
  knowledge-compile each answer's provenance circuit to an ordered decision
  diagram (:mod:`repro.circuits.compile`) and weighted-model-count it.  Cost
  is governed by the compiled circuit size, not by ``2^n`` over the number
  of uncertain tuples, so this scales far beyond enumeration reach -- the
  standard lineage route to exact probabilistic query evaluation
  (Jha-Suciu).  Top-k most-probable worlds and MAP come from the same
  compiled form.
* ``"enumerate"`` -- intensional evaluation over the explicitly constructed
  world space in ``P(Omega)`` (Fuhr-Roelleke, Figure 4 of the paper),
  exponential in the number of uncertain tuples.  It stays as the
  differential oracle: on small spaces the two paths must agree exactly,
  and the event-set representation (``query_events``) is inherently an
  enumeration-world object.

Correlations induced by *shared events* (two tuples declared with the same
event name) are handled by both paths: the lineage database reuses one
circuit variable per event name, so compilation sees exactly the
dependence structure enumeration does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.algebra.ast import Query
from repro.datalog.grounding import GroundAtom
from repro.datalog.lattice_eval import (
    LatticeDatalogResult,
    evaluate_on_lattice,
    lattice_condition_provenance,
)
from repro.datalog.syntax import Program
from repro.errors import SemiringError
from repro.probabilistic.event_tables import EventTable, IndependentEventSpace
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["ProbabilisticDatabase"]

METHODS = ("compile", "enumerate")


def _check_method(method: str) -> str:
    if method not in METHODS:
        raise SemiringError(f"unknown method {method!r} (use 'compile' or 'enumerate')")
    return method


@dataclass
class ProbabilisticDatabase:
    """A collection of tuple-independent probabilistic relations.

    Usage::

        pdb = ProbabilisticDatabase()
        pdb.add_relation("R", ["a", "b", "c"], [
            (("a", "b", "c"), "x", 0.6),
            (("d", "b", "e"), "y", 0.5),
            (("f", "g", "e"), "z", 0.1),
        ])
        answer = pdb.query_probabilities(q)          # compiled inference
        oracle = pdb.query_probabilities(q, method="enumerate")
    """

    _declarations: Dict[str, tuple[tuple[str, ...], list[tuple[Any, str, float]]]] = field(
        default_factory=dict
    )
    _space: IndependentEventSpace | None = field(default=None, init=False)
    _database: Database | None = field(default=None, init=False)
    _lineage: Database | None = field(default=None, init=False)
    _compiler: Any = field(default=None, init=False)

    # -- declaration -------------------------------------------------------------
    def add_relation(
        self,
        name: str,
        attributes: Iterable[str],
        rows: Iterable[Tuple[Any, str, float]],
    ) -> None:
        """Declare a relation: rows are ``(tuple values, event name, probability)``."""
        if self._space is not None or self._lineage is not None:
            raise SemiringError("cannot add relations after the database has been built")
        self._declarations[name] = (tuple(attributes), list(rows))

    def _collect_marginals(self) -> Dict[str, float]:
        marginals: Dict[str, float] = {}
        for _, rows in self._declarations.values():
            for _, event_name, probability in rows:
                if event_name in marginals and marginals[event_name] != probability:
                    raise SemiringError(
                        f"event {event_name!r} declared with two different probabilities"
                    )
                marginals[event_name] = probability
        return marginals

    def _build(self) -> None:
        """Materialize the enumeration-path database (``P(Omega)`` events).

        The world space itself stays lazy inside
        :class:`IndependentEventSpace`, but registering event tables forces
        it, so this path is only entered by ``method="enumerate"`` calls and
        direct :attr:`database`/:attr:`space` access.
        """
        if self._space is not None:
            return
        self._space = IndependentEventSpace(self._collect_marginals())
        self._database = Database(self._space.semiring)
        for name, (attributes, rows) in self._declarations.items():
            table = EventTable.tuple_independent(attributes, rows, space=self._space)
            self._database.register(name, table.relation)

    def _build_lineage(self) -> None:
        """Materialize the compiled-path database (``Circ[X]`` lineage).

        One circuit variable *per event name* -- tuples declared with the
        same event share a variable, which is how correlation survives into
        compilation.  Never builds the world space.
        """
        if self._lineage is not None:
            return
        from repro.circuits.compile import CircuitCompiler
        from repro.circuits.nodes import var as circuit_var
        from repro.circuits.semiring import CircuitSemiring

        self._collect_marginals()  # surface conflicting declarations early
        semiring = CircuitSemiring()
        self._lineage = Database(semiring)
        for name, (attributes, rows) in self._declarations.items():
            relation = KRelation(semiring, attributes)
            for row, event_name, _probability in rows:
                relation.set(row, circuit_var(event_name))
            self._lineage.register(name, relation)
        # One compiler for the whole database: lineages of different answers
        # (and different queries) share subcircuits, so they share the
        # compile cache and the variable order.
        self._compiler = CircuitCompiler()

    # -- access ------------------------------------------------------------------
    @property
    def space(self) -> IndependentEventSpace:
        """The shared sample space (built lazily)."""
        self._build()
        assert self._space is not None
        return self._space

    @property
    def database(self) -> Database:
        """The underlying ``P(Omega)`` database (built lazily)."""
        self._build()
        assert self._database is not None
        return self._database

    @property
    def lineage_database(self) -> Database:
        """The ``Circ[X]`` lineage database used by compiled inference."""
        self._build_lineage()
        assert self._lineage is not None
        return self._lineage

    @property
    def marginals(self) -> Dict[str, float]:
        """Event name -> declared marginal probability."""
        if self._space is not None:
            return self._space.marginals
        return self._collect_marginals()

    def marginal(self, event_name: str) -> float:
        """The declared marginal probability of a base event."""
        try:
            return self.marginals[event_name]
        except KeyError:
            raise SemiringError(f"unknown event {event_name!r}") from None

    # -- querying -----------------------------------------------------------------
    def query_lineage(
        self,
        query: Query,
        *,
        optimize: bool = True,
        executor: str = "pipelined",
        storage: str | None = None,
    ) -> KRelation:
        """Evaluate a query over the lineage database: a circuit per answer."""
        return query.evaluate(
            self.lineage_database, optimize=optimize, executor=executor, storage=storage
        )

    def _compile_annotations(self, lineage: KRelation) -> Dict[Tup, Any]:
        """Compile every answer's lineage circuit (shared compiler/cache)."""
        assert self._compiler is not None
        return {tup: self._compiler.compile(node) for tup, node in lineage.items()}

    def query_events(
        self,
        query: Query,
        *,
        optimize: bool = True,
        executor: str = "pipelined",
        method: str = "enumerate",
        storage: str | None = None,
    ) -> KRelation:
        """Evaluate a positive-algebra query, returning the event of each answer.

        Events are subsets of the explicit world space, so both methods
        force its construction; the default ``"enumerate"`` evaluates the
        query directly over ``P(Omega)``, while ``"compile"`` evaluates the
        compiled lineage into ``P(Omega)`` (negation = set complement).  The
        answer events are identical -- ``"compile"`` exists here for the
        differential tests; for scalable output use
        :meth:`query_probabilities`.

        Queries run through the semiring-aware planner by default
        (``optimize=True``) and the pipelined physical engine
        (``executor="pipelined"``); the answer events are identical in every
        mode.
        """
        _check_method(method)
        if method == "enumerate":
            return query.evaluate(
                self.database, optimize=optimize, executor=executor, storage=storage
            )
        lineage = self.query_lineage(
            query, optimize=optimize, executor=executor, storage=storage
        )
        space = self.space
        semiring = space.semiring
        valuation = {name: space.event(name) for name in space.marginals}
        worlds = space.space.worlds
        result = KRelation(semiring, lineage.schema)
        for tup, compiled in self._compile_annotations(lineage).items():
            event = compiled.evaluate(
                semiring, valuation, complement=lambda e: worlds - e
            )
            if event:
                result.set(tup, event)
        return result

    def query_probabilities(
        self,
        query: Query,
        *,
        optimize: bool = True,
        executor: str = "pipelined",
        method: str = "compile",
        storage: str | None = None,
    ) -> Dict[Tup, float]:
        """Evaluate a query and return the exact probability of each answer tuple.

        ``method="compile"`` (default) weighted-model-counts the compiled
        lineage -- never builds the world space.  ``method="enumerate"`` is
        the Figure 4 oracle over explicit worlds.
        """
        _check_method(method)
        if method == "enumerate":
            events = self.query_events(
                query, optimize=optimize, executor=executor, storage=storage
            )
            return {tup: self.space.probability(event) for tup, event in events.items()}
        lineage = self.query_lineage(
            query, optimize=optimize, executor=executor, storage=storage
        )
        marginals = self.marginals
        return {
            tup: compiled.wmc(marginals)
            for tup, compiled in self._compile_annotations(lineage).items()
        }

    def query_top_k(
        self,
        query: Query,
        k: int,
        *,
        optimize: bool = True,
        executor: str = "pipelined",
        storage: str | None = None,
    ) -> Dict[Tup, List[Tuple[float, Dict[str, bool]]]]:
        """Per answer tuple: the ``k`` most probable worlds that derive it.

        Worlds are returned as ``(probability, {event name: present})`` over
        the events the tuple's lineage depends on, most probable first --
        the "most likely explanations" reading of provenance.  Compiled path
        only (enumeration has no top-k shortcut).
        """
        lineage = self.query_lineage(
            query, optimize=optimize, executor=executor, storage=storage
        )
        marginals = self.marginals
        return {
            tup: compiled.top_k(marginals, k)
            for tup, compiled in self._compile_annotations(lineage).items()
        }

    def query_map(
        self,
        query: Query,
        *,
        optimize: bool = True,
        executor: str = "pipelined",
        storage: str | None = None,
    ) -> Dict[Tup, Tuple[float, Dict[str, bool]] | None]:
        """Per answer tuple: the most probable world that derives it (MAP)."""
        lineage = self.query_lineage(
            query, optimize=optimize, executor=executor, storage=storage
        )
        marginals = self.marginals
        return {
            tup: compiled.map_model(marginals)
            for tup, compiled in self._compile_annotations(lineage).items()
        }

    # -- datalog -------------------------------------------------------------------
    def _datalog_conditions(
        self, program: Program | str, *, engine: str = "seminaive"
    ) -> LatticeDatalogResult:
        """PosBool conditions of a program over *event-name* variables.

        The EDB id map sends every ground fact to its declared event name,
        so facts sharing an event share a condition variable -- the datalog
        counterpart of the shared-variable lineage database.
        """
        if isinstance(program, str):
            program = Program.parse(program)
        lineage = self.lineage_database
        ids: Dict[GroundAtom, str] = {}
        for predicate in program.edb_predicates:
            if predicate not in lineage:
                continue
            relation = lineage.relation(predicate)
            attributes = relation.schema.attributes
            for tup, node in relation.items():
                ids[GroundAtom(predicate, tup.values_for(attributes))] = node.name
        return lattice_condition_provenance(
            program, lineage, edb_ids=ids, engine=engine
        )

    def datalog_events(
        self,
        program: Program | str,
        *,
        engine: str = "seminaive",
        method: str = "enumerate",
    ) -> KRelation:
        """Evaluate a datalog program (Section 8: P(Omega) is a finite lattice).

        The underlying PosBool(X) condition fixpoint runs on the semi-naive
        delta-driven engine by default (``engine="seminaive"``); pass
        ``engine="naive"`` for the grounding-based reference path.  As with
        :meth:`query_events`, events force the explicit world space;
        ``method="compile"`` reads them off the compiled conditions and
        exists for the differential tests.
        """
        _check_method(method)
        if isinstance(program, str):
            program = Program.parse(program)
        if method == "enumerate":
            return evaluate_on_lattice(program, self.database, engine=engine)
        provenance = self._datalog_conditions(program, engine=engine)
        space = self.space
        semiring = space.semiring
        valuation = {name: space.event(name) for name in space.marginals}
        worlds = space.space.worlds
        compiled = provenance.compile(compiler=self._compiler)
        relation = KRelation(semiring, self._datalog_output_schema(program))
        for atom, circuit in compiled.items():
            if atom.relation != program.output:
                continue
            event = circuit.evaluate(
                semiring, valuation, complement=lambda e: worlds - e
            )
            if event:
                relation.set(
                    Tup.from_values(relation.schema.attributes, atom.values), event
                )
        return relation

    def _datalog_output_schema(self, program: Program):
        from repro.relations.schema import Schema

        predicate = program.output
        if predicate in self.lineage_database:
            return self.lineage_database.relation(predicate).schema
        head_names = program.head_attributes(predicate)
        arity = program.arity(predicate)
        return Schema(head_names or [f"c{i + 1}" for i in range(arity)])

    def datalog_probabilities(
        self,
        program: Program | str,
        *,
        engine: str = "seminaive",
        method: str = "compile",
    ) -> Dict[Tup, float]:
        """Datalog evaluation with exact output probabilities.

        ``method="compile"`` (default) compiles each output atom's
        PosBool(X) condition -- over event-name variables -- and
        weighted-model-counts it against the declared marginals, without
        ever constructing the world space.
        """
        _check_method(method)
        if method == "enumerate":
            events = self.datalog_events(program, engine=engine)
            return {tup: self.space.probability(event) for tup, event in events.items()}
        if isinstance(program, str):
            program = Program.parse(program)
        provenance = self._datalog_conditions(program, engine=engine)
        marginals = self.marginals
        out: Dict[Tup, float] = {}
        compiled = provenance.compile(compiler=self._compiler)
        schema = self._datalog_output_schema(program)
        for atom, circuit in compiled.items():
            if atom.relation != program.output:
                continue
            out[Tup.from_values(schema.attributes, atom.values)] = circuit.wmc(marginals)
        return out

    def datalog_top_k(
        self, program: Program | str, k: int, *, engine: str = "seminaive"
    ) -> Dict[Tup, List[Tuple[float, Dict[str, bool]]]]:
        """Per output tuple: the ``k`` most probable worlds deriving it."""
        if isinstance(program, str):
            program = Program.parse(program)
        provenance = self._datalog_conditions(program, engine=engine)
        marginals = self.marginals
        out: Dict[Tup, List[Tuple[float, Dict[str, bool]]]] = {}
        compiled = provenance.compile(compiler=self._compiler)
        schema = self._datalog_output_schema(program)
        for atom, circuit in compiled.items():
            if atom.relation != program.output:
                continue
            out[Tup.from_values(schema.attributes, atom.values)] = circuit.top_k(
                marginals, k
            )
        return out

    def tuple_probability(self, relation_name: str, row: Any) -> float:
        """Probability that an input tuple is present (no world space needed)."""
        lineage = self.lineage_database
        node = lineage.relation(relation_name).annotation(row)
        assert self._compiler is not None
        return self._compiler.compile(node).wmc(self.marginals)
