"""Tuple-independent probabilistic databases and exact query probabilities.

This is the user-facing layer over the event-semiring machinery: declare
relations whose tuples carry independent existence probabilities, run any
positive-algebra query or datalog program, and read exact output-tuple
probabilities.  Exactness comes from working in ``P(Omega)`` over the
explicitly constructed world space (intensional evaluation in the sense of
Fuhr-Roelleke); this is exponential in the number of uncertain tuples and is
intended for the moderate sizes of the paper's examples and our benchmarks,
not as a competitor to dedicated probabilistic engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.algebra.ast import Query
from repro.datalog.lattice_eval import evaluate_on_lattice
from repro.datalog.syntax import Program
from repro.errors import SemiringError
from repro.probabilistic.event_tables import EventTable, IndependentEventSpace
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["ProbabilisticDatabase"]


@dataclass
class ProbabilisticDatabase:
    """A collection of tuple-independent probabilistic relations.

    Usage::

        pdb = ProbabilisticDatabase()
        pdb.add_relation("R", ["a", "b", "c"], [
            (("a", "b", "c"), "x", 0.6),
            (("d", "b", "e"), "y", 0.5),
            (("f", "g", "e"), "z", 0.1),
        ])
        answer = pdb.query_probabilities(q)
    """

    _declarations: Dict[str, tuple[tuple[str, ...], list[tuple[Any, str, float]]]] = field(
        default_factory=dict
    )
    _space: IndependentEventSpace | None = field(default=None, init=False)
    _database: Database | None = field(default=None, init=False)

    # -- declaration -------------------------------------------------------------
    def add_relation(
        self,
        name: str,
        attributes: Iterable[str],
        rows: Iterable[Tuple[Any, str, float]],
    ) -> None:
        """Declare a relation: rows are ``(tuple values, event name, probability)``."""
        if self._space is not None:
            raise SemiringError("cannot add relations after the database has been built")
        self._declarations[name] = (tuple(attributes), list(rows))

    def _build(self) -> None:
        if self._space is not None:
            return
        marginals: Dict[str, float] = {}
        for _, rows in self._declarations.values():
            for _, event_name, probability in rows:
                if event_name in marginals and marginals[event_name] != probability:
                    raise SemiringError(
                        f"event {event_name!r} declared with two different probabilities"
                    )
                marginals[event_name] = probability
        self._space = IndependentEventSpace(marginals)
        self._database = Database(self._space.semiring)
        for name, (attributes, rows) in self._declarations.items():
            table = EventTable.tuple_independent(attributes, rows, space=self._space)
            self._database.register(name, table.relation)

    # -- access ------------------------------------------------------------------
    @property
    def space(self) -> IndependentEventSpace:
        """The shared sample space (built lazily)."""
        self._build()
        assert self._space is not None
        return self._space

    @property
    def database(self) -> Database:
        """The underlying ``P(Omega)`` database (built lazily)."""
        self._build()
        assert self._database is not None
        return self._database

    def marginal(self, event_name: str) -> float:
        """The declared marginal probability of a base event."""
        return self.space.marginals[event_name]

    # -- querying -----------------------------------------------------------------
    def query_events(
        self, query: Query, *, optimize: bool = True, executor: str = "naive"
    ) -> KRelation:
        """Evaluate a positive-algebra query, returning the event of each answer.

        Queries run through the semiring-aware planner by default
        (``optimize=True``) -- the Proposition 3.4 rewrites are valid over
        ``P(Omega)`` like over any commutative semiring, and event-set
        annotations are expensive enough that pushdowns pay off immediately.
        ``executor="pipelined"`` additionally runs the optimized plan on the
        physical engine (:mod:`repro.engine`).  The answer events are
        identical in every mode.
        """
        return query.evaluate(self.database, optimize=optimize, executor=executor)

    def query_probabilities(
        self, query: Query, *, optimize: bool = True, executor: str = "naive"
    ) -> Dict[Tup, float]:
        """Evaluate a query and return the exact probability of each answer tuple."""
        events = self.query_events(query, optimize=optimize, executor=executor)
        return {tup: self.space.probability(event) for tup, event in events.items()}

    def datalog_events(
        self, program: Program | str, *, engine: str = "seminaive"
    ) -> KRelation:
        """Evaluate a datalog program (Section 8: P(Omega) is a finite lattice).

        The underlying PosBool(X) condition fixpoint runs on the semi-naive
        delta-driven engine by default (``engine="seminaive"``); pass
        ``engine="naive"`` for the grounding-based reference path.  The
        answer events are identical either way.
        """
        if isinstance(program, str):
            program = Program.parse(program)
        return evaluate_on_lattice(program, self.database, engine=engine)

    def datalog_probabilities(
        self, program: Program | str, *, engine: str = "seminaive"
    ) -> Dict[Tup, float]:
        """Datalog evaluation with exact output probabilities."""
        events = self.datalog_events(program, engine=engine)
        return {tup: self.space.probability(event) for tup, event in events.items()}

    def tuple_probability(self, relation_name: str, row: Any) -> float:
        """Probability that an input tuple is present."""
        relation = self.database.relation(relation_name)
        return self.space.probability(relation.annotation(row))
