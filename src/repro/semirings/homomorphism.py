"""Semiring homomorphisms and the evaluation maps ``Eval_v``.

Proposition 3.5 of the paper: a map ``h : K -> K'`` applied tuple-wise to
annotations commutes with every positive-algebra query exactly when ``h`` is
a semiring homomorphism (``h(0) = 0``, ``h(1) = 1``, ``h(a + b) = h(a) + h(b)``,
``h(a . b) = h(a) . h(b)``).  Proposition 5.7 adds omega-continuity as the
condition for commuting with datalog queries.

The most important homomorphisms are the polynomial evaluations
``Eval_v : N[X] -> K`` of Proposition 4.2 (and their power-series analogue,
Proposition 6.3): given a valuation ``v`` of the tuple-id variables into
``K``, evaluating the provenance polynomial of each output tuple recovers the
K-annotation the query would have computed directly.  That is the
factorization Theorem 4.3 / 6.4, and :func:`polynomial_evaluation` /
:func:`series_evaluation` are its operational form.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import SemiringError
from repro.semirings.base import Semiring
from repro.semirings.polynomial import Polynomial
from repro.semirings.power_series import FormalPowerSeries

__all__ = [
    "SemiringHomomorphism",
    "polynomial_evaluation",
    "series_evaluation",
    "check_homomorphism",
]


class SemiringHomomorphism:
    """A function between semirings, packaged with its source and target.

    The class does not *verify* the homomorphism laws on construction (they
    are generally undecidable for arbitrary callables); use
    :func:`check_homomorphism` to test them on sample elements, which is what
    the property-based tests do.
    """

    def __init__(
        self,
        source: Semiring,
        target: Semiring,
        function: Callable[[Any], Any],
        name: str | None = None,
    ):
        self.source = source
        self.target = target
        self._function = function
        self.name = name or f"{source.name} → {target.name}"

    def __call__(self, value: Any) -> Any:
        """Apply the homomorphism to a single annotation."""
        return self._function(self.source.coerce(value))

    def compose(self, other: "SemiringHomomorphism") -> "SemiringHomomorphism":
        """Return ``self . other`` (apply ``other`` first)."""
        if other.target is not self.source and other.target.name != self.source.name:
            raise SemiringError(
                f"cannot compose {self.name} after {other.name}: semirings do not match"
            )
        return SemiringHomomorphism(
            other.source,
            self.target,
            lambda value: self(other(value)),
            name=f"{self.name} ∘ {other.name}",
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<SemiringHomomorphism {self.name}>"


def polynomial_evaluation(
    target: Semiring, valuation: Mapping[str, Any], *, name: str | None = None
) -> SemiringHomomorphism:
    """The homomorphism ``Eval_v : N[X] -> K`` of Proposition 4.2.

    ``valuation`` maps each tuple-id variable to its annotation in the target
    semiring; the returned homomorphism evaluates provenance polynomials
    accordingly.  Values in the valuation are coerced into the target.
    """
    from repro.semirings.polynomial import PolynomialSemiring

    coerced = {variable: target.coerce(value) for variable, value in valuation.items()}
    return SemiringHomomorphism(
        PolynomialSemiring(allow_infinite_coefficients=True),
        target,
        lambda polynomial: Polynomial.of(polynomial).evaluate(target, coerced),
        name=name or f"Eval_v into {target.name}",
    )


def series_evaluation(
    target: Semiring, valuation: Mapping[str, Any], *, name: str | None = None
) -> SemiringHomomorphism:
    """The omega-continuous ``Eval_v : N-inf[[X]] -> K`` of Proposition 6.3.

    The target must be omega-continuous; for truncated series the evaluation
    covers the stored terms (exact when the series is exact).
    """
    from repro.semirings.power_series import PowerSeriesSemiring

    if not target.is_omega_continuous:
        raise SemiringError(
            f"series evaluation requires an ω-continuous target, got {target.name}"
        )
    coerced = {variable: target.coerce(value) for variable, value in valuation.items()}
    return SemiringHomomorphism(
        PowerSeriesSemiring(truncation_degree=10**9),
        target,
        lambda series: FormalPowerSeries.of(series).evaluate(target, coerced),
        name=name or f"Eval_v (series) into {target.name}",
    )


def check_homomorphism(
    homomorphism: SemiringHomomorphism, sample: Iterable[Any]
) -> list[str]:
    """Check the homomorphism laws on all pairs drawn from ``sample``.

    Returns a list of human-readable violations (empty when none were found
    on the sample).  Used by the property-based tests for Propositions 3.5
    and 4.2.
    """
    source, target = homomorphism.source, homomorphism.target
    violations: list[str] = []
    elements = [source.coerce(value) for value in sample]

    if homomorphism(source.zero()) != target.zero():
        violations.append("h(0) != 0")
    if homomorphism(source.one()) != target.one():
        violations.append("h(1) != 1")

    for a in elements:
        for b in elements:
            lhs = homomorphism(source.add(a, b))
            rhs = target.add(homomorphism(a), homomorphism(b))
            if lhs != rhs:
                violations.append(f"h({a} + {b}) = {lhs} != {rhs}")
            lhs = homomorphism(source.mul(a, b))
            rhs = target.mul(homomorphism(a), homomorphism(b))
            if lhs != rhs:
                violations.append(f"h({a} · {b}) = {lhs} != {rhs}")
    return violations
