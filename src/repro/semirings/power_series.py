"""Formal power series: the datalog provenance semiring ``N-inf[[X]]``.

Recursive datalog queries can give a tuple infinitely many derivation trees,
so its provenance is in general not a polynomial but a *formal power series*:
a map from every monomial over the input tuple ids ``X`` to a coefficient in
``N-inf`` (Section 6, Definition 6.1).  For example, in Figure 7 the
provenance of the self-loop tuple is::

    v = s + s^2 + 2 s^3 + 5 s^4 + 14 s^5 + ...

with the Catalan numbers as coefficients.

A power series over an infinite monomial set cannot be materialized, so this
module represents series *truncated by total degree*: a
:class:`FormalPowerSeries` stores exact coefficients for every monomial of
total degree at most ``truncation_degree`` and records whether higher-degree
terms may exist.  The datalog provenance engine
(:mod:`repro.datalog.provenance`) computes such truncations by
degree-stratified fixpoint iteration, which is exact because a monomial of
degree ``d`` can only be produced by derivations using at most ``d`` leaves.
Series that are actually polynomials (decided by the All-Trees algorithm of
Figure 8) are stored exactly with ``truncation_degree=None``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings.base import Semiring
from repro.semirings.numeric import INFINITY, NatInf
from repro.semirings.polynomial import Monomial, Polynomial

__all__ = ["FormalPowerSeries", "PowerSeriesSemiring"]


class FormalPowerSeries:
    """A formal power series in ``N-inf[[X]]``, truncated by total degree.

    Attributes
    ----------
    terms:
        Mapping from :class:`Monomial` to a :class:`NatInf` coefficient, with
        zero coefficients omitted.  Every stored monomial has total degree at
        most ``truncation_degree`` when the series is truncated.
    truncation_degree:
        ``None`` when the series is exact (a polynomial); otherwise the total
        degree up to which coefficients are exact.
    """

    __slots__ = ("_terms", "_truncation_degree")

    def __init__(
        self,
        terms: Mapping[Monomial, Any] | Iterable[tuple[Monomial, Any]] = (),
        truncation_degree: int | None = None,
    ):
        collected: Dict[Monomial, NatInf] = {}
        pairs = terms.items() if isinstance(terms, Mapping) else terms
        for monomial, coefficient in pairs:
            if not isinstance(monomial, Monomial):
                raise InvalidAnnotationError(f"{monomial!r} is not a Monomial")
            coefficient = NatInf.of(coefficient) if not isinstance(coefficient, NatInf) else coefficient
            if coefficient == NatInf(0):
                continue
            if truncation_degree is not None and monomial.degree > truncation_degree:
                continue
            if monomial in collected:
                collected[monomial] = collected[monomial] + coefficient
            else:
                collected[monomial] = coefficient
        object.__setattr__(
            self, "_terms", tuple(sorted(collected.items(), key=lambda kv: kv[0]))
        )
        object.__setattr__(self, "_truncation_degree", truncation_degree)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def zero(cls, truncation_degree: int | None = None) -> "FormalPowerSeries":
        """The zero series."""
        return cls((), truncation_degree)

    @classmethod
    def one(cls, truncation_degree: int | None = None) -> "FormalPowerSeries":
        """The unit series ``1``."""
        return cls({Monomial.unit(): NatInf(1)}, truncation_degree)

    @classmethod
    def var(cls, name: str, truncation_degree: int | None = None) -> "FormalPowerSeries":
        """The series for a single variable."""
        return cls({Monomial.var(name): NatInf(1)}, truncation_degree)

    @classmethod
    def from_polynomial(
        cls, polynomial: Polynomial, truncation_degree: int | None = None
    ) -> "FormalPowerSeries":
        """Embed a polynomial of ``N[X]`` / ``N-inf[X]`` into the series semiring.

        This is the embedding the paper uses in Proposition 6.2: a polynomial
        is a power series with finitely many non-zero coefficients.
        """
        return cls(
            {m: NatInf.of(c) for m, c in polynomial.terms}, truncation_degree
        )

    @classmethod
    def of(
        cls, value: "FormalPowerSeries | Polynomial | str | int | NatInf"
    ) -> "FormalPowerSeries":
        """Coerce polynomials, variables and numbers into exact series."""
        if isinstance(value, FormalPowerSeries):
            return value
        return cls.from_polynomial(Polynomial.of(value))

    # -- structure ------------------------------------------------------------
    @property
    def terms(self) -> Tuple[tuple[Monomial, NatInf], ...]:
        """Sorted (monomial, coefficient) pairs, zero coefficients omitted."""
        return self._terms

    @property
    def truncation_degree(self) -> int | None:
        """Degree up to which coefficients are exact, ``None`` when exact everywhere."""
        return self._truncation_degree

    @property
    def is_exact(self) -> bool:
        """Whether the series is known exactly (i.e. is a polynomial)."""
        return self._truncation_degree is None

    @property
    def variables(self) -> frozenset[str]:
        """Variables occurring in the stored terms."""
        result: set[str] = set()
        for monomial, _ in self._terms:
            result |= monomial.variables
        return frozenset(result)

    def coefficient(self, monomial: Monomial) -> NatInf:
        """Coefficient of ``monomial``.

        Raises :class:`SemiringError` when the monomial's degree exceeds the
        truncation degree, since the coefficient is then unknown; use
        :mod:`repro.datalog.monomial_coefficient` to compute it exactly.
        """
        if (
            self._truncation_degree is not None
            and monomial.degree > self._truncation_degree
        ):
            raise SemiringError(
                f"coefficient of {monomial} is beyond the truncation degree "
                f"{self._truncation_degree}"
            )
        for m, c in self._terms:
            if m == monomial:
                return c
        return NatInf(0)

    def to_polynomial(self) -> Polynomial:
        """Convert an exact series back into a polynomial.

        Raises :class:`SemiringError` when the series is truncated.
        """
        if not self.is_exact:
            raise SemiringError("a truncated power series is not a polynomial")
        return Polynomial({m: c for m, c in self._terms})

    # -- algebra ---------------------------------------------------------------
    def _combined_truncation(self, other: "FormalPowerSeries") -> int | None:
        if self._truncation_degree is None:
            return other._truncation_degree
        if other._truncation_degree is None:
            return self._truncation_degree
        return min(self._truncation_degree, other._truncation_degree)

    def __add__(self, other: "FormalPowerSeries | Polynomial | str | int") -> "FormalPowerSeries":
        other = FormalPowerSeries.of(other)
        truncation = self._combined_truncation(other)
        terms: Dict[Monomial, NatInf] = dict(self._terms)
        for monomial, coefficient in other._terms:
            if monomial in terms:
                terms[monomial] = terms[monomial] + coefficient
            else:
                terms[monomial] = coefficient
        return FormalPowerSeries(terms, truncation)

    __radd__ = __add__

    def __mul__(self, other: "FormalPowerSeries | Polynomial | str | int") -> "FormalPowerSeries":
        other = FormalPowerSeries.of(other)
        truncation = self._combined_truncation(other)
        terms: Dict[Monomial, NatInf] = {}
        for m1, c1 in self._terms:
            for m2, c2 in other._terms:
                monomial = m1 * m2
                if truncation is not None and monomial.degree > truncation:
                    continue
                coefficient = c1 * c2
                if monomial in terms:
                    terms[monomial] = terms[monomial] + coefficient
                else:
                    terms[monomial] = coefficient
        return FormalPowerSeries(terms, truncation)

    __rmul__ = __mul__

    def truncate(self, max_degree: int) -> "FormalPowerSeries":
        """Return the series truncated to total degree ``max_degree``."""
        if self._truncation_degree is not None:
            max_degree = min(max_degree, self._truncation_degree)
        return FormalPowerSeries(
            {m: c for m, c in self._terms if m.degree <= max_degree}, max_degree
        )

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, Any]) -> Any:
        """Evaluate in an omega-continuous semiring (Proposition 6.3).

        For truncated series this evaluates the known part only; callers
        needing exact evaluation should evaluate the algebraic system itself
        directly in the target semiring (Theorem 6.4), which is what
        :mod:`repro.datalog.fixpoint` does.
        """
        polynomial = Polynomial({m: c for m, c in self._terms})
        return polynomial.evaluate(semiring, valuation)

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Polynomial, str, int, NatInf)):
            other = FormalPowerSeries.of(other)
        if not isinstance(other, FormalPowerSeries):
            return NotImplemented
        return (
            self._terms == other._terms
            and self._truncation_degree == other._truncation_degree
        )

    def __hash__(self) -> int:
        return hash(("FormalPowerSeries", self._terms, self._truncation_degree))

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __repr__(self) -> str:
        return f"FormalPowerSeries({self})"

    def __str__(self) -> str:
        if not self._terms:
            rendered = "0"
        else:
            parts = []
            for monomial, coefficient in self._terms:
                if monomial.is_unit():
                    parts.append(str(coefficient))
                elif coefficient == NatInf(1):
                    parts.append(str(monomial))
                else:
                    parts.append(f"{coefficient}·{monomial}")
            rendered = " + ".join(parts)
        if self._truncation_degree is not None:
            rendered += f" + O(deg>{self._truncation_degree})"
        return rendered


class PowerSeriesSemiring(Semiring):
    """``N-inf[[X]]`` truncated at a chosen total degree.

    The datalog provenance semiring of Definition 6.1.  Working with a fixed
    truncation degree keeps every operation finite while remaining exact for
    all coefficients of total degree up to the truncation; this is the
    representation used by the fixpoint-based provenance computation.
    """

    idempotent_add = False
    is_omega_continuous = True
    has_top = False

    def __init__(self, truncation_degree: int = 8, name: str | None = None):
        if truncation_degree < 0:
            raise SemiringError("truncation degree must be non-negative")
        self.truncation_degree = truncation_degree
        self.name = name or f"N∞[[X]] (deg ≤ {truncation_degree})"

    def zero(self) -> FormalPowerSeries:
        return FormalPowerSeries.zero(self.truncation_degree)

    def one(self) -> FormalPowerSeries:
        return FormalPowerSeries.one(self.truncation_degree)

    def var(self, name: str) -> FormalPowerSeries:
        """The series of a single tuple-id variable."""
        return FormalPowerSeries.var(name, self.truncation_degree)

    def add(self, a: FormalPowerSeries, b: FormalPowerSeries) -> FormalPowerSeries:
        return self.coerce(a) + self.coerce(b)

    def mul(self, a: FormalPowerSeries, b: FormalPowerSeries) -> FormalPowerSeries:
        return self.coerce(a) * self.coerce(b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, FormalPowerSeries)

    def coerce(self, value: Any) -> FormalPowerSeries:
        series = FormalPowerSeries.of(value)
        return series.truncate(self.truncation_degree)

    def leq(self, a: FormalPowerSeries, b: FormalPowerSeries) -> bool:
        """Coefficient-wise comparison on the stored (truncated) terms."""
        a, b = self.coerce(a), self.coerce(b)
        monomials = {m for m, _ in a.terms} | {m for m, _ in b.terms}
        return all(a.coefficient(m) <= b.coefficient(m) for m in monomials)

    def format_value(self, value: Any) -> str:
        return str(self.coerce(value))
