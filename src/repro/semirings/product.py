"""Component-wise product semirings ``K1 x K2 x ... x Kn``.

Products of commutative semirings are again commutative semirings with all
operations defined component-wise.  They are used in the paper implicitly --
``K^n`` with the component-wise structure carries the solutions of algebraic
systems (Definition 5.5) -- and they are practically useful for computing
several annotation kinds in a single pass (for example bag multiplicity and
why-provenance at once).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings.base import Semiring

__all__ = ["ProductSemiring"]


class ProductSemiring(Semiring):
    """The product of two or more semirings, with component-wise operations.

    Annotations are tuples with one component per factor.  The product is
    omega-continuous / idempotent / a distributive lattice exactly when every
    factor is, which the constructor records in the capability flags.
    """

    def __init__(self, factors: Sequence[Semiring], name: str | None = None):
        if len(factors) < 2:
            raise SemiringError("a product semiring needs at least two factors")
        self.factors = tuple(factors)
        self.name = name or " × ".join(factor.name for factor in self.factors)
        self.idempotent_add = all(f.idempotent_add for f in self.factors)
        self.idempotent_mul = all(f.idempotent_mul for f in self.factors)
        self.is_omega_continuous = all(f.is_omega_continuous for f in self.factors)
        self.is_distributive_lattice = all(
            f.is_distributive_lattice for f in self.factors
        )
        self.has_top = all(f.has_top for f in self.factors)

    def zero(self) -> tuple:
        return tuple(factor.zero() for factor in self.factors)

    def one(self) -> tuple:
        return tuple(factor.one() for factor in self.factors)

    def add(self, a: tuple, b: tuple) -> tuple:
        a, b = self.coerce(a), self.coerce(b)
        return tuple(
            factor.add(x, y) for factor, x, y in zip(self.factors, a, b)
        )

    def mul(self, a: tuple, b: tuple) -> tuple:
        a, b = self.coerce(a), self.coerce(b)
        return tuple(
            factor.mul(x, y) for factor, x, y in zip(self.factors, a, b)
        )

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == len(self.factors)
            and all(factor.contains(v) for factor, v in zip(self.factors, value))
        )

    def coerce(self, value: Any) -> tuple:
        if not isinstance(value, tuple) or len(value) != len(self.factors):
            raise InvalidAnnotationError(
                f"{value!r} is not a {len(self.factors)}-component annotation"
            )
        return tuple(factor.coerce(v) for factor, v in zip(self.factors, value))

    def top(self) -> tuple:
        if not self.has_top:
            raise SemiringError(f"{self.name} has no top element")
        return tuple(factor.top() for factor in self.factors)

    def leq(self, a: tuple, b: tuple) -> bool:
        a, b = self.coerce(a), self.coerce(b)
        return all(
            factor.leq(x, y) for factor, x, y in zip(self.factors, a, b)
        )

    def star(self, a: tuple) -> tuple:
        a = self.coerce(a)
        return tuple(factor.star(x) for factor, x in zip(self.factors, a))

    def format_value(self, value: Any) -> str:
        value = self.coerce(value)
        rendered = ", ".join(
            factor.format_value(v) for factor, v in zip(self.factors, value)
        )
        return f"({rendered})"
