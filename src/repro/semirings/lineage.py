"""Lineage / why-provenance semirings.

Section 4 of the paper recalls that *why-provenance* (also called lineage)
annotates each output tuple with the set of input tuples that contribute to
it, and observes that computing it is exactly the generic positive algebra of
Definition 3.2 instantiated at the semiring ``(P(X), U, U, {}, {})`` where
``X`` is the set of input tuple identifiers and *both* operations are union.

Taken literally, ``(P(X), U, U, {}, {})`` has ``0 = 1 = {}`` and therefore
violates the annihilation axiom (``a . 0 = 0``); the standard repair -- used
in the authors' own follow-up work -- is the *lineage semiring* ``Lin(X)``,
which adds a distinct bottom element ``⊥`` as the zero while keeping ``{}``
as the one.  On every example in the paper the two behave identically
(``⊥`` only ever annotates absent tuples), so :class:`WhyProvenanceSemiring`
implements ``Lin(X)`` and reproduces Figure 5(b) exactly while satisfying
all the semiring laws.

Two closely related structures are provided:

* :class:`WhyProvenanceSemiring` -- lineage / why-provenance as above.
* :class:`WitnessWhySemiring` -- the finer "witness set" variant of Buneman,
  Khanna & Tan, where an annotation is a *set of sets* of contributing tuples
  (one inner set per derivation).  It is not used by the paper's examples but
  is the standard intermediate point between lineage and the provenance
  polynomials of ``N[X]``, and is included to let users compare all three.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable

from repro.errors import InvalidAnnotationError
from repro.semirings.base import Semiring

__all__ = ["BOTTOM", "WhyProvenanceSemiring", "WitnessWhySemiring", "witness_set"]


class _Bottom:
    """The distinguished zero (⊥) of the lineage semiring ``Lin(X)``."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __hash__(self) -> int:
        return hash("lineage-bottom")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Bottom)


#: The zero element ("no lineage, tuple absent") of :class:`WhyProvenanceSemiring`.
BOTTOM = _Bottom()


def _as_frozenset(value: Any, name: str) -> frozenset:
    if isinstance(value, frozenset):
        return value
    if isinstance(value, (set, list, tuple)):
        return frozenset(value)
    if isinstance(value, str):
        return frozenset({value})
    raise InvalidAnnotationError(f"{value!r} is not a set annotation for {name}")


class WhyProvenanceSemiring(Semiring):
    """The lineage semiring ``Lin(X) = (P(X) ∪ {⊥}, +, ·, ⊥, {})``.

    Annotations of present tuples are frozensets of contributing tuple ids;
    ``⊥`` (exposed as :data:`BOTTOM`) tags absent tuples.  Both operations
    are set union on present annotations -- this is the paper's
    why-provenance computation of Figure 5(b) -- while ``⊥`` behaves as a
    proper annihilating zero, repairing the annihilation axiom that the naive
    ``0 = 1 = {}`` reading of the paper's structure violates.
    """

    name = "Why(X)"
    idempotent_add = True
    idempotent_mul = True
    is_omega_continuous = True
    is_distributive_lattice = False

    def zero(self) -> Any:
        return BOTTOM

    def one(self) -> frozenset:
        return frozenset()

    def add(self, a: Any, b: Any) -> Any:
        a, b = self.coerce(a), self.coerce(b)
        if isinstance(a, _Bottom):
            return b
        if isinstance(b, _Bottom):
            return a
        return a | b

    def mul(self, a: Any, b: Any) -> Any:
        a, b = self.coerce(a), self.coerce(b)
        if isinstance(a, _Bottom) or isinstance(b, _Bottom):
            return BOTTOM
        return a | b

    def contains(self, value: Any) -> bool:
        return isinstance(value, (frozenset, _Bottom))

    def coerce(self, value: Any) -> Any:
        if isinstance(value, _Bottom):
            return value
        if value is None:
            return BOTTOM
        return _as_frozenset(value, self.name)

    def leq(self, a: Any, b: Any) -> bool:
        a, b = self.coerce(a), self.coerce(b)
        if isinstance(a, _Bottom):
            return True
        if isinstance(b, _Bottom):
            return False
        return a <= b

    def star(self, a: Any) -> Any:
        """``a* = 1 + a + ... = {} ∪ a``, i.e. ``a`` itself for present annotations."""
        a = self.coerce(a)
        if isinstance(a, _Bottom):
            return frozenset()
        return a

    def format_value(self, value: Any) -> str:
        value = self.coerce(value)
        if isinstance(value, _Bottom):
            return "⊥"
        if not value:
            return "{}"
        return "{" + ", ".join(sorted(map(str, value))) + "}"


def witness_set(*witnesses: Iterable[str]) -> frozenset[FrozenSet[str]]:
    """Build a witness-why annotation from an iterable of witnesses.

    Each witness is a set of input tuple identifiers sufficient to derive the
    output tuple.  ``witness_set({"p"}, {"r", "s"})`` builds the annotation
    ``{{p}, {r, s}}``.
    """
    return frozenset(frozenset(map(str, witness)) for witness in witnesses)


class WitnessWhySemiring(Semiring):
    """Witness-set why-provenance: annotations are sets of witnesses.

    Addition unions the witness collections; multiplication combines every
    witness of one side with every witness of the other (pairwise union).
    ``0`` is the empty collection, ``1`` is the collection containing only the
    empty witness.  This is ``PosBool`` without absorption-minimization --
    equivalently, the "why provenance" of Buneman et al. -- and sits between
    lineage and the provenance polynomials in informativeness.
    """

    name = "Why-witness(X)"
    idempotent_add = True
    idempotent_mul = False
    is_omega_continuous = True
    is_distributive_lattice = False

    def zero(self) -> frozenset:
        return frozenset()

    def one(self) -> frozenset:
        return frozenset({frozenset()})

    def add(self, a: frozenset, b: frozenset) -> frozenset:
        return self.coerce(a) | self.coerce(b)

    def mul(self, a: frozenset, b: frozenset) -> frozenset:
        a, b = self.coerce(a), self.coerce(b)
        return frozenset(w1 | w2 for w1 in a for w2 in b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, frozenset) and all(
            isinstance(w, frozenset) for w in value
        )

    def coerce(self, value: Any) -> frozenset:
        if self.contains(value):
            return value
        if isinstance(value, str):
            return frozenset({frozenset({value})})
        if isinstance(value, (set, list, tuple, frozenset)):
            return frozenset(frozenset(map(str, w)) for w in value)
        raise InvalidAnnotationError(
            f"{value!r} is not a witness-set annotation for {self.name}"
        )

    def leq(self, a: frozenset, b: frozenset) -> bool:
        return self.coerce(a) <= self.coerce(b)

    def format_value(self, value: Any) -> str:
        value = self.coerce(value)
        witnesses = sorted(
            ("{" + ", ".join(sorted(w)) + "}") for w in value
        )
        return "{" + ", ".join(witnesses) + "}"
