"""Numeric semirings: the naturals ``N`` and the completed naturals ``N-inf``.

``(N, +, ., 0, 1)`` gives the bag (multiset) semantics of the positive
relational algebra: a tuple's annotation is its multiplicity (Figure 3 of the
paper).  ``N`` is *not* omega-continuous -- infinite sums are undefined -- so
datalog semantics instead uses its completion ``N-inf`` which adds a greatest
element ``infinity`` with ``infinity + n = infinity`` and
``infinity . n = infinity`` except ``infinity . 0 = 0`` (Section 5).

Infinity is modelled by the dedicated value class :class:`NatInf` so that
annotations remain plain hashable values; ordinary Python ``int`` values are
accepted and coerced.
"""

from __future__ import annotations

import functools
from typing import Any

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings.base import Semiring

__all__ = ["NatInf", "INFINITY", "NaturalsSemiring", "CompletedNaturalsSemiring"]


@functools.total_ordering
class NatInf:
    """An element of ``N-inf``: a natural number or the value infinity.

    Instances are immutable, hashable, and interoperate with Python ``int``
    in arithmetic and comparisons.  The module-level constant
    :data:`INFINITY` is the canonical infinite value.
    """

    __slots__ = ("_value",)

    def __init__(self, value: int | None = 0):
        """Create a value; ``None`` means infinity, otherwise a natural number."""
        if value is not None:
            if isinstance(value, NatInf):
                value = value._value
            elif not isinstance(value, int) or isinstance(value, bool):
                raise InvalidAnnotationError(f"{value!r} is not a natural number")
            if value is not None and value < 0:
                raise InvalidAnnotationError("NatInf values must be non-negative")
        self._value = value

    # -- construction helpers -------------------------------------------------
    @classmethod
    def infinity(cls) -> "NatInf":
        """Return the infinite value."""
        return cls(None)

    @classmethod
    def of(cls, value: "NatInf | int") -> "NatInf":
        """Coerce an ``int`` or ``NatInf`` into a ``NatInf``."""
        if isinstance(value, NatInf):
            return value
        return cls(value)

    # -- predicates ------------------------------------------------------------
    @property
    def is_infinite(self) -> bool:
        """Whether this value is infinity."""
        return self._value is None

    @property
    def is_finite(self) -> bool:
        """Whether this value is a natural number."""
        return self._value is not None

    def finite_value(self) -> int:
        """Return the underlying ``int``; raise if the value is infinite."""
        if self._value is None:
            raise SemiringError("value is infinite")
        return self._value

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: "NatInf | int") -> "NatInf":
        other = NatInf.of(other)
        if self.is_infinite or other.is_infinite:
            return INFINITY
        return NatInf(self._value + other._value)

    __radd__ = __add__

    def __mul__(self, other: "NatInf | int") -> "NatInf":
        other = NatInf.of(other)
        # infinity . 0 = 0 . infinity = 0, everything else with an infinite
        # factor is infinite (Section 5 of the paper).
        if (self.is_finite and self._value == 0) or (
            other.is_finite and other._value == 0
        ):
            return NatInf(0)
        if self.is_infinite or other.is_infinite:
            return INFINITY
        return NatInf(self._value * other._value)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "NatInf":
        if exponent < 0:
            raise SemiringError("negative exponents are undefined in N-inf")
        if exponent == 0:
            return NatInf(1)
        if self.is_infinite:
            return INFINITY
        return NatInf(self._value**exponent)

    # -- comparisons -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int) and not isinstance(other, bool):
            other = NatInf(other)
        if not isinstance(other, NatInf):
            return NotImplemented
        return self._value == other._value

    def __lt__(self, other: "NatInf | int") -> bool:
        other = NatInf.of(other)
        if self.is_infinite:
            return False
        if other.is_infinite:
            return True
        return self._value < other._value

    def __hash__(self) -> int:
        # Finite values hash like their int so that 3 and NatInf(3) coincide
        # as dictionary keys; infinity gets a stable dedicated hash.
        if self._value is None:
            return hash(("NatInf", "infinity"))
        return hash(self._value)

    def __bool__(self) -> bool:
        return self._value != 0

    def __repr__(self) -> str:
        return "∞" if self._value is None else str(self._value)


#: The canonical infinite element of ``N-inf``.
INFINITY = NatInf(None)


class NaturalsSemiring(Semiring):
    """``(N, +, ., 0, 1)`` -- bag semantics (tuple multiplicities).

    Not omega-continuous: datalog evaluation over ``N`` may fail to converge,
    use :class:`CompletedNaturalsSemiring` instead for recursive queries.
    """

    name = "N"
    idempotent_add = False
    is_omega_continuous = False

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def coerce(self, value: Any) -> int:
        if isinstance(value, NatInf):
            return value.finite_value()
        if isinstance(value, bool):
            return 1 if value else 0
        return self.check(value)

    def leq(self, a: int, b: int) -> bool:
        return a <= b

    def from_int(self, n: int) -> int:
        if n < 0:
            raise SemiringError("naturals are non-negative")
        return n


class CompletedNaturalsSemiring(Semiring):
    """``(N-inf, +, ., 0, 1)`` -- the omega-continuous completion of ``N``.

    This is the semiring in which datalog with bag semantics is evaluated
    (Figure 7 of the paper): tuples with infinitely many derivation trees get
    annotation infinity.
    """

    name = "N∞"
    idempotent_add = False
    is_omega_continuous = True
    has_top = True

    def zero(self) -> NatInf:
        return NatInf(0)

    def one(self) -> NatInf:
        return NatInf(1)

    def add(self, a: NatInf, b: NatInf) -> NatInf:
        return NatInf.of(a) + NatInf.of(b)

    def mul(self, a: NatInf, b: NatInf) -> NatInf:
        return NatInf.of(a) * NatInf.of(b)

    def contains(self, value: Any) -> bool:
        if isinstance(value, NatInf):
            return True
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def coerce(self, value: Any) -> NatInf:
        if isinstance(value, bool):
            return NatInf(1) if value else NatInf(0)
        if isinstance(value, NatInf):
            return value
        if isinstance(value, int) and value >= 0:
            return NatInf(value)
        raise InvalidAnnotationError(f"{value!r} is not an element of N∞")

    def top(self) -> NatInf:
        return INFINITY

    def leq(self, a: NatInf, b: NatInf) -> bool:
        return NatInf.of(a) <= NatInf.of(b)

    def from_int(self, n: int) -> NatInf:
        return NatInf(n)

    def star(self, a: NatInf) -> NatInf:
        """``a* = 1`` when ``a == 0``, infinity otherwise (e.g. ``1* = ∞``)."""
        a = NatInf.of(a)
        if a.is_finite and a.finite_value() == 0:
            return NatInf(1)
        return INFINITY

    def format_value(self, value: Any) -> str:
        return repr(NatInf.of(value))
