"""Provenance polynomials: the semiring ``N[X]`` (and ``K[X]`` generally).

Section 4 of the paper proposes annotating output tuples with *polynomials*
over the input tuple identifiers: the provenance semiring of a database
instance with tuple ids ``X`` is ``(N[X], +, ., 0, 1)``, polynomials in
commuting variables ``X`` with natural-number coefficients.  Such a
polynomial fully documents *how* an output tuple was produced: each monomial
is one derivation (which input tuples were joined, with multiplicity), and
the coefficient counts how many derivations use exactly that combination
(Figure 5(c)).

Universality (Proposition 4.2): for every commutative semiring ``K`` and
valuation ``v : X -> K`` there is a unique homomorphism
``Eval_v : N[X] -> K`` with ``Eval_v(x) = v(x)``; hence every K-annotation
computation factors through the provenance computation (Theorem 4.3).  The
evaluation homomorphism is implemented by :meth:`Polynomial.evaluate` and
wrapped as a proper homomorphism object in
:mod:`repro.semirings.homomorphism`.

Coefficients are, by default, Python non-negative ``int`` values (the
semiring ``N``); :class:`~repro.semirings.numeric.NatInf` coefficients are
also supported so the same class doubles as ``N-inf[X]``, the polynomial
fragment of the datalog provenance semiring of Section 6.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import InvalidAnnotationError, ParseError, SemiringError
from repro.semirings.base import Semiring
from repro.semirings.numeric import INFINITY, NatInf

__all__ = ["Monomial", "Polynomial", "PolynomialSemiring", "ProvenancePolynomialSemiring"]


class Monomial:
    """A commutative monomial: a map from variable name to positive exponent.

    The empty monomial (written ``1`` or epsilon in the paper) has no
    variables and acts as the multiplicative unit.  Instances are immutable
    and hashable and are ordered by (total degree, sorted variable powers),
    which gives deterministic printing of polynomials.
    """

    __slots__ = ("_powers",)

    def __init__(self, powers: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items: Dict[str, int] = {}
        pairs = powers.items() if isinstance(powers, Mapping) else powers
        for variable, exponent in pairs:
            if not isinstance(exponent, int) or exponent < 0:
                raise InvalidAnnotationError(
                    f"exponent of {variable!r} must be a non-negative int, got {exponent!r}"
                )
            if exponent:
                items[str(variable)] = items.get(str(variable), 0) + exponent
        object.__setattr__(self, "_powers", tuple(sorted(items.items())))

    # -- constructors ---------------------------------------------------------
    @classmethod
    def unit(cls) -> "Monomial":
        """The empty monomial ``1``."""
        return cls(())

    @classmethod
    def var(cls, name: str, exponent: int = 1) -> "Monomial":
        """The monomial ``name^exponent``."""
        return cls(((name, exponent),))

    @classmethod
    def from_bag(cls, variables: Iterable[str]) -> "Monomial":
        """Build a monomial from a multiset of variable occurrences.

        ``from_bag(["r", "s", "s"])`` is ``r . s^2`` -- this matches the
        paper's view of a derivation-tree fringe as a bag of leaf labels.
        """
        powers: Dict[str, int] = {}
        for variable in variables:
            powers[str(variable)] = powers.get(str(variable), 0) + 1
        return cls(powers)

    # -- structure ------------------------------------------------------------
    @property
    def powers(self) -> Tuple[tuple[str, int], ...]:
        """Sorted tuple of (variable, exponent) pairs."""
        return self._powers

    @property
    def variables(self) -> frozenset[str]:
        """The variables occurring with non-zero exponent."""
        return frozenset(v for v, _ in self._powers)

    @property
    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(e for _, e in self._powers)

    def exponent(self, variable: str) -> int:
        """Exponent of ``variable`` (0 when absent)."""
        for v, e in self._powers:
            if v == variable:
                return e
        return 0

    def is_unit(self) -> bool:
        """Whether this is the empty monomial."""
        return not self._powers

    def divides(self, other: "Monomial") -> bool:
        """Whether this monomial divides ``other`` (component-wise <=)."""
        return all(other.exponent(v) >= e for v, e in self._powers)

    # -- algebra ---------------------------------------------------------------
    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        powers = dict(self._powers)
        for variable, exponent in other._powers:
            powers[variable] = powers.get(variable, 0) + exponent
        return Monomial(powers)

    def __pow__(self, exponent: int) -> "Monomial":
        if exponent < 0:
            raise SemiringError("monomials cannot have negative powers")
        return Monomial({v: e * exponent for v, e in self._powers})

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, Any]) -> Any:
        """Evaluate the monomial in ``semiring`` under ``valuation``."""
        result = semiring.one()
        for variable, exponent in self._powers:
            if variable not in valuation:
                raise SemiringError(f"valuation is missing variable {variable!r}")
            result = semiring.mul(
                result, semiring.power(valuation[variable], exponent)
            )
        return result

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._powers == other._powers

    def __hash__(self) -> int:
        return hash(("Monomial", self._powers))

    def __lt__(self, other: "Monomial") -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return (self.degree, self._powers) < (other.degree, other._powers)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._powers)

    def __repr__(self) -> str:
        return f"Monomial({self})"

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for variable, exponent in self._powers:
            parts.append(variable if exponent == 1 else f"{variable}^{exponent}")
        return "·".join(parts)


_TERM_RE = re.compile(r"\s*([+])?\s*([^+]+)")
_FACTOR_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)(?:\^(\d+))?$|^(\d+|∞)$")


class Polynomial:
    """A polynomial: a finite map from :class:`Monomial` to a coefficient.

    Coefficients are non-negative integers or :class:`NatInf` values; zero
    coefficients are never stored.  Instances are immutable and hashable so
    they can serve directly as K-relation annotations.

    The arithmetic operators ``+`` and ``*`` implement the polynomial
    semiring operations; :meth:`evaluate` is the ``Eval_v`` homomorphism of
    Proposition 4.2.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, Any] | Iterable[tuple[Monomial, Any]] = ()):
        collected: Dict[Monomial, Any] = {}
        pairs = terms.items() if isinstance(terms, Mapping) else terms
        for monomial, coefficient in pairs:
            if not isinstance(monomial, Monomial):
                raise InvalidAnnotationError(f"{monomial!r} is not a Monomial")
            coefficient = _check_coefficient(coefficient)
            if _is_zero_coefficient(coefficient):
                continue
            if monomial in collected:
                collected[monomial] = collected[monomial] + coefficient
            else:
                collected[monomial] = coefficient
        object.__setattr__(
            self, "_terms", tuple(sorted(collected.items(), key=lambda kv: kv[0]))
        )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls(())

    @classmethod
    def one(cls) -> "Polynomial":
        """The unit polynomial ``1``."""
        return cls({Monomial.unit(): 1})

    @classmethod
    def var(cls, name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        return cls({Monomial.var(name): 1})

    @classmethod
    def constant(cls, value: int | NatInf) -> "Polynomial":
        """A constant polynomial."""
        return cls({Monomial.unit(): value})

    @classmethod
    def monomial(cls, monomial: Monomial, coefficient: int | NatInf = 1) -> "Polynomial":
        """A single-term polynomial ``coefficient . monomial``."""
        return cls({monomial: coefficient})

    @classmethod
    def of(cls, value: "Polynomial | Monomial | str | int | NatInf") -> "Polynomial":
        """Coerce a variable name, number, monomial or polynomial."""
        if isinstance(value, Polynomial):
            return value
        if isinstance(value, Monomial):
            return cls.monomial(value)
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, bool):
            return cls.one() if value else cls.zero()
        if isinstance(value, (int, NatInf)):
            return cls.constant(value)
        raise InvalidAnnotationError(f"{value!r} cannot be read as a polynomial")

    @classmethod
    def parse(cls, text: str) -> "Polynomial":
        """Parse ``"2*p^2 + r*s"``-style polynomial syntax.

        Supported syntax: terms joined by ``+``; each term is a ``*`` or
        ``·``-separated list of factors, where a factor is either a
        non-negative integer, the infinity symbol ``∞``, or ``var`` /
        ``var^k``.  A bare variable name parses as that variable.
        """
        text = text.strip()
        if not text:
            return cls.zero()
        terms: Dict[Monomial, Any] = {}
        for raw_term in text.split("+"):
            raw_term = raw_term.strip()
            if not raw_term:
                raise ParseError(f"empty term in polynomial {text!r}")
            coefficient: Any = 1
            powers: Dict[str, int] = {}
            for raw_factor in re.split(r"[*·]", raw_term):
                raw_factor = raw_factor.strip()
                if not raw_factor:
                    raise ParseError(f"empty factor in term {raw_term!r}")
                match = _FACTOR_RE.match(raw_factor)
                if not match:
                    raise ParseError(f"cannot parse factor {raw_factor!r}")
                if match.group(3) is not None:
                    value = INFINITY if match.group(3) == "∞" else int(match.group(3))
                    coefficient = coefficient * value
                else:
                    variable = match.group(1)
                    exponent = int(match.group(2)) if match.group(2) else 1
                    powers[variable] = powers.get(variable, 0) + exponent
            monomial = Monomial(powers)
            if monomial in terms:
                terms[monomial] = terms[monomial] + coefficient
            else:
                terms[monomial] = coefficient
        return cls(terms)

    # -- structure ------------------------------------------------------------
    @property
    def terms(self) -> Tuple[tuple[Monomial, Any], ...]:
        """Sorted tuple of (monomial, coefficient) pairs with non-zero coefficients."""
        return self._terms

    @property
    def monomials(self) -> tuple[Monomial, ...]:
        """The monomials with non-zero coefficient, in canonical order."""
        return tuple(m for m, _ in self._terms)

    @property
    def variables(self) -> frozenset[str]:
        """All variables occurring in the polynomial."""
        result: set[str] = set()
        for monomial, _ in self._terms:
            result |= monomial.variables
        return frozenset(result)

    @property
    def degree(self) -> int:
        """Total degree (0 for the zero polynomial)."""
        return max((m.degree for m, _ in self._terms), default=0)

    def coefficient(self, monomial: Monomial | str) -> Any:
        """Coefficient of ``monomial`` (0 when absent)."""
        if isinstance(monomial, str):
            single = Polynomial.parse(monomial)
            if len(single._terms) != 1 or not _is_one_coefficient(single._terms[0][1]):
                raise ParseError(f"{monomial!r} does not denote a single monomial")
            monomial = single._terms[0][0]
        for m, c in self._terms:
            if m == monomial:
                return c
        return 0

    def is_zero(self) -> bool:
        """Whether this is the zero polynomial."""
        return not self._terms

    def is_constant(self) -> bool:
        """Whether the polynomial has no variables."""
        return all(m.is_unit() for m, _ in self._terms)

    def has_infinite_coefficient(self) -> bool:
        """Whether any coefficient is the infinite value of ``N-inf``."""
        return any(isinstance(c, NatInf) and c.is_infinite for _, c in self._terms)

    def number_of_derivations(self) -> Any:
        """Total number of derivations: the sum of all coefficients.

        Under the bag interpretation this is the multiplicity obtained by
        setting every variable to 1.
        """
        total: Any = 0
        for _, coefficient in self._terms:
            total = total + coefficient
        return total

    # -- algebra ---------------------------------------------------------------
    def __add__(self, other: "Polynomial | str | int") -> "Polynomial":
        other = Polynomial.of(other)
        terms: Dict[Monomial, Any] = dict(self._terms)
        for monomial, coefficient in other._terms:
            if monomial in terms:
                terms[monomial] = terms[monomial] + coefficient
            else:
                terms[monomial] = coefficient
        return Polynomial(terms)

    __radd__ = __add__

    def __mul__(self, other: "Polynomial | str | int") -> "Polynomial":
        other = Polynomial.of(other)
        terms: Dict[Monomial, Any] = {}
        for m1, c1 in self._terms:
            for m2, c2 in other._terms:
                monomial = m1 * m2
                coefficient = c1 * c2
                if monomial in terms:
                    terms[monomial] = terms[monomial] + coefficient
                else:
                    terms[monomial] = coefficient
        return Polynomial(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise SemiringError("polynomials cannot be raised to negative powers")
        result = Polynomial.one()
        for _ in range(exponent):
            result = result * self
        return result

    def truncate(self, max_degree: int) -> "Polynomial":
        """Drop every term of total degree greater than ``max_degree``."""
        return Polynomial(
            {m: c for m, c in self._terms if m.degree <= max_degree}
        )

    def map_coefficients(self, function) -> "Polynomial":
        """Apply ``function`` to every coefficient (dropping resulting zeros)."""
        return Polynomial({m: function(c) for m, c in self._terms})

    def drop_variables(self, variables: "frozenset[str] | set[str]") -> "Polynomial":
        """Specialize ``variables`` to zero: drop every term mentioning one.

        This is the evaluation homomorphism at ``v -> 0`` for the named
        variables (identity elsewhere), computed without arithmetic.  It is
        what makes provenance-assisted deletion exact: when a deleted EDB
        fact is tagged with a fresh variable, its derivations are precisely
        the monomials the variable occurs in (Theorem 6.5's view of the
        annotation as a sum over derivation trees).
        """
        return Polynomial(
            {m: c for m, c in self._terms if not (m.variables & variables)}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        """Rename variables according to ``mapping`` (missing names unchanged)."""
        terms: Dict[Monomial, Any] = {}
        for monomial, coefficient in self._terms:
            renamed = Monomial(
                {mapping.get(v, v): e for v, e in monomial.powers}
            )
            if renamed in terms:
                terms[renamed] = terms[renamed] + coefficient
            else:
                terms[renamed] = coefficient
        return Polynomial(terms)

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, Any]) -> Any:
        """Evaluate in ``semiring`` under ``valuation`` (the ``Eval_v`` map).

        Integer coefficients ``n`` become the ``n``-fold sum of the monomial's
        value, per Proposition 4.2; infinite coefficients require the target
        to be omega-continuous and are evaluated as the supremum of the
        finite multiples.

        Each variable's value is looked up once and each ``v(x)^e`` power is
        computed once, then shared across all monomials -- on polynomials
        with many terms (deep joins, fixpoints) this avoids re-deriving the
        same powers monomial by monomial.
        """
        if not self._terms:
            return semiring.zero()
        values: Dict[str, Any] = {}
        for variable in self.variables:
            if variable not in valuation:
                raise SemiringError(f"valuation is missing variable {variable!r}")
            values[variable] = valuation[variable]
        power_cache: Dict[tuple[str, int], Any] = {}
        mul, power = semiring.mul, semiring.power
        result = semiring.zero()
        for monomial, coefficient in self._terms:
            value = semiring.one()
            for variable, exponent in monomial.powers:
                key = (variable, exponent)
                powered = power_cache.get(key)
                if powered is None:
                    powered = power(values[variable], exponent)
                    power_cache[key] = powered
                value = mul(value, powered)
            result = semiring.add(result, _scale_in(semiring, coefficient, value))
        return result

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, str, Monomial, NatInf)):
            try:
                other = Polynomial.of(other)
            except (InvalidAnnotationError, ParseError):
                return NotImplemented
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(("Polynomial", self._terms))

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __repr__(self) -> str:
        return f"Polynomial({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        rendered = []
        for monomial, coefficient in self._terms:
            if monomial.is_unit():
                rendered.append(str(coefficient))
            elif _is_one_coefficient(coefficient):
                rendered.append(str(monomial))
            else:
                rendered.append(f"{coefficient}·{monomial}")
        return " + ".join(rendered)


def _check_coefficient(coefficient: Any) -> Any:
    if isinstance(coefficient, bool):
        return 1 if coefficient else 0
    if isinstance(coefficient, NatInf):
        return coefficient
    if isinstance(coefficient, int) and coefficient >= 0:
        return coefficient
    raise InvalidAnnotationError(
        f"{coefficient!r} is not a valid polynomial coefficient (need N or N-inf)"
    )


def _is_zero_coefficient(coefficient: Any) -> bool:
    return (isinstance(coefficient, int) and coefficient == 0) or (
        isinstance(coefficient, NatInf) and coefficient == NatInf(0)
    )


def _is_one_coefficient(coefficient: Any) -> bool:
    return coefficient == 1 or coefficient == NatInf(1)


def _scale_in(semiring: Semiring, coefficient: Any, value: Any) -> Any:
    """Compute ``coefficient . value`` in ``semiring`` (coefficient in N-inf)."""
    if isinstance(coefficient, NatInf) and coefficient.is_infinite:
        if semiring.is_zero(value):
            return semiring.zero()
        if semiring.idempotent_add:
            return value
        if semiring.has_top:
            return semiring.top()
        raise SemiringError(
            f"cannot evaluate an infinite coefficient in {semiring.name}: "
            "the semiring is neither idempotent nor topped"
        )
    count = coefficient.finite_value() if isinstance(coefficient, NatInf) else coefficient
    if semiring.idempotent_add:
        return value if count else semiring.zero()
    return semiring.scale(count, value)


class PolynomialSemiring(Semiring):
    """The polynomial semiring ``K[X]`` with coefficients in ``N`` or ``N-inf``.

    The default instance (``allow_infinite_coefficients=False``) is ``N[X]``,
    the positive-algebra provenance semiring of Definition 4.1.  Allowing
    infinite coefficients gives the polynomial fragment of ``N-inf[[X]]``.
    """

    idempotent_add = False
    is_omega_continuous = False  # N[X] has no infinite sums; see power_series

    def __init__(self, *, allow_infinite_coefficients: bool = False, name: str | None = None):
        self.allow_infinite_coefficients = allow_infinite_coefficients
        if name is not None:
            self.name = name
        else:
            self.name = "N∞[X]" if allow_infinite_coefficients else "N[X]"

    def zero(self) -> Polynomial:
        return Polynomial.zero()

    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return Polynomial.of(a) + Polynomial.of(b)

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return Polynomial.of(a) * Polynomial.of(b)

    def contains(self, value: Any) -> bool:
        if not isinstance(value, Polynomial):
            return False
        if self.allow_infinite_coefficients:
            return True
        return not value.has_infinite_coefficient()

    def coerce(self, value: Any) -> Polynomial:
        polynomial = Polynomial.of(value)
        return self.check(polynomial)

    def leq(self, a: Polynomial, b: Polynomial) -> bool:
        """Natural order: coefficient-wise <= (sufficient and necessary)."""
        a, b = Polynomial.of(a), Polynomial.of(b)
        monomials = set(a.monomials) | set(b.monomials)
        return all(
            NatInf.of(a.coefficient(m)) <= NatInf.of(b.coefficient(m))
            for m in monomials
        )

    def var(self, name: str) -> Polynomial:
        """Convenience: the polynomial for a single tuple id / variable."""
        return Polynomial.var(name)

    def format_value(self, value: Any) -> str:
        return str(Polynomial.of(value))


class ProvenancePolynomialSemiring(PolynomialSemiring):
    """Alias class for ``N[X]`` emphasising its provenance role (Definition 4.1)."""

    def __init__(self) -> None:
        super().__init__(allow_infinite_coefficients=False, name="N[X]")
