"""Commutative semirings as first-class objects.

The paper's central abstraction is the *commutative semiring*
``(K, +, ., 0, 1)``: a set ``K`` with two commutative, associative binary
operations such that ``.`` distributes over ``+``, ``0`` is the identity of
``+`` and annihilates ``.``, and ``1`` is the identity of ``.``
(Section 3 of Green, Karvounarakis & Tannen, PODS 2007).

This module defines the :class:`Semiring` base class.  A semiring instance
describes the carrier set and the operations; the *annotation values*
themselves are ordinary hashable Python objects (booleans, integers,
frozensets, polynomials, ...).  Keeping values plain makes K-relations simple
dictionaries and lets the same relational-algebra and datalog code run over
every semiring unchanged, which is exactly the point of the paper.

Beyond the plain semiring interface, subclasses can advertise extra
structure used by later sections of the paper:

* ``idempotent_add`` -- whether ``a + a == a`` (true for lattices, false for
  bag and provenance semirings).
* ``is_omega_continuous`` -- whether the semiring is omega-continuous
  (Section 5), i.e. naturally ordered, with least upper bounds of
  omega-chains and operations continuous in each argument.  Datalog
  semantics is defined only over omega-continuous semirings.
* ``is_distributive_lattice`` -- whether ``(K, +, .)`` is a (bounded)
  distributive lattice, the hypothesis of Section 8 (terminating datalog
  evaluation) and Theorem 9.2 (containment).
* :meth:`Semiring.star` -- the Kleene star ``a* = 1 + a + a.a + ...`` when it
  is defined, used to express solutions of algebraic systems such as
  ``x = a.x + b  =>  x = a*. b`` (Section 5).
* ``has_negation`` / :meth:`Semiring.negate` -- whether every element has an
  additive inverse, i.e. ``(K, +, ., 0, 1)`` is a commutative *ring*.  Rings
  (``Z``, ``Z[X]``) can represent deletions as negative deltas, which is what
  makes materialized views over K-relations maintainable under arbitrary
  update streams (:mod:`repro.incremental`); plain semirings support only
  insertions incrementally and fall back to recomputation for deletions.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import InvalidAnnotationError, SemiringError

__all__ = ["Semiring"]


class Semiring:
    """Base class for commutative semirings ``(K, +, ., 0, 1)``.

    Subclasses must implement :meth:`zero`, :meth:`one`, :meth:`add`,
    :meth:`mul` and :meth:`contains`.  The remaining methods have sensible
    default implementations expressed in terms of those five.

    Instances are stateless and cheap; they may be shared freely and are
    compared by identity (or by ``name`` for the convenience registry in
    :mod:`repro.semirings.registry`).
    """

    #: Human-readable name, e.g. ``"N[X]"`` or ``"PosBool(B)"``.
    name: str = "abstract semiring"

    #: Whether ``a + a == a`` for all elements.
    idempotent_add: bool = False

    #: Whether ``a . a == a`` for all elements (idempotent multiplication).
    idempotent_mul: bool = False

    #: Whether the semiring is omega-continuous (supports datalog semantics).
    is_omega_continuous: bool = False

    #: Whether ``(K, +, .)`` forms a bounded distributive lattice.
    is_distributive_lattice: bool = False

    #: Whether the semiring has a greatest element (returned by :meth:`top`).
    has_top: bool = False

    #: Whether the natural preorder ``a <= b  iff  exists x. a + x == b`` is a
    #: partial order (Section 5: "naturally ordered").
    naturally_ordered: bool = True

    #: Whether every element has an additive inverse (the structure is a
    #: commutative ring).  Ring semirings implement :meth:`negate`; they are
    #: the structures over which deletions propagate incrementally through
    #: materialized views (:mod:`repro.incremental`).
    has_negation: bool = False

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    def zero(self) -> Any:
        """Return the additive identity ``0`` (the "absent tuple" tag)."""
        raise NotImplementedError

    def one(self) -> Any:
        """Return the multiplicative identity ``1`` (the "present tuple" tag)."""
        raise NotImplementedError

    def add(self, a: Any, b: Any) -> Any:
        """Return ``a + b``; combines annotations under union/projection."""
        raise NotImplementedError

    def mul(self, a: Any, b: Any) -> Any:
        """Return ``a . b``; combines annotations under join/selection."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """Return ``True`` when ``value`` belongs to the carrier set."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def coerce(self, value: Any) -> Any:
        """Convert ``value`` into a carrier element, or raise.

        Subclasses override this to accept convenient surrogate inputs
        (e.g. Python ``int`` for the completed naturals, ``str`` variable
        names for provenance polynomials).  The default accepts only values
        already in the carrier.
        """
        if self.contains(value):
            return value
        raise InvalidAnnotationError(
            f"{value!r} is not an element of the semiring {self.name}"
        )

    def negate(self, value: Any) -> Any:
        """Return the additive inverse ``-value`` when ``has_negation``.

        Semirings proper have no additive inverses, so the default raises;
        ring subclasses (``Z``, ``Z[X]``) override this together with setting
        ``has_negation = True``.
        """
        raise SemiringError(
            f"{self.name} has no additive inverses (has_negation is False)"
        )

    def subtract(self, a: Any, b: Any) -> Any:
        """Return ``a - b = a + (-b)``; defined only when ``has_negation``."""
        return self.add(a, self.negate(b))

    def is_zero(self, value: Any) -> bool:
        """Return whether ``value`` equals the additive identity."""
        return value == self.zero()

    def is_one(self, value: Any) -> bool:
        """Return whether ``value`` equals the multiplicative identity."""
        return value == self.one()

    def sum(self, values: Iterable[Any]) -> Any:
        """Return the sum of ``values`` (``0`` for the empty iterable)."""
        total = self.zero()
        for value in values:
            total = self.add(total, value)
        return total

    def product(self, values: Iterable[Any]) -> Any:
        """Return the product of ``values`` (``1`` for the empty iterable)."""
        result = self.one()
        for value in values:
            result = self.mul(result, value)
        return result

    def from_int(self, n: int) -> Any:
        """Embed the integer ``n`` as ``1 + 1 + ... + 1`` (n times).

        The paper uses this embedding to evaluate polynomials with integer
        coefficients in an arbitrary semiring (Proposition 4.2): ``n . a``
        means the sum of ``n`` copies of ``a``.  Negative ``n`` is defined
        only for rings (``has_negation``), as ``-( (-n) . 1 )``.
        """
        if n < 0:
            if not self.has_negation:
                raise SemiringError(
                    "semirings have no additive inverses; n must be >= 0"
                )
            return self.negate(self.from_int(-n))
        result = self.zero()
        one = self.one()
        for _ in range(n):
            result = self.add(result, one)
        return result

    def scale(self, n: int, value: Any) -> Any:
        """Return the sum of ``n`` copies of ``value`` (``n . value``).

        Negative ``n`` is defined only for rings (``has_negation``), as
        ``-((-n) . value)``.
        """
        if n < 0:
            if not self.has_negation:
                raise SemiringError(
                    "semirings have no additive inverses; n must be >= 0"
                )
            return self.negate(self.scale(-n, value))
        result = self.zero()
        for _ in range(n):
            result = self.add(result, value)
        return result

    def power(self, value: Any, n: int) -> Any:
        """Return ``value`` raised to the ``n``-th multiplicative power."""
        if n < 0:
            raise SemiringError("semirings have no multiplicative inverses; n must be >= 0")
        result = self.one()
        for _ in range(n):
            result = self.mul(result, value)
        return result

    # ------------------------------------------------------------------
    # Order and omega-continuity
    # ------------------------------------------------------------------
    def leq(self, a: Any, b: Any) -> bool:
        """Natural order: ``a <= b`` iff there exists ``x`` with ``a + x == b``.

        Idempotent semirings get a cheap default (``a + b == b``); other
        semirings must override when they claim ``naturally_ordered``.
        """
        if self.idempotent_add:
            return self.add(a, b) == b
        raise NotImplementedError(
            f"{self.name} does not provide a decision procedure for its natural order"
        )

    def top(self) -> Any:
        """Return the greatest element, when ``has_top`` is ``True``."""
        raise SemiringError(f"{self.name} has no top element")

    def star(self, a: Any) -> Any:
        """Return the Kleene star ``a* = 1 + a + a.a + ...`` when defined.

        For omega-continuous semirings the star always exists as the least
        fixpoint of ``x = 1 + a.x``.  Idempotent-addition semirings in which
        ``1`` dominates (e.g. lattices) have ``a* == 1``; that default is
        provided here, everything else must override.
        """
        if self.is_distributive_lattice:
            return self.one()
        raise NotImplementedError(f"{self.name} does not implement a Kleene star")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def normalize(self, value: Any) -> Any:
        """Return a canonical representative of ``value``.

        The default is the identity function; semirings whose values admit
        several syntactic representations of the same element (e.g. positive
        Boolean expressions) override this.
        """
        return value

    def format_value(self, value: Any) -> str:
        """Render ``value`` for display in tables and reports."""
        return str(value)

    def summarize_value(self, value: Any) -> str:
        """Render ``value`` compactly when the full form would be too wide.

        Used by :mod:`repro.relations.display` when a caller caps the
        annotation column width.  Semirings with potentially huge values
        (provenance circuits) override this with a size summary; the default
        is the ordinary rendering.
        """
        return self.format_value(value)

    def check(self, value: Any) -> Any:
        """Validate that ``value`` is a carrier element and return it."""
        if not self.contains(value):
            raise InvalidAnnotationError(
                f"{value!r} is not an element of the semiring {self.name}"
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name}>"

    def __str__(self) -> str:
        return self.name

    # ------------------------------------------------------------------
    # Convenience constructors used by tests and examples
    # ------------------------------------------------------------------
    def sum_of_products(self, products: Iterable[Iterable[Any]]) -> Any:
        """Return ``sum(prod(p) for p in products)``.

        This is the shape of every annotation the positive algebra produces:
        a sum over alternative derivations of the product of the annotations
        used by each derivation (see Sections 3 and 5 of the paper).
        """
        return self.sum(self.product(p) for p in products)

    def iterate_closure(
        self,
        step: Callable[[Any], Any],
        start: Any | None = None,
        max_iterations: int = 10_000,
    ) -> Iterator[Any]:
        """Yield the Kleene chain ``start, step(start), step(step(start)), ...``.

        Helper used by fixpoint computations; iteration stops silently after
        ``max_iterations`` elements, callers detect convergence themselves.
        """
        current = self.zero() if start is None else start
        for _ in range(max_iterations):
            yield current
            current = step(current)
