"""A small name-based registry of the shipped semirings.

The registry makes it easy for examples, benchmarks and command-line style
tools to select a semiring by name ("bool", "bag", "why", "provenance",
...) without importing each class, and it is the single place that
enumerates every annotation structure the library reproduces from the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.errors import SemiringError
from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.fuzzy import FuzzySemiring, ViterbiSemiring
from repro.semirings.integers import IntegerPolynomialRing, IntegerRing
from repro.semirings.lineage import WhyProvenanceSemiring, WitnessWhySemiring
from repro.semirings.numeric import CompletedNaturalsSemiring, NaturalsSemiring
from repro.semirings.polynomial import PolynomialSemiring, ProvenancePolynomialSemiring
from repro.semirings.posbool import PosBoolSemiring
from repro.semirings.power_series import PowerSeriesSemiring
from repro.semirings.tropical import TropicalSemiring

__all__ = ["register_semiring", "get_semiring", "available_semirings"]


def _circuit_semiring() -> Semiring:
    # Imported lazily: repro.circuits depends on repro.semirings modules, so
    # importing it at module load would re-enter this package mid-init.
    from repro.circuits.semiring import CircuitSemiring

    return CircuitSemiring()


_FACTORIES: Dict[str, Callable[[], Semiring]] = {
    "bool": BooleanSemiring,
    "boolean": BooleanSemiring,
    "set": BooleanSemiring,
    "bag": NaturalsSemiring,
    "nat": NaturalsSemiring,
    "counting": NaturalsSemiring,
    "natinf": CompletedNaturalsSemiring,
    "completed-nat": CompletedNaturalsSemiring,
    "tropical": TropicalSemiring,
    "fuzzy": FuzzySemiring,
    "viterbi": ViterbiSemiring,
    "posbool": PosBoolSemiring,
    "ctable": PosBoolSemiring,
    "why": WhyProvenanceSemiring,
    "lineage": WhyProvenanceSemiring,
    "why-witness": WitnessWhySemiring,
    "z": IntegerRing,
    "int": IntegerRing,
    "integers": IntegerRing,
    "zx": IntegerPolynomialRing,
    "z-polynomial": IntegerPolynomialRing,
    "provenance": ProvenancePolynomialSemiring,
    "polynomial": ProvenancePolynomialSemiring,
    "nx": ProvenancePolynomialSemiring,
    "polynomial-inf": lambda: PolynomialSemiring(allow_infinite_coefficients=True),
    "power-series": PowerSeriesSemiring,
    "circuit": _circuit_semiring,
    "circ": _circuit_semiring,
    "provenance-circuit": _circuit_semiring,
}


def register_semiring(name: str, factory: Callable[[], Semiring]) -> None:
    """Register a new named semiring factory.

    Raises :class:`SemiringError` when the name is already taken, to avoid
    silently shadowing a shipped structure.
    """
    key = name.strip().lower()
    if key in _FACTORIES:
        raise SemiringError(f"semiring name {name!r} is already registered")
    _FACTORIES[key] = factory


def get_semiring(name: str) -> Semiring:
    """Instantiate a registered semiring by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise SemiringError(
            f"unknown semiring {name!r}; available: {', '.join(sorted(set(_FACTORIES)))}"
        ) from None
    return factory()


def available_semirings() -> Iterable[str]:
    """Return the sorted collection of registered semiring names."""
    return sorted(_FACTORIES)
