"""The event-set semiring ``(P(Omega), U, intersection, {}, Omega)``.

Probabilistic databases in the style of Fuhr-Roelleke and Zimanyi annotate
tuples with *events* -- measurable subsets of a finite sample space
``Omega`` of possible worlds (Section 2 and Figure 4 of the paper).  Query
answering combines events by union (for alternative derivations) and
intersection (for joint occurrence); this is exactly the positive algebra of
Definition 3.2 over ``(P(Omega), U, intersection, {}, Omega)``, which is a
finite bounded distributive lattice.

The sample space is represented explicitly by an :class:`EventSpace`, and
annotations are frozensets of world identifiers.  Probabilities are computed
by summing world weights; see :mod:`repro.probabilistic` for the layer that
builds event spaces out of independent Boolean events, as in Figure 4.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings.base import Semiring

__all__ = ["EventSpace", "EventSemiring"]


class EventSpace:
    """A finite sample space: world identifiers with probability weights.

    Weights must be non-negative and sum to 1 (within floating tolerance)
    unless ``normalize=True`` is passed, in which case they are rescaled.
    """

    def __init__(
        self,
        weights: Mapping[Hashable, float],
        *,
        normalize: bool = False,
        tolerance: float = 1e-9,
    ):
        if not weights:
            raise SemiringError("an event space needs at least one world")
        total = float(sum(weights.values()))
        if any(w < 0 for w in weights.values()):
            raise SemiringError("world weights must be non-negative")
        if normalize:
            if total == 0:
                raise SemiringError("cannot normalize an all-zero weighting")
            self._weights = {w: p / total for w, p in weights.items()}
        else:
            if abs(total - 1.0) > tolerance:
                raise SemiringError(
                    f"world weights must sum to 1 (got {total}); pass normalize=True"
                )
            self._weights = dict(weights)
        self._worlds = frozenset(self._weights)

    @property
    def worlds(self) -> frozenset:
        """All world identifiers."""
        return self._worlds

    def weight(self, world: Hashable) -> float:
        """Probability mass of a single world."""
        return self._weights[world]

    def probability(self, event: Iterable[Hashable]) -> float:
        """Probability of an event (a set of worlds)."""
        event = frozenset(event)
        unknown = event - self.worlds
        if unknown:
            raise SemiringError(f"unknown worlds in event: {sorted(map(str, unknown))}")
        return sum(self._weights[w] for w in event)

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"EventSpace({len(self._weights)} worlds)"


class EventSemiring(Semiring):
    """``(P(Omega), U, intersection, {}, Omega)`` for a finite space ``Omega``."""

    name = "P(Ω)"
    idempotent_add = True
    idempotent_mul = True
    is_omega_continuous = True
    is_distributive_lattice = True
    has_top = True

    def __init__(self, space: EventSpace):
        self.space = space
        self.name = f"P(Ω) over {len(space)} worlds"

    def zero(self) -> frozenset:
        return frozenset()

    def one(self) -> frozenset:
        return self.space.worlds

    def add(self, a: frozenset, b: frozenset) -> frozenset:
        return self.coerce(a) | self.coerce(b)

    def mul(self, a: frozenset, b: frozenset) -> frozenset:
        return self.coerce(a) & self.coerce(b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, frozenset) and value <= self.space.worlds

    def coerce(self, value: Any) -> frozenset:
        if isinstance(value, (set, list, tuple, frozenset)):
            event = frozenset(value)
        else:
            raise InvalidAnnotationError(f"{value!r} is not an event (set of worlds)")
        if not event <= self.space.worlds:
            raise InvalidAnnotationError(
                f"event {sorted(map(str, event))} mentions worlds outside the space"
            )
        return event

    def top(self) -> frozenset:
        return self.space.worlds

    def leq(self, a: frozenset, b: frozenset) -> bool:
        return self.coerce(a) <= self.coerce(b)

    def star(self, a: frozenset) -> frozenset:
        """``a* = Omega`` since the unit is the full space."""
        return self.space.worlds

    def complement(self, a: frozenset) -> frozenset:
        """``Omega \\ a`` -- ``P(Omega)`` is a Boolean algebra, not just a lattice.

        This is what lets compiled circuits (which contain negation) be
        evaluated into the event semiring: see
        :class:`repro.circuits.evaluate.CircuitEvaluator`.
        """
        return self.space.worlds - self.coerce(a)

    def probability(self, value: frozenset) -> float:
        """Probability of an annotation under the space's world weights."""
        return self.space.probability(self.coerce(value))

    def format_value(self, value: Any) -> str:
        event = self.coerce(value)
        if event == self.space.worlds:
            return "Ω"
        if not event:
            return "∅"
        return "{" + ", ".join(sorted(map(str, event))) + "}"
