"""The semiring ``PosBool(B)`` of positive Boolean expressions.

Tuples of a Boolean c-table are annotated with *conditions*: Boolean
expressions over a set ``B`` of variables built only from disjunction,
conjunction, ``true`` and ``false``, with expressions identified when they
agree on every truth assignment (Section 3 of the paper).  Applying the
generic positive-algebra of Definition 3.2 to
``(PosBool(B), or, and, false, true)`` reproduces the Imielinski-Lipski
algebra on c-tables, including the simplification from Figure 2(a) to
Figure 2(b).

Positive (monotone) Boolean functions have a unique minimal disjunctive
normal form: an *antichain* of clauses, where each clause is a set of
variables and no clause contains another.  :class:`BoolExpr` stores exactly
this normal form, so structural equality coincides with semantic equality --
precisely the identification the paper performs -- and the absorption law
``a or (a and b) == a`` is applied automatically.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Mapping

from repro.errors import InvalidAnnotationError
from repro.semirings.base import Semiring

__all__ = ["BoolExpr", "PosBoolSemiring"]

Clause = FrozenSet[str]


def _minimize(clauses: Iterable[Clause]) -> frozenset[Clause]:
    """Drop clauses that are supersets of other clauses (absorption)."""
    unique = set(clauses)
    minimal = {
        clause
        for clause in unique
        if not any(other < clause for other in unique)
    }
    return frozenset(minimal)


class BoolExpr:
    """A positive Boolean expression in minimal disjunctive normal form.

    The expression is a disjunction of clauses; each clause is a conjunction
    of variables.  ``false`` is the empty disjunction and ``true`` is the
    disjunction containing the empty clause.  Instances are immutable and
    hashable, so they can be used directly as K-relation annotations.
    """

    __slots__ = ("_clauses",)

    def __init__(self, clauses: Iterable[Iterable[str]] = ()):
        normalized = _minimize(frozenset(map(str, clause)) for clause in clauses)
        object.__setattr__(self, "_clauses", normalized)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def false(cls) -> "BoolExpr":
        """The constantly-false expression (annotation of absent tuples)."""
        return cls(())

    @classmethod
    def true(cls) -> "BoolExpr":
        """The constantly-true expression."""
        return cls(((),))

    @classmethod
    def var(cls, name: str) -> "BoolExpr":
        """A single Boolean variable, e.g. the condition of a maybe-tuple."""
        return cls(((name,),))

    @classmethod
    def of(cls, value: "BoolExpr | str | bool") -> "BoolExpr":
        """Coerce a variable name, Python bool, or expression into a BoolExpr."""
        if isinstance(value, BoolExpr):
            return value
        if isinstance(value, bool):
            return cls.true() if value else cls.false()
        if isinstance(value, str):
            return cls.var(value)
        raise InvalidAnnotationError(f"{value!r} cannot be read as a PosBool expression")

    # -- structure ------------------------------------------------------------
    @property
    def clauses(self) -> frozenset[Clause]:
        """The minimal set of clauses (each a frozenset of variable names)."""
        return self._clauses

    @property
    def variables(self) -> frozenset[str]:
        """All variables occurring in the expression."""
        return frozenset(v for clause in self._clauses for v in clause)

    @property
    def is_false(self) -> bool:
        return not self._clauses

    @property
    def is_true(self) -> bool:
        return frozenset() in self._clauses

    # -- Boolean algebra -------------------------------------------------------
    def __or__(self, other: "BoolExpr | str | bool") -> "BoolExpr":
        other = BoolExpr.of(other)
        return BoolExpr(self._clauses | other._clauses)

    def __and__(self, other: "BoolExpr | str | bool") -> "BoolExpr":
        other = BoolExpr.of(other)
        if self.is_false or other.is_false:
            return BoolExpr.false()
        return BoolExpr(
            a | b for a in self._clauses for b in other._clauses
        )

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a truth assignment; missing variables default to False."""
        return any(
            all(assignment.get(v, False) for v in clause) for clause in self._clauses
        )

    def implies(self, other: "BoolExpr") -> bool:
        """Semantic implication: every clause of self entails some clause of other.

        For monotone functions in minimal DNF, ``self => other`` holds iff
        every clause of ``self`` is a superset of some clause of ``other``.
        """
        other = BoolExpr.of(other)
        return all(
            any(o_clause <= clause for o_clause in other._clauses)
            for clause in self._clauses
        )

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, bool):
            other = BoolExpr.of(other)
        if not isinstance(other, BoolExpr):
            return NotImplemented
        return self._clauses == other._clauses

    def __hash__(self) -> int:
        return hash(("BoolExpr", self._clauses))

    def __bool__(self) -> bool:
        return not self.is_false

    def __repr__(self) -> str:
        return f"BoolExpr({self})"

    def __str__(self) -> str:
        if self.is_false:
            return "false"
        if self.is_true:
            return "true"
        rendered_clauses = []
        for clause in sorted(self._clauses, key=lambda c: (len(c), sorted(c))):
            term = " ∧ ".join(sorted(clause))
            rendered_clauses.append(term if len(self._clauses) == 1 else f"({term})")
        return " ∨ ".join(rendered_clauses)


class PosBoolSemiring(Semiring):
    """``(PosBool(B), or, and, false, true)`` -- conditions of Boolean c-tables.

    When the variable set ``B`` is finite this semiring is a finite bounded
    distributive lattice, hence omega-continuous, covered by Section 8
    (terminating datalog on c-tables) and Theorem 9.2 (containment).
    """

    name = "PosBool(B)"
    idempotent_add = True
    idempotent_mul = True
    is_omega_continuous = True
    is_distributive_lattice = True
    has_top = True

    def zero(self) -> BoolExpr:
        return BoolExpr.false()

    def one(self) -> BoolExpr:
        return BoolExpr.true()

    def add(self, a: BoolExpr, b: BoolExpr) -> BoolExpr:
        return BoolExpr.of(a) | BoolExpr.of(b)

    def mul(self, a: BoolExpr, b: BoolExpr) -> BoolExpr:
        return BoolExpr.of(a) & BoolExpr.of(b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, BoolExpr)

    def coerce(self, value: Any) -> BoolExpr:
        return BoolExpr.of(value)

    def top(self) -> BoolExpr:
        return BoolExpr.true()

    def leq(self, a: BoolExpr, b: BoolExpr) -> bool:
        """Lattice order = semantic implication."""
        return BoolExpr.of(a).implies(BoolExpr.of(b))

    def star(self, a: BoolExpr) -> BoolExpr:
        """``e* = true`` for every expression ``e`` (noted in Section 5)."""
        return BoolExpr.true()

    def format_value(self, value: Any) -> str:
        return str(BoolExpr.of(value))
