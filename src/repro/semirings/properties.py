"""Axiom checkers for semiring structures.

Proposition 3.4 of the paper says the expected relational-algebra identities
hold over K-relations exactly when ``(K, +, ., 0, 1)`` is a commutative
semiring.  This module provides sample-based checkers for the semiring
axioms (and the extra lattice / omega-continuity properties), which the test
suite runs over every shipped semiring with hypothesis-generated elements,
and over deliberately broken structures as negative controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterable, Sequence

from repro.semirings.base import Semiring

__all__ = ["PropertyReport", "check_semiring_axioms", "check_distributive_lattice"]


@dataclass
class PropertyReport:
    """Result of checking algebraic laws on a sample of elements."""

    semiring_name: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no violation was detected on the sample."""
        return not self.violations

    def add(self, law: str, detail: str) -> None:
        """Record a violation of ``law`` with a human-readable detail."""
        self.violations.append(f"{law}: {detail}")

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:  # pragma: no cover - trivial
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"<PropertyReport {self.semiring_name}: {status}>"


def check_semiring_axioms(
    semiring: Semiring, sample: Sequence[Any]
) -> PropertyReport:
    """Check the commutative-semiring axioms on all element combinations.

    The laws checked (for all a, b, c drawn from ``sample`` together with 0
    and 1):

    * ``(K, +, 0)`` is a commutative monoid,
    * ``(K, ., 1)`` is a commutative monoid,
    * ``.`` distributes over ``+``,
    * ``0`` annihilates ``.``.
    """
    report = PropertyReport(semiring.name)
    zero, one = semiring.zero(), semiring.one()
    elements = [semiring.coerce(value) for value in sample]
    elements.extend([zero, one])

    add, mul = semiring.add, semiring.mul

    for a in elements:
        if add(a, zero) != a:
            report.add("additive identity", f"{a} + 0 != {a}")
        if add(zero, a) != a:
            report.add("additive identity", f"0 + {a} != {a}")
        if mul(a, one) != a:
            report.add("multiplicative identity", f"{a} · 1 != {a}")
        if mul(one, a) != a:
            report.add("multiplicative identity", f"1 · {a} != {a}")
        if mul(a, zero) != zero:
            report.add("annihilation", f"{a} · 0 != 0")
        if mul(zero, a) != zero:
            report.add("annihilation", f"0 · {a} != 0")

    for a, b in product(elements, repeat=2):
        if add(a, b) != add(b, a):
            report.add("commutativity of +", f"{a} + {b} != {b} + {a}")
        if mul(a, b) != mul(b, a):
            report.add("commutativity of ·", f"{a} · {b} != {b} · {a}")

    for a, b, c in product(elements, repeat=3):
        if add(add(a, b), c) != add(a, add(b, c)):
            report.add("associativity of +", f"({a}+{b})+{c}")
        if mul(mul(a, b), c) != mul(a, mul(b, c)):
            report.add("associativity of ·", f"({a}·{b})·{c}")
        if mul(a, add(b, c)) != add(mul(a, b), mul(a, c)):
            report.add("distributivity", f"{a}·({b}+{c})")

    if semiring.idempotent_add:
        for a in elements:
            if add(a, a) != a:
                report.add("declared + idempotence", f"{a} + {a} != {a}")
    if semiring.idempotent_mul:
        for a in elements:
            if mul(a, a) != a:
                report.add("declared · idempotence", f"{a} · {a} != {a}")
    return report


def check_distributive_lattice(
    semiring: Semiring, sample: Sequence[Any]
) -> PropertyReport:
    """Check the absorption laws that make ``(K, +, .)`` a lattice.

    A commutative semiring whose operations additionally satisfy the
    absorption laws ``a + (a . b) == a`` and ``a . (a + b) == a`` is a
    (bounded, distributive) lattice -- the hypothesis of Section 8 and
    Theorem 9.2.
    """
    report = PropertyReport(semiring.name)
    elements = [semiring.coerce(value) for value in sample]
    elements.extend([semiring.zero(), semiring.one()])
    for a, b in product(elements, repeat=2):
        if semiring.add(a, semiring.mul(a, b)) != a:
            report.add("absorption (+ over ·)", f"{a} + {a}·{b} != {a}")
        if semiring.mul(a, semiring.add(a, b)) != a:
            report.add("absorption (· over +)", f"{a} · ({a}+{b}) != {a}")
    return report


def natural_order_is_partial_order(
    semiring: Semiring, sample: Iterable[Any]
) -> PropertyReport:
    """Check reflexivity, transitivity and antisymmetry of the natural order."""
    report = PropertyReport(semiring.name)
    elements = [semiring.coerce(value) for value in sample]
    elements.extend([semiring.zero(), semiring.one()])
    leq = semiring.leq
    for a in elements:
        if not leq(a, a):
            report.add("reflexivity", f"not {a} <= {a}")
    for a, b in product(elements, repeat=2):
        if leq(a, b) and leq(b, a) and a != b:
            report.add("antisymmetry", f"{a} <= {b} <= {a} but {a} != {b}")
    for a, b, c in product(elements, repeat=3):
        if leq(a, b) and leq(b, c) and not leq(a, c):
            report.add("transitivity", f"{a} <= {b} <= {c} but not {a} <= {c}")
    return report
