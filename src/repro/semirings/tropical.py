"""The tropical semiring ``(N-inf, min, +, infinity, 0)``.

Listed by the paper among the commutative omega-continuous semirings
(Section 5).  Annotating edges of a graph with costs and running the
transitive-closure datalog program over the tropical semiring computes
shortest distances; the paper's conjecture that datalog over the tropical
semiring admits an effective procedure is realized here by the generic
fixpoint engine, which converges because tropical addition (``min``) is
idempotent.

Values are non-negative numbers (ints or floats) with ``math.inf`` /
:class:`~repro.semirings.numeric.NatInf` infinity accepted as the zero
element.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import InvalidAnnotationError
from repro.semirings.base import Semiring
from repro.semirings.numeric import NatInf

__all__ = ["TropicalSemiring"]


class TropicalSemiring(Semiring):
    """``(R>=0 U {inf}, min, +, inf, 0)`` -- shortest-path / cost semantics.

    The natural order of the tropical semiring is the *reverse* of the
    numeric order: ``a <= b`` in the semiring sense iff ``min(a, x) == b`` for
    some ``x``, i.e. ``b <= a`` numerically.  The top element is ``0``.
    """

    name = "Tropical"
    idempotent_add = True
    is_omega_continuous = True
    has_top = True
    # min/+ is not a lattice in the (join, meet) sense used by Section 8.
    is_distributive_lattice = False

    def zero(self) -> float:
        return math.inf

    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return min(self.coerce(a), self.coerce(b))

    def mul(self, a: float, b: float) -> float:
        a, b = self.coerce(a), self.coerce(b)
        return a + b

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool):
            return False
        if isinstance(value, NatInf):
            return True
        return isinstance(value, (int, float)) and (value >= 0 or math.isinf(value))

    def coerce(self, value: Any) -> float:
        if isinstance(value, NatInf):
            return math.inf if value.is_infinite else float(value.finite_value())
        if isinstance(value, bool):
            raise InvalidAnnotationError("booleans are not tropical costs")
        if isinstance(value, (int, float)) and (value >= 0 or math.isinf(value)):
            return float(value)
        raise InvalidAnnotationError(f"{value!r} is not a tropical annotation")

    def top(self) -> float:
        return 0.0

    def leq(self, a: float, b: float) -> bool:
        """Natural (semiring) order: smaller cost is *larger* in the order."""
        return self.coerce(b) <= self.coerce(a)

    def star(self, a: float) -> float:
        """``a* = min(0, a, a+a, ...) = 0`` for non-negative costs."""
        return 0.0

    def format_value(self, value: Any) -> str:
        value = self.coerce(value)
        if math.isinf(value):
            return "∞"
        if value == int(value):
            return str(int(value))
        return f"{value:g}"
