"""Semiring structures for annotated relations.

This subpackage implements every annotation structure used in the paper:

* :class:`~repro.semirings.boolean.BooleanSemiring` -- set semantics;
* :class:`~repro.semirings.numeric.NaturalsSemiring` /
  :class:`~repro.semirings.numeric.CompletedNaturalsSemiring` -- bag
  semantics and its omega-continuous completion;
* :class:`~repro.semirings.posbool.PosBoolSemiring` -- Boolean c-table
  conditions (incomplete databases);
* :class:`~repro.semirings.events.EventSemiring` -- probabilistic event
  tables;
* :class:`~repro.semirings.lineage.WhyProvenanceSemiring` -- why-provenance;
* :class:`~repro.semirings.polynomial.PolynomialSemiring` -- provenance
  polynomials ``N[X]`` (Definition 4.1);
* :class:`~repro.semirings.power_series.PowerSeriesSemiring` -- datalog
  provenance ``N-inf[[X]]`` (Definition 6.1);
* plus the tropical, fuzzy, Viterbi and product semirings.
"""

from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.events import EventSemiring, EventSpace
from repro.semirings.fuzzy import FuzzySemiring, ViterbiSemiring
from repro.semirings.homomorphism import (
    SemiringHomomorphism,
    check_homomorphism,
    polynomial_evaluation,
    series_evaluation,
)
from repro.semirings.integers import (
    IntegerPolynomialRing,
    IntegerRing,
    ZPolynomial,
)
from repro.semirings.lineage import (
    BOTTOM,
    WhyProvenanceSemiring,
    WitnessWhySemiring,
    witness_set,
)
from repro.semirings.numeric import (
    INFINITY,
    CompletedNaturalsSemiring,
    NatInf,
    NaturalsSemiring,
)
from repro.semirings.polynomial import (
    Monomial,
    Polynomial,
    PolynomialSemiring,
    ProvenancePolynomialSemiring,
)
from repro.semirings.posbool import BoolExpr, PosBoolSemiring
from repro.semirings.power_series import FormalPowerSeries, PowerSeriesSemiring
from repro.semirings.product import ProductSemiring
from repro.semirings.properties import (
    PropertyReport,
    check_distributive_lattice,
    check_semiring_axioms,
)
from repro.semirings.registry import (
    available_semirings,
    get_semiring,
    register_semiring,
)
from repro.semirings.tropical import TropicalSemiring

__all__ = [
    "Semiring",
    "BooleanSemiring",
    "NaturalsSemiring",
    "CompletedNaturalsSemiring",
    "NatInf",
    "INFINITY",
    "TropicalSemiring",
    "FuzzySemiring",
    "ViterbiSemiring",
    "PosBoolSemiring",
    "BoolExpr",
    "WhyProvenanceSemiring",
    "WitnessWhySemiring",
    "witness_set",
    "BOTTOM",
    "EventSemiring",
    "EventSpace",
    "IntegerRing",
    "IntegerPolynomialRing",
    "ZPolynomial",
    "Monomial",
    "Polynomial",
    "PolynomialSemiring",
    "ProvenancePolynomialSemiring",
    "FormalPowerSeries",
    "PowerSeriesSemiring",
    "ProductSemiring",
    "SemiringHomomorphism",
    "polynomial_evaluation",
    "series_evaluation",
    "check_homomorphism",
    "PropertyReport",
    "check_semiring_axioms",
    "check_distributive_lattice",
    "get_semiring",
    "register_semiring",
    "available_semirings",
]
