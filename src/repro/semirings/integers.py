"""The ring of integers ``Z`` and the provenance-polynomial ring ``Z[X]``.

The paper's semirings have no additive inverses, which is fine for one-shot
query evaluation but not for *maintenance*: a deletion from a base relation
must subtract its contributions from every view annotation.  The Z-relations
follow-on line (Green, Ives & Tannen) observes that moving from ``N`` to the
ring ``Z`` (and from ``N[X]`` to ``Z[X]``) makes every update -- insertion
or deletion -- expressible as a *delta relation* whose annotations may be
negative, so the classic bilinear delta rules maintain any positive-algebra
view incrementally (:mod:`repro.incremental`).

``Z`` annotations are plain Python ``int`` values (signed multiplicities);
``Z[X]`` annotations are :class:`ZPolynomial` -- polynomials over the tuple
identifiers with integer coefficients, i.e. formal differences of the
``N[X]`` provenance polynomials of Definition 4.1.  Both structures set
``has_negation`` and implement :meth:`~repro.semirings.base.Semiring.negate`,
the ring capability the incremental layer keys on.

Neither ring is naturally ordered (``a <= b`` always has a witness
``x = b - a``, so the preorder collapses), and neither is omega-continuous:
datalog over ``Z`` is defined only through the finite-derivation fragment.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import InvalidAnnotationError, ParseError, SemiringError
from repro.semirings.base import Semiring
from repro.semirings.numeric import NatInf
from repro.semirings.polynomial import Monomial, Polynomial

__all__ = ["IntegerRing", "ZPolynomial", "IntegerPolynomialRing"]


class IntegerRing(Semiring):
    """``(Z, +, ., 0, 1)`` -- signed bag semantics (Z-relations).

    The universal example of a commutative semiring *with* negation: a
    tuple's annotation is a signed multiplicity, and a deletion is just an
    insertion with the negated annotation.
    """

    name = "Z"
    idempotent_add = False
    is_omega_continuous = False
    has_negation = True
    naturally_ordered = False

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def negate(self, value: int) -> int:
        return -value

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            return 1 if value else 0
        if isinstance(value, NatInf):
            return value.finite_value()
        return self.check(value)

    def from_int(self, n: int) -> int:
        return n


class ZPolynomial:
    """A polynomial over tuple-id variables with integer coefficients.

    The ``Z[X]`` counterpart of :class:`~repro.semirings.polynomial.Polynomial`
    (which carries ``N``/``N-inf`` coefficients and therefore cannot express
    the *differences* deletion propagation needs).  Instances are immutable,
    hashable, and reuse :class:`~repro.semirings.polynomial.Monomial` for the
    variable parts, so conversions to and from ``N[X]`` are term-wise.
    """

    __slots__ = ("_terms",)

    def __init__(
        self, terms: Mapping[Monomial, int] | Iterable[tuple[Monomial, int]] = ()
    ):
        collected: Dict[Monomial, int] = {}
        pairs = terms.items() if isinstance(terms, Mapping) else terms
        for monomial, coefficient in pairs:
            if not isinstance(monomial, Monomial):
                raise InvalidAnnotationError(f"{monomial!r} is not a Monomial")
            if isinstance(coefficient, bool) or not isinstance(coefficient, int):
                raise InvalidAnnotationError(
                    f"{coefficient!r} is not a valid Z[X] coefficient (need int)"
                )
            if coefficient:
                updated = collected.get(monomial, 0) + coefficient
                if updated:
                    collected[monomial] = updated
                else:
                    collected.pop(monomial, None)
        object.__setattr__(
            self, "_terms", tuple(sorted(collected.items(), key=lambda kv: kv[0]))
        )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def zero(cls) -> "ZPolynomial":
        """The zero polynomial."""
        return cls(())

    @classmethod
    def one(cls) -> "ZPolynomial":
        """The unit polynomial ``1``."""
        return cls({Monomial.unit(): 1})

    @classmethod
    def var(cls, name: str) -> "ZPolynomial":
        """The polynomial consisting of the single variable ``name``."""
        return cls({Monomial.var(name): 1})

    @classmethod
    def constant(cls, value: int) -> "ZPolynomial":
        """A constant polynomial."""
        return cls({Monomial.unit(): value})

    @classmethod
    def monomial(cls, monomial: Monomial, coefficient: int = 1) -> "ZPolynomial":
        """A single-term polynomial ``coefficient . monomial``."""
        return cls({monomial: coefficient})

    @classmethod
    def of(cls, value: "ZPolynomial | Polynomial | Monomial | str | int") -> "ZPolynomial":
        """Coerce a variable name, integer, monomial or (N[X]) polynomial."""
        if isinstance(value, ZPolynomial):
            return value
        if isinstance(value, Polynomial):
            terms: Dict[Monomial, int] = {}
            for monomial, coefficient in value.terms:
                if isinstance(coefficient, NatInf):
                    coefficient = coefficient.finite_value()
                terms[monomial] = coefficient
            return cls(terms)
        if isinstance(value, Monomial):
            return cls.monomial(value)
        if isinstance(value, str):
            return cls.of(Polynomial.parse(value))
        if isinstance(value, bool):
            return cls.one() if value else cls.zero()
        if isinstance(value, int):
            return cls.constant(value)
        raise InvalidAnnotationError(f"{value!r} cannot be read as a Z[X] polynomial")

    # -- structure ------------------------------------------------------------
    @property
    def terms(self) -> Tuple[tuple[Monomial, int], ...]:
        """Sorted (monomial, coefficient) pairs with non-zero coefficients."""
        return self._terms

    @property
    def monomials(self) -> tuple[Monomial, ...]:
        """The monomials with non-zero coefficient, in canonical order."""
        return tuple(m for m, _ in self._terms)

    @property
    def variables(self) -> frozenset[str]:
        """All variables occurring in the polynomial."""
        result: set[str] = set()
        for monomial, _ in self._terms:
            result |= monomial.variables
        return frozenset(result)

    @property
    def degree(self) -> int:
        """Total degree (0 for the zero polynomial)."""
        return max((m.degree for m, _ in self._terms), default=0)

    def coefficient(self, monomial: Monomial) -> int:
        """Coefficient of ``monomial`` (0 when absent)."""
        for m, c in self._terms:
            if m == monomial:
                return c
        return 0

    def is_zero(self) -> bool:
        """Whether this is the zero polynomial."""
        return not self._terms

    def to_polynomial(self) -> Polynomial:
        """The ``N[X]`` image, defined only when no coefficient is negative."""
        if any(c < 0 for _, c in self._terms):
            raise SemiringError(
                f"{self} has negative coefficients and is not an N[X] polynomial"
            )
        return Polynomial(dict(self._terms))

    def drop_variables(self, variables: "frozenset[str] | set[str]") -> "ZPolynomial":
        """Specialize ``variables`` to zero: drop every term mentioning one.

        The ring twin of :meth:`Polynomial.drop_variables`, used by the
        provenance-assisted deletion path over ``Z[X]`` annotations.
        """
        return ZPolynomial(
            {m: c for m, c in self._terms if not (m.variables & variables)}
        )

    # -- algebra ---------------------------------------------------------------
    def __add__(self, other: "ZPolynomial | str | int") -> "ZPolynomial":
        other = ZPolynomial.of(other)
        terms: Dict[Monomial, int] = dict(self._terms)
        for monomial, coefficient in other._terms:
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return ZPolynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "ZPolynomial":
        return ZPolynomial({m: -c for m, c in self._terms})

    def __sub__(self, other: "ZPolynomial | str | int") -> "ZPolynomial":
        return self + (-ZPolynomial.of(other))

    def __rsub__(self, other: "ZPolynomial | str | int") -> "ZPolynomial":
        return ZPolynomial.of(other) + (-self)

    def __mul__(self, other: "ZPolynomial | str | int") -> "ZPolynomial":
        other = ZPolynomial.of(other)
        terms: Dict[Monomial, int] = {}
        for m1, c1 in self._terms:
            for m2, c2 in other._terms:
                monomial = m1 * m2
                terms[monomial] = terms.get(monomial, 0) + c1 * c2
        return ZPolynomial(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "ZPolynomial":
        if exponent < 0:
            raise SemiringError("polynomials cannot be raised to negative powers")
        result = ZPolynomial.one()
        for _ in range(exponent):
            result = result * self
        return result

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, Any]) -> Any:
        """Evaluate in ``semiring`` under ``valuation``.

        The ``Eval_v`` homomorphism extends from ``N[X]`` to ``Z[X]`` exactly
        when the target has negation, since negative coefficients become
        negated scaled sums; non-negative polynomials evaluate anywhere.
        """
        result = semiring.zero()
        for monomial, coefficient in self._terms:
            value = monomial.evaluate(semiring, valuation)
            result = semiring.add(result, semiring.scale(coefficient, value))
        return result

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, str, Monomial, Polynomial)):
            try:
                other = ZPolynomial.of(other)
            except (InvalidAnnotationError, ParseError, SemiringError):
                return NotImplemented
        if not isinstance(other, ZPolynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(("ZPolynomial", self._terms))

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __iter__(self) -> Iterator[tuple[Monomial, int]]:
        return iter(self._terms)

    def __repr__(self) -> str:
        return f"ZPolynomial({self})"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        rendered = ""
        for monomial, coefficient in self._terms:
            sign = "-" if coefficient < 0 else "+"
            magnitude = abs(coefficient)
            if monomial.is_unit():
                part = str(magnitude)
            elif magnitude == 1:
                part = str(monomial)
            else:
                part = f"{magnitude}·{monomial}"
            if not rendered:
                rendered = f"-{part}" if sign == "-" else part
            else:
                rendered += f" {sign} {part}"
        return rendered


class IntegerPolynomialRing(Semiring):
    """``(Z[X], +, ., 0, 1)`` -- provenance polynomials with integer coefficients.

    The most general commutative *ring* generated by the tuple ids: every
    annotation computation in a ring factors through ``Z[X]`` the way every
    semiring computation factors through ``N[X]`` (Proposition 4.2).  This is
    the provenance structure under which deletion propagation is itself an
    annotation computation.
    """

    name = "Z[X]"
    idempotent_add = False
    is_omega_continuous = False
    has_negation = True
    naturally_ordered = False

    def zero(self) -> ZPolynomial:
        return ZPolynomial.zero()

    def one(self) -> ZPolynomial:
        return ZPolynomial.one()

    def add(self, a: ZPolynomial, b: ZPolynomial) -> ZPolynomial:
        return ZPolynomial.of(a) + ZPolynomial.of(b)

    def mul(self, a: ZPolynomial, b: ZPolynomial) -> ZPolynomial:
        return ZPolynomial.of(a) * ZPolynomial.of(b)

    def negate(self, value: ZPolynomial) -> ZPolynomial:
        return -ZPolynomial.of(value)

    def contains(self, value: Any) -> bool:
        return isinstance(value, ZPolynomial)

    def coerce(self, value: Any) -> ZPolynomial:
        return ZPolynomial.of(value)

    def var(self, name: str) -> ZPolynomial:
        """Convenience: the polynomial for a single tuple id / variable."""
        return ZPolynomial.var(name)

    def from_int(self, n: int) -> ZPolynomial:
        return ZPolynomial.constant(n)

    def format_value(self, value: Any) -> str:
        return str(ZPolynomial.of(value))
