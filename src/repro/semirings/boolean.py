"""The Boolean semiring ``(B, or, and, False, True)``.

Annotating tuples with Booleans recovers ordinary set-semantics relations:
``True`` tags tuples in the relation, ``False`` tags absent tuples
(Section 3 of the paper).  The Boolean semiring is the smallest distributive
lattice and is omega-continuous, so both the positive algebra and datalog are
defined over it; Proposition 5.4 (the "sanity check") says datalog over ``B``
computes exactly the classical datalog answer.
"""

from __future__ import annotations

from typing import Any

from repro.errors import InvalidAnnotationError
from repro.semirings.base import Semiring

__all__ = ["BooleanSemiring"]


class BooleanSemiring(Semiring):
    """``(B, or, and, False, True)`` -- classical set semantics."""

    name = "B"
    idempotent_add = True
    idempotent_mul = True
    is_omega_continuous = True
    is_distributive_lattice = True
    has_top = True

    def zero(self) -> bool:
        return False

    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return bool(a) or bool(b)

    def mul(self, a: bool, b: bool) -> bool:
        return bool(a) and bool(b)

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise InvalidAnnotationError(f"{value!r} is not a Boolean annotation")

    def top(self) -> bool:
        return True

    def leq(self, a: bool, b: bool) -> bool:
        return (not a) or b

    def star(self, a: bool) -> bool:
        """``a* = True`` for every ``a`` (since ``1 + a + ... = True``)."""
        return True
