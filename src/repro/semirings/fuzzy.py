"""Fuzzy and Viterbi semirings over the real unit interval.

The paper lists ``([0, 1], max, min, 0, 1)`` -- the *fuzzy semiring*, related
to fuzzy set membership -- among its examples of commutative omega-continuous
semirings, and notes it is a distributive lattice (Sections 5 and 9).  The
Viterbi semiring ``([0, 1], max, ., 0, 1)`` is the standard "best derivation
probability" variant and is included because it exercises an
idempotent-addition / non-idempotent-multiplication combination that the
lattice-based semirings do not.
"""

from __future__ import annotations

from typing import Any

from repro.errors import InvalidAnnotationError
from repro.semirings.base import Semiring

__all__ = ["FuzzySemiring", "ViterbiSemiring"]


def _check_unit_interval(value: Any, name: str) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)) and 0.0 <= float(value) <= 1.0:
        return float(value)
    raise InvalidAnnotationError(f"{value!r} is not in [0, 1] (semiring {name})")


class FuzzySemiring(Semiring):
    """``([0, 1], max, min, 0, 1)`` -- fuzzy membership degrees.

    A bounded distributive lattice, hence covered by the Section 8
    terminating-datalog construction and by Theorem 9.2 on containment.
    """

    name = "Fuzzy"
    idempotent_add = True
    idempotent_mul = True
    is_omega_continuous = True
    is_distributive_lattice = True
    has_top = True

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return max(self.coerce(a), self.coerce(b))

    def mul(self, a: float, b: float) -> float:
        return min(self.coerce(a), self.coerce(b))

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and 0.0 <= float(value) <= 1.0
        )

    def coerce(self, value: Any) -> float:
        return _check_unit_interval(value, self.name)

    def top(self) -> float:
        return 1.0

    def leq(self, a: float, b: float) -> bool:
        return self.coerce(a) <= self.coerce(b)

    def star(self, a: float) -> float:
        """``a* = max(1, a, ...) = 1``."""
        return 1.0


class ViterbiSemiring(Semiring):
    """``([0, 1], max, ., 0, 1)`` -- probability of the best derivation."""

    name = "Viterbi"
    idempotent_add = True
    idempotent_mul = False
    is_omega_continuous = True
    is_distributive_lattice = False
    has_top = True

    def zero(self) -> float:
        return 0.0

    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return max(self.coerce(a), self.coerce(b))

    def mul(self, a: float, b: float) -> float:
        return self.coerce(a) * self.coerce(b)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and 0.0 <= float(value) <= 1.0
        )

    def coerce(self, value: Any) -> float:
        return _check_unit_interval(value, self.name)

    def top(self) -> float:
        return 1.0

    def leq(self, a: float, b: float) -> bool:
        return self.coerce(a) <= self.coerce(b)

    def star(self, a: float) -> float:
        """``a* = sup(1, a, a^2, ...) = 1`` for ``a`` in ``[0, 1]``."""
        return 1.0
