"""Positive relational algebra on K-relations (Definition 3.2) and Section 9 containment."""

from repro.algebra import operators, predicates
from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Q,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.algebra.containment import (
    ContainmentWitness,
    check_containment_on_instance,
    contained_in_semiring,
    cq_contained_set,
    ucq_contained_set,
)
from repro.algebra.factorization import (
    FactorizationResult,
    evaluate_provenance,
    factorized_evaluate,
    provenance_of_query,
    verify_factorization,
)
from repro.algebra.identities import (
    check_selection_projection_identities,
    check_union_join_identities,
)

__all__ = [
    "operators",
    "predicates",
    "Q",
    "Query",
    "RelationRef",
    "EmptyRelation",
    "Union",
    "Project",
    "Select",
    "Join",
    "Rename",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "cq_contained_set",
    "ucq_contained_set",
    "contained_in_semiring",
    "check_containment_on_instance",
    "ContainmentWitness",
    "FactorizationResult",
    "provenance_of_query",
    "evaluate_provenance",
    "factorized_evaluate",
    "verify_factorization",
    "check_union_join_identities",
    "check_selection_projection_identities",
]
