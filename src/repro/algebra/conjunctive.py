"""Conjunctive queries and unions of conjunctive queries on K-relations.

Section 5 of the paper observes that for conjunctive queries the generic
positive-algebra semantics of Definition 3.2 simplifies to a sum of products:
the annotation of an answer tuple is the sum, over every valuation of the
query variables that makes the body hold, of the product of the annotations
of the matched body atoms (Figure 6).  Section 9 then studies containment of
(unions of) conjunctive queries with respect to K-relation semantics.

This module provides:

* :class:`ConjunctiveQuery` -- a single rule ``Q(head) :- body`` with the
  sum-of-products K-semantics, a canonical database, and homomorphism search;
* :class:`UnionOfConjunctiveQueries` -- a finite union, evaluated by adding
  the per-disjunct annotations;
* parsers for the usual datalog-style textual syntax.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import ParseError, QueryError
from repro.logic import Atom, Constant, Term, Variable, parse_atom, unify_ground
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring

__all__ = ["ConjunctiveQuery", "UnionOfConjunctiveQueries"]


class ConjunctiveQuery:
    """A conjunctive query ``answer(x1, ..., xk) :- A1, ..., An``.

    The head lists output terms (variables or constants); the body is a
    sequence of relational atoms.  Every head variable must occur in the body
    (safety).  The output schema names attributes ``c1, ..., ck`` unless
    explicit ``output_attributes`` are provided.
    """

    def __init__(
        self,
        head_terms: Sequence[Term],
        body: Sequence[Atom],
        *,
        name: str = "Q",
        output_attributes: Sequence[str] | None = None,
    ):
        self.name = name
        self.head_terms = tuple(head_terms)
        self.body = tuple(body)
        if not self.body:
            raise QueryError("a conjunctive query needs at least one body atom")
        body_variables = frozenset(
            v for atom in self.body for v in atom.variables
        )
        head_variables = frozenset(
            t for t in self.head_terms if isinstance(t, Variable)
        )
        unsafe = head_variables - body_variables
        if unsafe:
            raise QueryError(
                f"unsafe head variables (not in body): {sorted(v.name for v in unsafe)}"
            )
        if output_attributes is None:
            output_attributes = [f"c{i + 1}" for i in range(len(self.head_terms))]
        if len(output_attributes) != len(self.head_terms):
            raise QueryError("output_attributes must match the head arity")
        self.output_schema = Schema(output_attributes)

    # -- parsing ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, *, output_attributes: Sequence[str] | None = None) -> "ConjunctiveQuery":
        """Parse ``"Q(x, y) :- R(x, z), R(z, y)"`` into a conjunctive query."""
        if ":-" not in text:
            raise ParseError(f"missing ':-' in conjunctive query {text!r}")
        head_text, body_text = text.split(":-", 1)
        head_atom = parse_atom(head_text)
        body_atoms = _split_atoms(body_text)
        if not body_atoms:
            raise ParseError(f"empty body in conjunctive query {text!r}")
        return cls(
            head_atom.terms,
            [parse_atom(part) for part in body_atoms],
            name=head_atom.relation,
            output_attributes=output_attributes,
        )

    # -- structure ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[Variable]:
        """All variables of the query (head and body)."""
        result = set()
        for atom in self.body:
            result |= atom.variables
        result |= {t for t in self.head_terms if isinstance(t, Variable)}
        return frozenset(result)

    @property
    def relations(self) -> frozenset[str]:
        """Names of the relations used in the body."""
        return frozenset(atom.relation for atom in self.body)

    def head_atom(self) -> Atom:
        """The head as an atom named after the query."""
        return Atom(self.name, self.head_terms)

    # -- evaluation -------------------------------------------------------------------
    def valuations(self, database: Database) -> Iterator[Dict[Variable, Any]]:
        """Enumerate the variable assignments that match every body atom.

        Only tuples in the support of the input relations are matched, so the
        enumeration is finite.  Each yielded assignment binds every body
        variable.
        """
        yield from self._extend({}, 0, database)

    def _extend(
        self, assignment: Dict[Variable, Any], index: int, database: Database
    ) -> Iterator[Dict[Variable, Any]]:
        if index == len(self.body):
            yield assignment
            return
        atom = self.body[index]
        relation = database.relation(atom.relation)
        attributes = relation.schema.attributes
        if len(attributes) != atom.arity:
            raise QueryError(
                f"atom {atom} has arity {atom.arity} but relation "
                f"{atom.relation} has arity {len(attributes)}"
            )
        for tup in relation.support:
            values = tup.values_for(attributes)
            extended = unify_ground(atom, values, assignment)
            if extended is not None:
                yield from self._extend(extended, index + 1, database)

    def _body_annotation(self, assignment: Mapping[Variable, Any], database: Database) -> Any:
        semiring = database.semiring
        annotation = semiring.one()
        for atom in self.body:
            relation = database.relation(atom.relation)
            attributes = relation.schema.attributes
            values = tuple(
                term.value if isinstance(term, Constant) else assignment[term]
                for term in atom.terms
            )
            tup = Tup.from_values(attributes, values)
            annotation = semiring.mul(annotation, relation.annotation(tup))
        return annotation

    def evaluate(self, database: Database) -> KRelation:
        """Evaluate with the sum-of-products K-semantics (Definition 3.2).

        The annotation of each answer tuple is the sum over matching
        valuations of the product of the annotations of the matched body
        tuples -- exactly the calculation of Figure 6.
        """
        semiring = database.semiring
        result = KRelation(semiring, self.output_schema)
        for assignment in self.valuations(database):
            values = tuple(
                term.value if isinstance(term, Constant) else assignment[term]
                for term in self.head_terms
            )
            annotation = self._body_annotation(assignment, database)
            if not semiring.is_zero(annotation):
                result.add(Tup.from_values(self.output_schema.attributes, values), annotation)
        return result

    __call__ = evaluate

    # -- canonical database and homomorphisms (Chandra-Merlin machinery) -------------
    def canonical_database(self, semiring: Semiring | None = None) -> tuple[Database, Tup]:
        """Build the canonical (frozen) database of the query.

        Every variable is turned into a distinct constant; each body atom
        becomes a tuple annotated ``1``.  Returns the database together with
        the frozen head tuple.  Used by the containment procedures of
        Section 9.
        """
        semiring = semiring or BooleanSemiring()
        database = Database(semiring)
        frozen = {v: f"_{v.name}" for v in self.variables}
        arities: Dict[str, int] = {}
        for atom in self.body:
            arities.setdefault(atom.relation, atom.arity)
            if arities[atom.relation] != atom.arity:
                raise QueryError(f"inconsistent arity for relation {atom.relation}")
        for relation_name, arity in arities.items():
            if relation_name not in database:
                database.create(relation_name, [f"a{i + 1}" for i in range(arity)])
        for atom in self.body:
            relation = database.relation(atom.relation)
            values = tuple(
                term.value if isinstance(term, Constant) else frozen[term]
                for term in atom.terms
            )
            relation.add(Tup.from_values(relation.schema.attributes, values))
        head_values = tuple(
            term.value if isinstance(term, Constant) else frozen[term]
            for term in self.head_terms
        )
        head = Tup.from_values(self.output_schema.attributes, head_values)
        return database, head

    def find_homomorphism(self, other: "ConjunctiveQuery") -> Optional[Dict[Variable, Term]]:
        """Find a query-body homomorphism from ``self`` into ``other``.

        A homomorphism maps the variables of ``self`` to terms of ``other``
        such that every body atom of ``self`` becomes a body atom of
        ``other`` and the head of ``self`` maps onto the head of ``other``.
        By Chandra-Merlin, such a homomorphism exists iff ``other`` is
        contained in ``self`` under set semantics.
        """
        if len(self.head_terms) != len(other.head_terms):
            return None
        assignment: Dict[Variable, Term] = {}
        # The head must map position-wise onto the other head.
        for term_self, term_other in zip(self.head_terms, other.head_terms):
            if isinstance(term_self, Constant):
                if term_self != term_other:
                    return None
            else:
                bound = assignment.get(term_self)
                if bound is None:
                    assignment[term_self] = term_other
                elif bound != term_other:
                    return None
        return self._extend_homomorphism(assignment, 0, other)

    def _extend_homomorphism(
        self,
        assignment: Dict[Variable, Term],
        index: int,
        other: "ConjunctiveQuery",
    ) -> Optional[Dict[Variable, Term]]:
        if index == len(self.body):
            return assignment
        atom = self.body[index]
        for candidate in other.body:
            if candidate.relation != atom.relation or candidate.arity != atom.arity:
                continue
            extended = dict(assignment)
            ok = True
            for term_self, term_other in zip(atom.terms, candidate.terms):
                if isinstance(term_self, Constant):
                    if term_self != term_other:
                        ok = False
                        break
                else:
                    bound = extended.get(term_self)
                    if bound is None:
                        extended[term_self] = term_other
                    elif bound != term_other:
                        ok = False
                        break
            if not ok:
                continue
            final = self._extend_homomorphism(extended, index + 1, other)
            if final is not None:
                return final
        return None

    # -- conversions ----------------------------------------------------------------
    def to_datalog_rule(self) -> str:
        """Render the query as a single datalog rule (textual form)."""
        return f"{self.head_atom()} :- {', '.join(str(atom) for atom in self.body)}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self.to_datalog_rule()!r})"

    def __str__(self) -> str:
        return self.to_datalog_rule()


class UnionOfConjunctiveQueries:
    """A finite union of conjunctive queries with identical head arity."""

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery], *, name: str = "Q"):
        self.disjuncts = tuple(disjuncts)
        self.name = name
        if not self.disjuncts:
            raise QueryError("a UCQ needs at least one disjunct")
        arities = {len(cq.head_terms) for cq in self.disjuncts}
        if len(arities) != 1:
            raise QueryError(f"disjuncts have different head arities: {arities}")
        schemas = {cq.output_schema.attribute_set for cq in self.disjuncts}
        if len(schemas) != 1:
            raise QueryError("disjuncts must share the same output attributes")
        self.output_schema = self.disjuncts[0].output_schema

    @classmethod
    def parse(cls, text: str) -> "UnionOfConjunctiveQueries":
        """Parse one rule per line (or ';'-separated) into a UCQ."""
        parts = [part.strip() for part in re.split(r"[;\n]", text) if part.strip()]
        disjuncts = [ConjunctiveQuery.parse(part) for part in parts]
        if not disjuncts:
            raise ParseError("no conjunctive queries found")
        return cls(disjuncts, name=disjuncts[0].name)

    def evaluate(self, database: Database) -> KRelation:
        """Evaluate by adding, tuple-wise, the annotations of every disjunct."""
        semiring = database.semiring
        result = KRelation(semiring, self.output_schema)
        for disjunct in self.disjuncts:
            for tup, annotation in disjunct.evaluate(database).items():
                result.add(tup, annotation)
        return result

    __call__ = evaluate

    @property
    def relations(self) -> frozenset[str]:
        """All base relations referenced by some disjunct."""
        return frozenset(
            itertools.chain.from_iterable(cq.relations for cq in self.disjuncts)
        )

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries({[str(d) for d in self.disjuncts]})"

    def __str__(self) -> str:
        return "; ".join(str(d) for d in self.disjuncts)


def _split_atoms(body_text: str) -> list[str]:
    """Split a rule body on top-level commas (commas inside parentheses stay)."""
    parts: list[str] = []
    depth = 0
    current = []
    for char in body_text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]
