"""Checkers for the relational-algebra identities of Proposition 3.4.

The proposition states that the following identities hold for the positive
algebra on K-relations *iff* ``(K, +, ., 0, 1)`` is a commutative semiring:

* union is associative, commutative, and has identity ∅;
* join is associative, commutative, and distributes over union;
* projections and selections commute with each other, with unions, and with
  joins (where applicable);
* ``σ_false(R) = ∅`` and ``σ_true(R) = R``.

and -- deliberately -- does *not* include idempotence of union or self-join,
which fail under bag semantics.

The checkers below verify these identities on concrete relations; the test
suite exercises them with hypothesis-generated relations over every shipped
semiring (the "if" direction on samples) and shows that a non-semiring
structure breaks them (the "only if" direction on an explicit example).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.algebra import operators
from repro.algebra.predicates import Predicate, as_predicate, false, true
from repro.relations.krelation import KRelation
from repro.semirings.properties import PropertyReport

__all__ = ["check_union_join_identities", "check_selection_projection_identities"]


def check_union_join_identities(
    r1: KRelation, r2: KRelation, r3: KRelation
) -> PropertyReport:
    """Check the union/join identities of Proposition 3.4 on three relations.

    ``r1``, ``r2`` and ``r3`` must be union-compatible (same attribute set).
    """
    report = PropertyReport(r1.semiring.name)
    union, join = operators.union, operators.join
    empty = operators.empty(r1.semiring, r1.schema)

    if not union(r1, r2).equal_to(union(r2, r1)):
        report.add("union commutativity", "R1 ∪ R2 != R2 ∪ R1")
    if not union(union(r1, r2), r3).equal_to(union(r1, union(r2, r3))):
        report.add("union associativity", "(R1 ∪ R2) ∪ R3 != R1 ∪ (R2 ∪ R3)")
    if not union(r1, empty).equal_to(r1):
        report.add("union identity", "R1 ∪ ∅ != R1")

    if not join(r1, r2).equal_to(join(r2, r1)):
        report.add("join commutativity", "R1 ⋈ R2 != R2 ⋈ R1")
    if not join(join(r1, r2), r3).equal_to(join(r1, join(r2, r3))):
        report.add("join associativity", "(R1 ⋈ R2) ⋈ R3 != R1 ⋈ (R2 ⋈ R3)")
    if not join(r1, union(r2, r3)).equal_to(union(join(r1, r2), join(r1, r3))):
        report.add("join distributivity", "R1 ⋈ (R2 ∪ R3) != (R1 ⋈ R2) ∪ (R1 ⋈ R3)")
    return report


def check_selection_projection_identities(
    r1: KRelation,
    r2: KRelation,
    *,
    predicates: Sequence[Predicate] = (),
    projection_attributes: Iterable[str] | None = None,
) -> PropertyReport:
    """Check the selection/projection identities of Proposition 3.4.

    ``predicates`` are {0,1}-valued predicates applicable to ``r1``'s schema;
    ``projection_attributes`` defaults to the full attribute list (a no-op
    projection) so that the commutation checks remain applicable.
    """
    report = PropertyReport(r1.semiring.name)
    select, project, union = operators.select, operators.project, operators.union
    attributes = (
        list(projection_attributes)
        if projection_attributes is not None
        else list(r1.schema.attributes)
    )

    if not select(r1, false).equal_to(operators.empty(r1.semiring, r1.schema)):
        report.add("σ_false", "σ_false(R) != ∅")
    if not select(r1, true).equal_to(r1):
        report.add("σ_true", "σ_true(R) != R")

    for predicate in predicates:
        name = getattr(predicate, "__name__", "P")
        # selections commute with each other
        for other in predicates:
            other_name = getattr(other, "__name__", "P'")
            lhs = select(select(r1, predicate), other)
            rhs = select(select(r1, other), predicate)
            if not lhs.equal_to(rhs):
                report.add("selection commutation", f"σ_{name} ∘ σ_{other_name}")
        # selections commute with unions
        if r1.schema.is_compatible_with(r2.schema):
            lhs = select(union(r1, r2), predicate)
            rhs = union(select(r1, predicate), select(r2, predicate))
            if not lhs.equal_to(rhs):
                report.add("selection over union", f"σ_{name}(R1 ∪ R2)")
        # selection on preserved attributes commutes with projection
        if _predicate_mentions_only(predicate, attributes, r1):
            lhs = project(select(r1, predicate), attributes)
            rhs = select(project(r1, attributes), predicate)
            if not lhs.equal_to(rhs):
                report.add("selection/projection commutation", f"σ_{name} vs π")

    # projection commutes with union
    if r1.schema.is_compatible_with(r2.schema):
        lhs = project(union(r1, r2), attributes)
        rhs = union(project(r1, attributes), project(r2, attributes))
        if not lhs.equal_to(rhs):
            report.add("projection over union", "π(R1 ∪ R2) != π(R1) ∪ π(R2)")
    return report


def _predicate_mentions_only(
    predicate: Callable, attributes: Iterable[str], relation: KRelation
) -> bool:
    """Decide whether a predicate only reads ``attributes``.

    Structured predicates (:class:`repro.algebra.predicates.BasePredicate`)
    expose their attribute set exactly, so the answer is a subset check --
    independent of the relation's current contents and correct even for
    predicates the old probing heuristic misjudged (short-circuiting
    disjunctions, ``Tup.get``-style defaulted reads, empty supports).

    Plain callables fall back to that heuristic: evaluate the predicate on
    projected tuples and report False when that raises -- good enough for
    simple equality predicates, but conservative by construction.
    """
    structured = as_predicate(predicate)
    attrs = structured.attributes
    if attrs is not None:
        return attrs <= set(attributes)
    kept = set(attributes)
    for tup in relation.support:
        try:
            predicate(tup.restrict(kept & tup.attributes))
        except KeyError:
            return False
        except Exception:
            return False
    return True
