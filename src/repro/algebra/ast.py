"""A small query AST and fluent builder for positive-algebra queries.

Queries built from these nodes are *semiring-generic*: the same query object
can be evaluated against databases annotated in any commutative semiring,
which is what makes the factorization experiments (Theorem 4.3) and the
cross-semiring benchmarks possible.

The canonical example -- the query ``q`` used throughout Section 2 of the
paper::

    q(R) = π_ac( π_ab R ⋈ π_bc R  ∪  π_ac R ⋈ π_bc R )

is expressed as::

    R = Q.relation("R")
    q = (R.project("a", "b").join(R.project("b", "c"))
          .union(R.project("a", "c").join(R.project("b", "c")))
          .project("a", "c"))

and is available ready-made from :mod:`repro.workloads.paper_instances`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.algebra import operators
from repro.algebra.predicates import (
    Predicate,
    attr_eq,
    attr_eq_const,
    describe_predicate,
)
from repro.errors import QueryError
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.storage import resolve_storage_kind as _resolve_storage_kind
from repro.relations.tuples import Tup

__all__ = [
    "Query",
    "RelationRef",
    "Union",
    "Project",
    "Select",
    "Join",
    "Rename",
    "EmptyRelation",
    "Q",
]


class Query:
    """Base class of positive-algebra query expressions.

    Subclasses implement :meth:`_execute`; the fluent combinators defined
    here (``union``, ``project``, ``select``, ``join``, ``rename``) build
    larger queries out of smaller ones, and :meth:`evaluate` runs the tree
    (optionally through the planner first with ``optimize=True``).
    """

    def evaluate(
        self,
        database: Database,
        *,
        optimize: bool = False,
        executor: str = "naive",
        storage: str | None = None,
        parallel: Any = None,
    ) -> KRelation:
        """Evaluate the query against ``database`` and return a K-relation.

        With ``optimize=True`` the query is first run through the
        semiring-aware planner (:func:`repro.planner.optimize`) -- pushdowns,
        fusions and cost-based join reordering, all justified by Proposition
        3.4 -- and the optimized plan is executed instead.  The result is the
        same K-relation annotation-for-annotation; only the display order of
        attributes may differ (the named perspective is order-free).

        ``executor`` selects the physical execution strategy:

        * ``"naive"`` (default) -- operator-at-a-time: every node of the
          plan materializes its full intermediate K-relation;
        * ``"pipelined"`` -- compile the plan into streaming hash-based
          kernels (:mod:`repro.engine`): selections/projections/renames fuse
          into scans and join probe loops, joins build the cheaper side, and
          duplicate-tuple annotation contributions are combined batched (one
          ``+``-chain per output tuple).  Same result, no intermediate
          materialization.

        ``storage`` selects the result's physical backend (``"row"`` or
        ``"columnar"``; ``None`` defers to ``REPRO_STORAGE``, then to the
        database's own backend).  Under the pipelined executor a columnar
        backend additionally engages the whole-column vectorized kernels
        (:mod:`repro.engine.vectorized`) for supported plans and semirings.

        ``parallel`` enables shared-nothing partition-parallel execution
        (:mod:`repro.parallel`): an integer worker count, ``True`` for the
        cpu count, or a :class:`~repro.parallel.executor.ParallelExecutor`
        to reuse a warm pool; ``None`` defers to ``REPRO_PARALLEL``.  The
        plan's driver relation is hash-partitioned, each partition is
        evaluated by a worker over the pipelined kernels, and the partials
        are merged with one ``+``-chain per output tuple -- annotation
        identical to the serial executors.  Plans or semirings the parallel
        path cannot handle exactly (circuits, opaque predicate closures,
        self-joins on the only large relation) decline and fall back to the
        ``executor`` selected above.
        """
        import os as _os

        plan = self.optimized(database) if optimize else self
        if parallel is not None or _os.environ.get("REPRO_PARALLEL"):
            from repro.parallel import resolve_parallel as _resolve_parallel

            resolved = _resolve_parallel(parallel)
            if resolved:
                from repro.parallel.queries import execute_query_parallel

                result = execute_query_parallel(
                    plan, database, parallel=resolved, storage=storage
                )
                if result is not None:
                    return result
        if executor == "pipelined":
            from repro.engine import execute as _execute_pipelined

            return _execute_pipelined(plan, database, storage=storage)
        if executor != "naive":
            raise QueryError(
                f"unknown executor {executor!r}; expected 'naive' or 'pipelined'"
            )
        result = plan._execute(database)
        if storage is not None and result.storage != _resolve_storage_kind(storage):
            result = result.with_storage(storage)
        return result

    def _execute(self, database: Database) -> KRelation:
        """Execute this operator tree as written (implemented by subclasses)."""
        raise NotImplementedError

    def optimized(self, database: Database | None = None, **options) -> "Query":
        """The planner's equivalent, cheaper plan for this query.

        ``options`` are forwarded to :func:`repro.planner.optimize`
        (``semiring=``, ``statistics=``, ``reorder=``, ...).
        """
        from repro.planner import optimize as _optimize

        return _optimize(self, database, **options)

    def explain(
        self,
        database: Database | None = None,
        *,
        analyze: bool = False,
        **options,
    ):
        """Explain this query: the planner's report, or executed actuals.

        With ``analyze=False`` (default) this returns the logical planner's
        :class:`~repro.planner.optimizer.OptimizationReport` -- applied
        rewrite rules and cost estimates, nothing is executed.  With
        ``analyze=True`` the optimized plan is compiled to the pipelined
        engine and **executed** with full observation, returning an
        :class:`~repro.obs.explain.ExplainAnalyzeReport`: the physical
        operator tree annotated with actual rows, wall time, hash-join
        build/probe sizes and semiring-op counts (``report.result`` holds
        the query's K-relation).  ``options`` forward to the planner.
        """
        if analyze:
            if database is None:
                raise QueryError("explain(analyze=True) requires a database")
            from repro.obs.explain import explain_analyze as _explain_analyze

            return _explain_analyze(self, database, **options)
        from repro.planner import explain as _explain

        return _explain(self, database, **options)

    def explain_analyze(self, database: Database, **options):
        """Shorthand for :meth:`explain` with ``analyze=True``."""
        return self.explain(database, analyze=True, **options)

    def __call__(
        self,
        database: Database,
        *,
        optimize: bool = False,
        executor: str = "naive",
        storage: str | None = None,
        parallel: Any = None,
    ) -> KRelation:
        return self.evaluate(
            database,
            optimize=optimize,
            executor=executor,
            storage=storage,
            parallel=parallel,
        )

    # -- combinators -------------------------------------------------------------
    def union(self, other: "Query") -> "Union":
        """Union with another query (annotations added)."""
        return Union(self, other)

    def project(self, *attributes: str) -> "Project":
        """Project onto the listed attributes (annotations summed)."""
        if len(attributes) == 1 and not isinstance(attributes[0], str):
            attributes = tuple(attributes[0])
        return Project(self, attributes)

    def select(self, predicate: Predicate, *, description: str | None = None) -> "Select":
        """Select by a {0,1}-valued predicate (annotations multiplied)."""
        return Select(self, predicate, description=description)

    def where_eq(self, attribute: str, value: Any) -> "Select":
        """Shorthand for selection on attribute = constant."""
        return Select(
            self, attr_eq_const(attribute, value), description=f"{attribute} = {value!r}"
        )

    def where_attrs_equal(self, left: str, right: str) -> "Select":
        """Shorthand for selection on attribute = attribute."""
        return Select(self, attr_eq(left, right), description=f"{left} = {right}")

    def join(self, other: "Query") -> "Join":
        """Natural join with another query (annotations multiplied)."""
        return Join(self, other)

    def rename(self, mapping: Mapping[str, str]) -> "Rename":
        """Rename attributes by the given bijection."""
        return Rename(self, dict(mapping))

    # -- inspection ----------------------------------------------------------------
    def relation_names(self) -> frozenset[str]:
        """Names of base relations referenced by the query."""
        names: set[str] = set()
        for child in self.children():
            names |= child.relation_names()
        return frozenset(names)

    def children(self) -> Sequence["Query"]:
        """Direct sub-queries (empty for leaves)."""
        return ()

    def __repr__(self) -> str:
        return f"<Query {self}>"


class RelationRef(Query):
    """A reference to a named base relation of the database."""

    def __init__(self, name: str):
        self.name = name

    def _execute(self, database: Database) -> KRelation:
        return database.relation(self.name)

    def relation_names(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


class EmptyRelation(Query):
    """The empty relation over a fixed schema (the ∅ of Definition 3.2)."""

    def __init__(self, schema: Schema | Iterable[str]):
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)

    def _execute(self, database: Database) -> KRelation:
        return operators.empty(database.semiring, self.schema)

    def __str__(self) -> str:
        return f"∅{self.schema}"


class Union(Query):
    """Union of two union-compatible sub-queries."""

    def __init__(self, left: Query, right: Query):
        self.left, self.right = left, right

    def _execute(self, database: Database) -> KRelation:
        return operators.union(self.left.evaluate(database), self.right.evaluate(database))

    def children(self) -> Sequence[Query]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∪ {self.right})"


class Project(Query):
    """Projection of a sub-query onto a list of attributes."""

    def __init__(self, child: Query, attributes: Iterable[str]):
        self.child = child
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise QueryError("projection needs at least one attribute")

    def _execute(self, database: Database) -> KRelation:
        return operators.project(self.child.evaluate(database), self.attributes)

    def children(self) -> Sequence[Query]:
        return (self.child,)

    def __str__(self) -> str:
        return f"π_{{{','.join(self.attributes)}}}({self.child})"


class Select(Query):
    """Selection of a sub-query by a {0,1}-valued predicate."""

    def __init__(self, child: Query, predicate: Callable[[Tup], Any], *, description: str | None = None):
        self.child = child
        self.predicate = predicate
        self.description = description or describe_predicate(predicate)

    def _execute(self, database: Database) -> KRelation:
        return operators.select(self.child.evaluate(database), self.predicate)

    def children(self) -> Sequence[Query]:
        return (self.child,)

    def __str__(self) -> str:
        return f"σ_[{self.description}]({self.child})"


class Join(Query):
    """Natural join of two sub-queries."""

    def __init__(self, left: Query, right: Query):
        self.left, self.right = left, right

    def _execute(self, database: Database) -> KRelation:
        return operators.join(self.left.evaluate(database), self.right.evaluate(database))

    def children(self) -> Sequence[Query]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ⋈ {self.right})"


class Rename(Query):
    """Attribute renaming of a sub-query."""

    def __init__(self, child: Query, mapping: Mapping[str, str]):
        self.child = child
        self.mapping = dict(mapping)

    def _execute(self, database: Database) -> KRelation:
        return operators.rename(self.child.evaluate(database), self.mapping)

    def children(self) -> Sequence[Query]:
        return (self.child,)

    def __str__(self) -> str:
        renames = ", ".join(f"{old}→{new}" for old, new in self.mapping.items())
        return f"ρ_[{renames}]({self.child})"


class _QueryBuilder:
    """Entry point for the fluent query API (exported as ``Q``)."""

    @staticmethod
    def relation(name: str) -> RelationRef:
        """Reference a base relation by name."""
        return RelationRef(name)

    @staticmethod
    def empty(schema: Schema | Iterable[str]) -> EmptyRelation:
        """The empty relation over ``schema``."""
        return EmptyRelation(schema)


#: Fluent query builder: ``Q.relation("R").project("a", "c")`` etc.
Q = _QueryBuilder()
