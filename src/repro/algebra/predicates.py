"""Selection predicates for the positive algebra.

Definition 3.2 leaves open which ``{0, 1}``-valued functions may be used as
selection predicates, requiring only that the constant predicates ``true``
and ``false`` exist.  This module provides the standard repertoire --
attribute/attribute and attribute/constant equality, comparisons, conjunction
and disjunction -- each as a callable returning ``True``/``False`` (which the
operators convert to the semiring's ``1``/``0``).

Note that *negation of predicates on values* is allowed (it does not involve
the annotations), only the relational difference operator is excluded from
the positive algebra.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.relations.tuples import Tup

__all__ = [
    "Predicate",
    "true",
    "false",
    "attr_eq",
    "attr_eq_const",
    "attr_neq_const",
    "comparison",
    "conjunction",
    "disjunction",
    "negation",
]

Predicate = Callable[[Tup], bool]


def true(_: Tup) -> bool:
    """The constantly-true predicate (required by Definition 3.2)."""
    return True


def false(_: Tup) -> bool:
    """The constantly-false predicate (required by Definition 3.2)."""
    return False


def attr_eq(left: str, right: str) -> Predicate:
    """Equality of two attributes: ``t[left] == t[right]``."""

    def predicate(tup: Tup) -> bool:
        return tup[left] == tup[right]

    predicate.__name__ = f"eq_{left}_{right}"
    return predicate


def attr_eq_const(attribute: str, constant: Any) -> Predicate:
    """Equality of an attribute with a constant: ``t[attribute] == constant``."""

    def predicate(tup: Tup) -> bool:
        return tup[attribute] == constant

    predicate.__name__ = f"eq_{attribute}_const"
    return predicate


def attr_neq_const(attribute: str, constant: Any) -> Predicate:
    """Disequality with a constant (a value-level predicate, still positive RA)."""

    def predicate(tup: Tup) -> bool:
        return tup[attribute] != constant

    predicate.__name__ = f"neq_{attribute}_const"
    return predicate


def comparison(attribute: str, operator: str, value: Any) -> Predicate:
    """A comparison predicate ``t[attribute] <op> value`` for <, <=, >, >=, ==, !=."""
    operators: dict[str, Callable[[Any, Any], bool]] = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }
    compare = operators[operator]

    def predicate(tup: Tup) -> bool:
        return compare(tup[attribute], value)

    predicate.__name__ = f"cmp_{attribute}_{operator}"
    return predicate


def conjunction(*predicates: Predicate) -> Predicate:
    """The conjunction of several predicates."""

    def predicate(tup: Tup) -> bool:
        return all(p(tup) for p in predicates)

    predicate.__name__ = "conjunction"
    return predicate


def disjunction(*predicates: Predicate) -> Predicate:
    """The disjunction of several predicates."""

    def predicate(tup: Tup) -> bool:
        return any(p(tup) for p in predicates)

    predicate.__name__ = "disjunction"
    return predicate


def negation(inner: Predicate) -> Predicate:
    """The complement of a value-level predicate."""

    def predicate(tup: Tup) -> bool:
        return not inner(tup)

    predicate.__name__ = f"not_{getattr(inner, '__name__', 'predicate')}"
    return predicate
