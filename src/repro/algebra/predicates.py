"""Selection predicates for the positive algebra, as inspectable AST nodes.

Definition 3.2 leaves open which ``{0, 1}``-valued functions may be used as
selection predicates, requiring only that the constant predicates ``true``
and ``false`` exist.  This module provides the standard repertoire --
attribute/attribute and attribute/constant equality, comparisons, conjunction
and disjunction -- each as a *structured* predicate: a callable object that
additionally exposes

* :attr:`BasePredicate.attributes` -- exactly which attributes the predicate
  reads (``None`` for opaque callables, which cannot be analyzed);
* :meth:`BasePredicate.conjuncts` -- the CNF split (top-level conjunction
  flattened into its parts);
* :meth:`BasePredicate.rename` -- the same predicate over renamed attributes;
* :meth:`BasePredicate.signature` -- a hashable structural key.

The query planner (:mod:`repro.planner`) uses this structure to decide
pushdown legality (a selection commutes with a projection exactly when its
attributes are preserved) and to split conjunctions across the two sides of
a join.  Plain Python callables keep working everywhere a predicate is
accepted -- they are wrapped in :class:`OpaquePredicate` (or used as-is by
the operators) and simply treated as unanalyzable, so no rewrite ever moves
them.

Note that *negation of predicates on values* is allowed (it does not involve
the annotations), only the relational difference operator is excluded from
the positive algebra.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Tuple

from repro.relations.tuples import Tup

__all__ = [
    "Predicate",
    "BasePredicate",
    "TruePredicate",
    "FalsePredicate",
    "AttrEquals",
    "AttrEqualsConst",
    "AttrNotEqualsConst",
    "ComparisonPredicate",
    "Conjunction",
    "Disjunction",
    "Negation",
    "OpaquePredicate",
    "as_predicate",
    "describe_predicate",
    "true",
    "false",
    "attr_eq",
    "attr_eq_const",
    "attr_neq_const",
    "comparison",
    "conjunction",
    "disjunction",
    "negation",
]

#: The predicate *type*: anything callable on a tuple.  Structured predicates
#: below are instances of :class:`BasePredicate`; plain callables remain valid.
Predicate = Callable[[Tup], bool]


def _const_key(value: Any) -> tuple:
    """A signature component for a predicate's constant.

    Compares by the constant's own equality (tagged with its type so ``2``
    and ``2.0`` stay distinct); unhashable constants fall back to object
    identity, which keeps signatures hashable and errs on the side of
    *inequality* -- the safe direction for the planner's dedupe rewrites.
    """
    try:
        hash(value)
    except TypeError:
        return ("unhashable", id(value))
    return (type(value).__qualname__, value)


class BasePredicate:
    """A {0, 1}-valued selection predicate with an inspectable structure.

    Instances are immutable, callable on :class:`~repro.relations.tuples.Tup`
    objects, and compare/hash by :meth:`signature`, so two independently
    built predicates with identical structure are equal.
    """

    __slots__ = ()

    #: Mirrors ``function.__name__`` so structured and plain predicates can
    #: be described uniformly (``getattr(p, "__name__", "P")``).
    __name__ = "P"

    def __call__(self, tup: Tup) -> bool:
        raise NotImplementedError

    @property
    def attributes(self) -> frozenset[str] | None:
        """The attributes the predicate reads, or ``None`` when unknown."""
        return None

    @property
    def total(self) -> bool:
        """Whether the predicate is defined on *every* tuple over its attributes.

        Equality-based predicates are total (``==``/``!=`` never raise by
        convention); ordering comparisons can raise on mixed-type values and
        opaque callables are unknowable, so both report ``False``.  The
        planner only moves a predicate onto tuples the original query never
        evaluated it on (pushdown into one side of a join) when it is total.
        """
        return False

    def conjuncts(self) -> Tuple["BasePredicate", ...]:
        """The CNF split: the parts of a top-level conjunction, else ``(self,)``."""
        return (self,)

    def rename(self, mapping: Mapping[str, str]) -> "BasePredicate":
        """The same predicate reading renamed attributes (old name -> new name)."""
        raise NotImplementedError

    def signature(self) -> tuple:
        """A hashable structural key (used for plan fixpoints and equality)."""
        raise NotImplementedError

    # -- protocol ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasePredicate):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return f"<predicate {self}>"

    def __str__(self) -> str:
        return self.__name__


class TruePredicate(BasePredicate):
    """The constantly-true predicate (required by Definition 3.2)."""

    __slots__ = ()
    __name__ = "true"

    total = True

    def __call__(self, _: Tup) -> bool:
        return True

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "TruePredicate":
        return self

    def signature(self) -> tuple:
        return ("true",)


class FalsePredicate(BasePredicate):
    """The constantly-false predicate (required by Definition 3.2)."""

    __slots__ = ()
    __name__ = "false"

    total = True

    def __call__(self, _: Tup) -> bool:
        return False

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "FalsePredicate":
        return self

    def signature(self) -> tuple:
        return ("false",)


class AttrEquals(BasePredicate):
    """Equality of two attributes: ``t[left] == t[right]``."""

    __slots__ = ("left", "right", "__name__")

    total = True

    def __init__(self, left: str, right: str):
        self.left = left
        self.right = right
        self.__name__ = f"eq_{left}_{right}"

    def __call__(self, tup: Tup) -> bool:
        return tup[self.left] == tup[self.right]

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def rename(self, mapping: Mapping[str, str]) -> "AttrEquals":
        return AttrEquals(
            mapping.get(self.left, self.left), mapping.get(self.right, self.right)
        )

    def signature(self) -> tuple:
        return ("attr_eq",) + tuple(sorted((self.left, self.right)))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


class AttrEqualsConst(BasePredicate):
    """Equality of an attribute with a constant: ``t[attribute] == constant``."""

    __slots__ = ("attribute", "constant", "__name__")

    total = True

    def __init__(self, attribute: str, constant: Any):
        self.attribute = attribute
        self.constant = constant
        self.__name__ = f"eq_{attribute}_const"

    def __call__(self, tup: Tup) -> bool:
        return tup[self.attribute] == self.constant

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def rename(self, mapping: Mapping[str, str]) -> "AttrEqualsConst":
        return AttrEqualsConst(mapping.get(self.attribute, self.attribute), self.constant)

    def signature(self) -> tuple:
        return ("attr_eq_const", self.attribute, _const_key(self.constant))

    def __str__(self) -> str:
        return f"{self.attribute} = {self.constant!r}"


class AttrNotEqualsConst(BasePredicate):
    """Disequality with a constant (a value-level predicate, still positive RA)."""

    __slots__ = ("attribute", "constant", "__name__")

    total = True

    def __init__(self, attribute: str, constant: Any):
        self.attribute = attribute
        self.constant = constant
        self.__name__ = f"neq_{attribute}_const"

    def __call__(self, tup: Tup) -> bool:
        return tup[self.attribute] != self.constant

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def rename(self, mapping: Mapping[str, str]) -> "AttrNotEqualsConst":
        return AttrNotEqualsConst(
            mapping.get(self.attribute, self.attribute), self.constant
        )

    def signature(self) -> tuple:
        return ("attr_neq_const", self.attribute, _const_key(self.constant))

    def __str__(self) -> str:
        return f"{self.attribute} != {self.constant!r}"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class ComparisonPredicate(BasePredicate):
    """A comparison ``t[attribute] <op> value`` for <, <=, >, >=, ==, !=."""

    __slots__ = ("attribute", "operator", "value", "_compare", "__name__")

    def __init__(self, attribute: str, operator: str, value: Any):
        self._compare = _COMPARATORS[operator]  # KeyError for unknown operators
        self.attribute = attribute
        self.operator = operator
        self.value = value
        self.__name__ = f"cmp_{attribute}_{operator}"

    def __call__(self, tup: Tup) -> bool:
        return self._compare(tup[self.attribute], self.value)

    @property
    def total(self) -> bool:
        # Ordering comparisons can raise TypeError on mixed-type values.
        return self.operator in ("==", "!=")

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def rename(self, mapping: Mapping[str, str]) -> "ComparisonPredicate":
        return ComparisonPredicate(
            mapping.get(self.attribute, self.attribute), self.operator, self.value
        )

    def signature(self) -> tuple:
        return ("comparison", self.attribute, self.operator, _const_key(self.value))

    def __str__(self) -> str:
        return f"{self.attribute} {self.operator} {self.value!r}"


def _combined_attributes(
    parts: Iterable[BasePredicate],
) -> frozenset[str] | None:
    collected: set[str] = set()
    for part in parts:
        attrs = part.attributes
        if attrs is None:
            return None
        collected |= attrs
    return frozenset(collected)


class Conjunction(BasePredicate):
    """The conjunction of several predicates (flattened, CNF-splittable)."""

    __slots__ = ("parts", "__name__")

    def __init__(self, parts: Iterable[Predicate]):
        flattened: list[BasePredicate] = []
        for part in parts:
            part = as_predicate(part)
            if isinstance(part, Conjunction):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)
        self.__name__ = "conjunction"

    def __call__(self, tup: Tup) -> bool:
        return all(part(tup) for part in self.parts)

    @property
    def attributes(self) -> frozenset[str] | None:
        return _combined_attributes(self.parts)

    @property
    def total(self) -> bool:
        return all(part.total for part in self.parts)

    def conjuncts(self) -> Tuple[BasePredicate, ...]:
        return self.parts if self.parts else (TruePredicate(),)

    def rename(self, mapping: Mapping[str, str]) -> "Conjunction":
        return Conjunction(part.rename(mapping) for part in self.parts)

    def signature(self) -> tuple:
        # repr as the sort key: deterministic without requiring the parts'
        # signature tuples (which may hold mixed-type constants) to compare.
        return ("and",) + tuple(
            sorted((part.signature() for part in self.parts), key=repr)
        )

    def __str__(self) -> str:
        return " ∧ ".join(f"({part})" for part in self.parts) or "true"


class Disjunction(BasePredicate):
    """The disjunction of several predicates."""

    __slots__ = ("parts", "__name__")

    def __init__(self, parts: Iterable[Predicate]):
        flattened: list[BasePredicate] = []
        for part in parts:
            part = as_predicate(part)
            if isinstance(part, Disjunction):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)
        self.__name__ = "disjunction"

    def __call__(self, tup: Tup) -> bool:
        return any(part(tup) for part in self.parts)

    @property
    def attributes(self) -> frozenset[str] | None:
        return _combined_attributes(self.parts)

    @property
    def total(self) -> bool:
        return all(part.total for part in self.parts)

    def rename(self, mapping: Mapping[str, str]) -> "Disjunction":
        return Disjunction(part.rename(mapping) for part in self.parts)

    def signature(self) -> tuple:
        return ("or",) + tuple(
            sorted((part.signature() for part in self.parts), key=repr)
        )

    def __str__(self) -> str:
        return " ∨ ".join(f"({part})" for part in self.parts) or "false"


class Negation(BasePredicate):
    """The complement of a value-level predicate."""

    __slots__ = ("inner", "__name__")

    def __init__(self, inner: Predicate):
        self.inner = as_predicate(inner)
        self.__name__ = f"not_{getattr(self.inner, '__name__', 'predicate')}"

    def __call__(self, tup: Tup) -> bool:
        return not self.inner(tup)

    @property
    def total(self) -> bool:
        return self.inner.total

    @property
    def attributes(self) -> frozenset[str] | None:
        return self.inner.attributes

    def rename(self, mapping: Mapping[str, str]) -> "Negation":
        return Negation(self.inner.rename(mapping))

    def signature(self) -> tuple:
        return ("not", self.inner.signature())

    def __str__(self) -> str:
        return f"¬({self.inner})"


class OpaquePredicate(BasePredicate):
    """A plain callable used as a predicate: valid, but unanalyzable.

    The planner treats opaque predicates conservatively -- their attribute
    set is unknown, so no rewrite ever commutes them past a projection, a
    rename, or into one side of a join (pushdown through a union remains
    legal for *any* predicate and is still applied).  Two opaque predicates
    are equal only when they wrap the very same callable.
    """

    __slots__ = ("function", "__name__")

    def __init__(self, function: Callable[[Tup], Any]):
        self.function = function
        self.__name__ = getattr(function, "__name__", "P")

    def __call__(self, tup: Tup) -> Any:
        return self.function(tup)

    @property
    def attributes(self) -> None:
        return None

    def rename(self, mapping: Mapping[str, str]) -> "OpaquePredicate":
        raise TypeError(
            f"opaque predicate {self.__name__!r} cannot be renamed; "
            "its attribute dependencies are unknown"
        )

    def signature(self) -> tuple:
        return ("opaque", id(self.function))

    def __reduce__(self):
        # Lambdas and local closures do not pickle; detect that here and
        # raise the library's SerializationError with an actionable message
        # instead of letting pickle fail with an opaque PicklingError deep
        # inside a worker-pool submit.
        function = self.function
        module = getattr(function, "__module__", None)
        qualname = getattr(function, "__qualname__", None)
        target: Any = None
        if module and qualname and "<" not in qualname:
            import sys

            target = sys.modules.get(module)
            for part in qualname.split("."):
                target = getattr(target, part, None)
                if target is None:
                    break
        if target is not function:
            from repro.errors import SerializationError

            raise SerializationError(
                f"opaque predicate {self.__name__!r} wraps "
                f"{_callable_label(function)}, which is not importable as "
                f"{module}.{qualname} and therefore cannot cross a process "
                "boundary; use a module-level function or a structured "
                "predicate from repro.algebra.predicates instead"
            )
        return (OpaquePredicate, (function,))

    def __str__(self) -> str:
        return f"opaque:{_callable_label(self.function)}"


def as_predicate(predicate: Predicate) -> BasePredicate:
    """Wrap a plain callable as an :class:`OpaquePredicate` (no-op when structured)."""
    if isinstance(predicate, BasePredicate):
        return predicate
    return OpaquePredicate(predicate)


def _callable_label(function: Callable[..., Any]) -> str:
    """A deterministic name for a plain callable (no memory addresses)."""
    name = getattr(function, "__qualname__", None) or getattr(
        function, "__name__", None
    )
    if name is None:
        name = type(function).__qualname__
    # Qualnames of closures carry a "<locals>" path; keep it -- it is stable
    # across runs -- but drop any lambda line noise beyond the qualname.
    return name


def describe_predicate(predicate: Predicate) -> str:
    """A deterministic human-readable rendering of any predicate.

    Structured predicates render via their ``__str__`` (e.g. ``a = b``,
    ``(a = 1) ∧ (b < 2)``); plain callables and :class:`OpaquePredicate`
    wrappers render as ``opaque:<qualname>`` -- stable across processes,
    unlike the default ``<function f at 0x...>`` repr, so plan explains and
    rewrite traces containing opaque predicates are reproducible and can be
    golden-tested.
    """
    if isinstance(predicate, BasePredicate):
        return str(predicate)
    return f"opaque:{_callable_label(predicate)}"


# ---------------------------------------------------------------------------
# Factory functions (the stable public API; all previously returned closures)
# ---------------------------------------------------------------------------

#: The constantly-true predicate (required by Definition 3.2).
true = TruePredicate()

#: The constantly-false predicate (required by Definition 3.2).
false = FalsePredicate()


def attr_eq(left: str, right: str) -> AttrEquals:
    """Equality of two attributes: ``t[left] == t[right]``."""
    return AttrEquals(left, right)


def attr_eq_const(attribute: str, constant: Any) -> AttrEqualsConst:
    """Equality of an attribute with a constant: ``t[attribute] == constant``."""
    return AttrEqualsConst(attribute, constant)


def attr_neq_const(attribute: str, constant: Any) -> AttrNotEqualsConst:
    """Disequality with a constant (a value-level predicate, still positive RA)."""
    return AttrNotEqualsConst(attribute, constant)


def comparison(attribute: str, operator: str, value: Any) -> ComparisonPredicate:
    """A comparison predicate ``t[attribute] <op> value`` for <, <=, >, >=, ==, !=."""
    return ComparisonPredicate(attribute, operator, value)


def conjunction(*predicates: Predicate) -> Conjunction:
    """The conjunction of several predicates."""
    return Conjunction(predicates)


def disjunction(*predicates: Predicate) -> Disjunction:
    """The disjunction of several predicates."""
    return Disjunction(predicates)


def negation(inner: Predicate) -> Negation:
    """The complement of a value-level predicate."""
    return Negation(inner)
