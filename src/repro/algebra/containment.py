"""Query containment with respect to K-relation semantics (Section 9).

Definition 9.1: for a naturally ordered commutative semiring ``K`` and
queries ``q1, q2`` over K-relations, ``q1 ⊑_K q2`` iff for every K-database
``R`` and tuple ``t``, ``q1(R)(t) <= q2(R)(t)`` in K's natural order.  With
``K = B`` this is the classical set-semantics containment, with ``K = N`` it
is bag containment.

Implemented procedures:

* :func:`cq_contained_set` -- Chandra-Merlin: ``q1 ⊑_B q2`` iff there is a
  homomorphism from ``q2`` into ``q1``;
* :func:`ucq_contained_set` -- Sagiv-Yannakakis: each disjunct of ``q1`` must
  be contained (set-semantics) in some disjunct of ``q2``;
* :func:`contained_in_semiring` -- Theorem 9.2: when ``K`` is a distributive
  lattice, UCQ containment under K equals containment under ``B``; for other
  naturally ordered semirings the function falls back to an explicit
  (sound but necessarily incomplete) search over randomly generated
  K-databases and reports what it found;
* :func:`check_containment_on_instance` -- test ``q1(R)(t) <= q2(R)(t)`` on a
  concrete database, used both by the fallback search and by the tests that
  validate Theorem 9.2 in both directions.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algebra.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.errors import ContainmentError
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring

__all__ = [
    "cq_contained_set",
    "ucq_contained_set",
    "contained_in_semiring",
    "check_containment_on_instance",
    "ContainmentWitness",
]

UCQ = UnionOfConjunctiveQueries


def _as_ucq(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> UnionOfConjunctiveQueries:
    if isinstance(query, ConjunctiveQuery):
        return UnionOfConjunctiveQueries([query], name=query.name)
    return query


def cq_contained_set(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Chandra-Merlin test: ``q1 ⊑_B q2`` iff a homomorphism ``q2 -> q1`` exists."""
    return q2.find_homomorphism(q1) is not None


def ucq_contained_set(
    q1: ConjunctiveQuery | UnionOfConjunctiveQueries,
    q2: ConjunctiveQuery | UnionOfConjunctiveQueries,
) -> bool:
    """Set-semantics containment of unions of conjunctive queries.

    ``q1 ⊑_B q2`` iff every disjunct of ``q1`` is contained in some disjunct
    of ``q2`` (Sagiv-Yannakakis).
    """
    u1, u2 = _as_ucq(q1), _as_ucq(q2)
    return all(
        any(cq_contained_set(d1, d2) for d2 in u2.disjuncts) for d1 in u1.disjuncts
    )


@dataclass
class ContainmentWitness:
    """A counterexample to a containment claim found by instance search."""

    database: Database
    tuple: Tup
    left_annotation: object
    right_annotation: object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContainmentWitness(tuple={self.tuple}, "
            f"left={self.left_annotation!r}, right={self.right_annotation!r})"
        )


def check_containment_on_instance(
    q1: ConjunctiveQuery | UnionOfConjunctiveQueries,
    q2: ConjunctiveQuery | UnionOfConjunctiveQueries,
    database: Database,
) -> ContainmentWitness | None:
    """Check ``q1(db)(t) <= q2(db)(t)`` for every tuple; return a violation or None."""
    u1, u2 = _as_ucq(q1), _as_ucq(q2)
    semiring = database.semiring
    result1, result2 = u1.evaluate(database), u2.evaluate(database)
    for tup in set(result1.support) | set(result2.support):
        left = result1.annotation(tup)
        right = result2.annotation(tup)
        if not semiring.leq(left, right):
            return ContainmentWitness(database, tup, left, right)
    return None


def _relation_signatures(
    queries: Iterable[UnionOfConjunctiveQueries],
) -> dict[str, int]:
    """Collect relation arities used by the queries (must be consistent)."""
    arities: dict[str, int] = {}
    for query in queries:
        for disjunct in query.disjuncts:
            for atom in disjunct.body:
                existing = arities.get(atom.relation)
                if existing is None:
                    arities[atom.relation] = atom.arity
                elif existing != atom.arity:
                    raise ContainmentError(
                        f"relation {atom.relation} used with arities {existing} and {atom.arity}"
                    )
    return arities


def random_databases(
    queries: Sequence[ConjunctiveQuery | UnionOfConjunctiveQueries],
    semiring: Semiring,
    annotation_pool: Sequence[object],
    *,
    trials: int = 25,
    domain_size: int = 3,
    max_tuples: int = 6,
    seed: int = 0,
) -> Iterable[Database]:
    """Generate small random K-databases over the relations the queries use.

    Used by the sound-but-incomplete containment search and by the tests that
    cross-validate Theorem 9.2.
    """
    ucqs = [_as_ucq(q) for q in queries]
    arities = _relation_signatures(ucqs)
    rng = random.Random(seed)
    domain = [f"d{i}" for i in range(domain_size)]
    for _ in range(trials):
        database = Database(semiring)
        for relation_name, arity in arities.items():
            relation = database.create(
                relation_name, [f"a{i + 1}" for i in range(arity)]
            )
            for _ in range(rng.randint(0, max_tuples)):
                values = tuple(rng.choice(domain) for _ in range(arity))
                annotation = rng.choice(list(annotation_pool))
                relation.add(values, annotation)
        yield database


def contained_in_semiring(
    q1: ConjunctiveQuery | UnionOfConjunctiveQueries,
    q2: ConjunctiveQuery | UnionOfConjunctiveQueries,
    semiring: Semiring,
    *,
    annotation_pool: Sequence[object] | None = None,
    trials: int = 25,
    seed: int = 0,
) -> bool:
    """Decide (or test) ``q1 ⊑_K q2`` for UCQs.

    When ``K`` is a distributive lattice, Theorem 9.2 applies and the answer
    is exactly the decidable set-semantics containment.  When ``K`` is ``B``
    the same procedure applies directly.  Otherwise the semiring's natural
    order is checked on randomly generated K-databases: a ``False`` answer is
    then definitive (a counterexample was found), while ``True`` only means
    "no counterexample found in ``trials`` random instances" and the caller
    is expected to treat it as evidence, not proof.  This mirrors the open
    status of bag containment discussed in the paper's conclusion.
    """
    if isinstance(semiring, BooleanSemiring) or semiring.is_distributive_lattice:
        return ucq_contained_set(q1, q2)
    if annotation_pool is None:
        annotation_pool = _default_annotation_pool(semiring)
    for database in random_databases(
        [q1, q2], semiring, annotation_pool, trials=trials, seed=seed
    ):
        if check_containment_on_instance(q1, q2, database) is not None:
            return False
    return True


def _default_annotation_pool(semiring: Semiring) -> list[object]:
    """A small pool of sample annotations used for randomized testing."""
    pool = [semiring.one()]
    try:
        pool.append(semiring.from_int(2))
        pool.append(semiring.from_int(3))
    except Exception:  # pragma: no cover - non-numeric semirings
        pass
    # Deduplicate while preserving order.
    seen = []
    for value in pool:
        if value not in seen:
            seen.append(value)
    return seen


def containment_equivalence_counterexample(
    q1: ConjunctiveQuery | UnionOfConjunctiveQueries,
    q2: ConjunctiveQuery | UnionOfConjunctiveQueries,
    semiring: Semiring,
    *,
    annotation_pool: Sequence[object],
    trials: int = 50,
    seed: int = 0,
) -> ContainmentWitness | None:
    """Search for a K-instance violating ``q1 ⊑_K q2``.

    Helper used by the Theorem 9.2 tests: when the theorem applies and
    ``q1 ⊑_B q2`` holds, this search must come back empty.
    """
    for database in random_databases(
        [q1, q2], semiring, annotation_pool, trials=trials, seed=seed
    ):
        witness = check_containment_on_instance(q1, q2, database)
        if witness is not None:
            return witness
    return None
