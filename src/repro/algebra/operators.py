"""The positive relational algebra on K-relations (Definition 3.2).

Each operator is implemented exactly as in the paper:

* ``empty`` -- the all-zero relation;
* ``union`` -- ``(R1 ∪ R2)(t) = R1(t) + R2(t)``;
* ``project`` -- ``(π_V R)(t) = Σ_{t = t' on V, R(t') ≠ 0} R(t')``;
* ``select`` -- ``(σ_P R)(t) = R(t) · P(t)`` with ``P(t) ∈ {0, 1}``;
* ``join`` -- ``(R1 ⋈ R2)(t) = R1(t|U1) · R2(t|U2)``;
* ``rename`` -- ``(ρ_β R)(t) = R(t ∘ β)``.

All operators preserve finite support (Proposition 3.3), which here is
automatic because only support tuples are ever enumerated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Mapping

from repro.errors import QueryError, SchemaError
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring

__all__ = [
    "empty",
    "union",
    "project",
    "select",
    "predicate_factor",
    "join",
    "rename",
    "validate_rename",
    "intersection",
]


def _require_same_semiring(left: KRelation, right: KRelation) -> Semiring:
    if left.semiring.name != right.semiring.name:
        raise QueryError(
            f"cannot combine relations over different semirings "
            f"({left.semiring.name} vs {right.semiring.name})"
        )
    return left.semiring


def empty(semiring: Semiring, schema: Schema | Iterable[str]) -> KRelation:
    """The empty K-relation over ``schema`` (every tuple annotated 0)."""
    return KRelation(semiring, schema)


def union(left: KRelation, right: KRelation) -> KRelation:
    """Union of two union-compatible relations; annotations are added."""
    semiring = _require_same_semiring(left, right)
    if not left.schema.is_compatible_with(right.schema):
        raise SchemaError(
            f"union requires identical attribute sets: {left.schema} vs {right.schema}"
        )
    result = KRelation(semiring, left.schema)
    for tup, annotation in left.items():
        result._accumulate(tup, annotation)
    for tup, annotation in right.items():
        result._accumulate(tup, annotation)
    return result


def project(relation: KRelation, attributes: Iterable[str]) -> KRelation:
    """Projection onto ``attributes``; annotations of coinciding tuples are added."""
    target_schema = relation.schema.project(attributes)
    semiring = relation.semiring
    result = KRelation(semiring, target_schema)
    for tup, annotation in relation.items():
        result._accumulate(tup.restrict(target_schema.attributes), annotation)
    return result


def select(relation: KRelation, predicate: Callable[[Tup], Any]) -> KRelation:
    """Selection: multiply each annotation by the {0, 1} value of the predicate.

    Predicates may return Python booleans (the usual case) or the semiring's
    own 0/1 values; anything else is rejected to respect Definition 3.2's
    requirement that predicates are {0, 1}-valued.
    """
    semiring = relation.semiring
    result = KRelation(semiring, relation.schema)
    for tup, annotation in relation.items():
        value = semiring.mul(annotation, predicate_factor(semiring, predicate(tup)))
        if not semiring.is_zero(value):
            result.set(tup, value)
    return result


def predicate_factor(semiring: Semiring, outcome: Any) -> Any:
    """Coerce a selection predicate's outcome to the semiring's 0 or 1.

    Predicates may return Python booleans (the usual case) or the semiring's
    own 0/1 values; anything else is rejected to respect Definition 3.2's
    requirement that predicates are {0, 1}-valued.
    """
    zero, one = semiring.zero(), semiring.one()
    if isinstance(outcome, bool):
        return one if outcome else zero
    if outcome == zero or outcome == one:
        return outcome
    raise QueryError(
        f"selection predicate returned {outcome!r}, expected a {{0, 1}} value"
    )


def join(left: KRelation, right: KRelation) -> KRelation:
    """Natural join; annotations of joinable tuples are multiplied.

    Hash join: the *smaller* relation is loaded into a bucket index on the
    shared attributes and the larger one probes it, so the cost is
    proportional to the number of joinable pairs rather than the full cross
    product (and the index memory is minimal).  Annotations are always
    multiplied as ``left · right``, matching Definition 3.2 regardless of
    which side was indexed.
    """
    semiring = _require_same_semiring(left, right)
    shared = sorted(left.schema.attribute_set & right.schema.attribute_set)
    result_schema = left.schema.join(right.schema)
    result = KRelation(semiring, result_schema)
    if not left or not right:
        return result

    swapped = len(left) > len(right)
    build, probe = (right, left) if swapped else (left, right)

    index: dict[tuple, list[tuple[Tup, Any]]] = defaultdict(list)
    for tup, annotation in build.items():
        index[tuple(tup[a] for a in shared)].append((tup, annotation))

    mul = semiring.mul
    for tup_probe, annotation_probe in probe.items():
        bucket = index.get(tuple(tup_probe[a] for a in shared))
        if bucket is None:
            continue
        for tup_build, annotation_build in bucket:
            merged = tup_probe.merge(tup_build)
            if swapped:
                value = mul(annotation_probe, annotation_build)
            else:
                value = mul(annotation_build, annotation_probe)
            result._accumulate(merged, value)
    return result


def intersection(left: KRelation, right: KRelation) -> KRelation:
    """Intersection = natural join of union-compatible relations."""
    if not left.schema.is_compatible_with(right.schema):
        raise SchemaError("intersection requires identical attribute sets")
    return join(left, right)


def validate_rename(mapping: Mapping[str, str], attribute_set: Iterable[str]) -> None:
    """The legality checks of ``rename``: known attributes, injective, no clashes.

    Shared with the pipelined plan compiler (:mod:`repro.engine.compile`) so
    the naive and physical executors accept exactly the same renamings.
    """
    attribute_set = set(attribute_set)
    old_names = set(mapping)
    unknown = old_names - attribute_set
    if unknown:
        raise SchemaError(f"cannot rename unknown attributes {sorted(unknown)}")
    new_names = list(mapping.values())
    if len(set(new_names)) != len(new_names):
        raise SchemaError(f"renaming {dict(mapping)} is not injective")
    clashes = (set(new_names) & attribute_set) - old_names
    if clashes:
        raise SchemaError(f"renaming collides with existing attributes {sorted(clashes)}")


def rename(relation: KRelation, mapping: Mapping[str, str]) -> KRelation:
    """Rename attributes by the bijection ``mapping`` (old name -> new name)."""
    validate_rename(mapping, relation.schema.attribute_set)
    result = KRelation(relation.semiring, relation.schema.rename(mapping))
    for tup, annotation in relation.items():
        result.set(tup.rename(mapping), annotation)
    return result
