"""The factorization theorem for the positive algebra (Theorem 4.3).

For any commutative semiring ``K``, K-relation ``R`` and positive-algebra
query ``q``::

    q(R) = Eval_v ∘ q(R-bar)

where ``R-bar`` is the abstractly-tagged version of ``R`` (every support
tuple annotated by its own id variable), ``q(R-bar)`` is computed in the
provenance semiring ``N[X]``, and ``Eval_v`` evaluates each provenance
polynomial under the valuation sending each tuple id to the tuple's original
annotation.

In other words: compute provenance once, then specialize to any semiring.
:func:`factorized_evaluate` performs the two stages and
:func:`verify_factorization` additionally compares the result with the direct
evaluation, which is what the Theorem 4.3 tests and benchmarks do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.algebra.ast import Query
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tagging import TaggedDatabase, abstractly_tag_database
from repro.semirings.base import Semiring
from repro.semirings.polynomial import Polynomial

__all__ = ["FactorizationResult", "provenance_of_query", "factorized_evaluate", "verify_factorization"]


@dataclass
class FactorizationResult:
    """Output of a factorized evaluation.

    Attributes
    ----------
    provenance:
        The ``N[X]``-relation ``q(R-bar)`` whose annotations are provenance
        polynomials.
    evaluated:
        The K-relation obtained by applying ``Eval_v`` to each polynomial.
    tagged:
        The tagged database (variables, valuation, tuple-id bookkeeping).
    """

    provenance: KRelation
    evaluated: KRelation
    tagged: TaggedDatabase


def provenance_of_query(
    query: Query,
    database: Database,
    *,
    ids: Mapping[str, Mapping[object, str]] | None = None,
) -> tuple[KRelation, TaggedDatabase]:
    """Compute the provenance-polynomial annotation of ``query`` over ``database``.

    Returns the ``N[X]``-relation of provenance polynomials together with the
    tagged database (which carries the valuation back to the original
    annotations).
    """
    tagged = abstractly_tag_database(database, ids=ids)
    provenance = query.evaluate(tagged.database)
    return provenance, tagged


def evaluate_provenance(
    provenance: KRelation, target: Semiring, valuation: Mapping[str, object]
) -> KRelation:
    """Apply ``Eval_v`` to every provenance polynomial, producing a K-relation."""
    coerced = {variable: target.coerce(value) for variable, value in valuation.items()}
    return provenance.map_annotations(
        lambda annotation: Polynomial.of(annotation).evaluate(target, coerced),
        target,
    )


def factorized_evaluate(
    query: Query,
    database: Database,
    *,
    ids: Mapping[str, Mapping[object, str]] | None = None,
) -> FactorizationResult:
    """Evaluate ``query`` through the provenance semiring (Theorem 4.3).

    Stage 1 computes ``q(R-bar)`` in ``N[X]``; stage 2 evaluates every
    polynomial under the valuation recovered from the original annotations.
    """
    provenance, tagged = provenance_of_query(query, database, ids=ids)
    evaluated = evaluate_provenance(provenance, database.semiring, tagged.valuation)
    return FactorizationResult(provenance=provenance, evaluated=evaluated, tagged=tagged)


def verify_factorization(
    query: Query,
    database: Database,
    *,
    ids: Mapping[str, Mapping[object, str]] | None = None,
) -> bool:
    """Check Theorem 4.3 on a concrete query and database.

    Returns whether the factorized evaluation agrees, annotation for
    annotation, with evaluating the query directly in the database's own
    semiring.
    """
    direct = query.evaluate(database)
    factorized = factorized_evaluate(query, database, ids=ids)
    return direct.equal_to(factorized.evaluated)
