"""repro -- a reproduction of "Provenance Semirings" (Green, Karvounarakis & Tannen, PODS 2007).

The library provides K-relations (relations annotated with elements of a
commutative semiring), the positive relational algebra and datalog over
them, the provenance semirings ``N[X]`` and ``N∞[[X]]``, incomplete and
probabilistic database frontends, and query containment machinery.

Quickstart::

    from repro import BooleanSemiring, Database, Q

    db = Database(BooleanSemiring())
    db.create("R", ["a", "b"], [("1", "2"), ("2", "3")])
    result = Q.relation("R").project("a").evaluate(db)

Provenance circuits
-------------------

Beyond the paper's expanded polynomials, :mod:`repro.circuits` provides a
hash-consed DAG representation of the same provenance semantics: annotate
inputs in :class:`CircuitSemiring` (or abstractly tag any database with
``abstractly_tag_database(db, semiring=CircuitSemiring())``), run *any*
query once, then :func:`specialize` the output into as many semirings as
needed -- each via one memoized pass over the shared DAG instead of a
monomial-by-monomial re-evaluation::

    from repro import CircuitSemiring, Database, NaturalsSemiring, Q, specialize

    circ = CircuitSemiring()
    db = Database(circ)
    db.create("R", ["a", "b"], [(("1", "2"), "p"), (("2", "3"), "r")])
    result = Q.relation("R").project("a").evaluate(db)   # circuit annotations
    bags = specialize(result, NaturalsSemiring(), {"p": 2, "r": 5})

Under deep joins and datalog fixpoints circuits stay polynomially small
where ``N[X]`` explodes (see ``benchmarks/bench_circuits.py``); by
universality (Proposition 4.2) the answers are identical.
"""

from repro.errors import (
    ContainmentError,
    DatalogError,
    DivergenceError,
    GroundingError,
    InvalidAnnotationError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SemiringError,
)
from repro.relations import (
    Database,
    KRelation,
    Schema,
    TaggedDatabase,
    Tup,
    abstractly_tag,
    abstractly_tag_database,
)
from repro.semirings import (
    INFINITY,
    BooleanSemiring,
    BoolExpr,
    CompletedNaturalsSemiring,
    EventSemiring,
    EventSpace,
    FormalPowerSeries,
    FuzzySemiring,
    IntegerPolynomialRing,
    IntegerRing,
    Monomial,
    NatInf,
    NaturalsSemiring,
    Polynomial,
    PolynomialSemiring,
    PosBoolSemiring,
    PowerSeriesSemiring,
    ProductSemiring,
    ProvenancePolynomialSemiring,
    Semiring,
    SemiringHomomorphism,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
    WitnessWhySemiring,
    ZPolynomial,
    available_semirings,
    get_semiring,
    polynomial_evaluation,
    series_evaluation,
)
from repro.algebra import (
    ConjunctiveQuery,
    Q,
    Query,
    UnionOfConjunctiveQueries,
    contained_in_semiring,
    cq_contained_set,
    factorized_evaluate,
    ucq_contained_set,
    verify_factorization,
)
from repro.circuits import (
    CircuitEvaluator,
    CircuitSemiring,
    circuit_evaluation,
    eval_circuit,
    from_polynomial,
    specialize,
    to_polynomial,
)
from repro.datalog import (
    DatalogCircuitProvenance,
    DatalogProvenance,
    DatalogResult,
    Program,
    Rule,
    datalog_circuit_provenance,
    datalog_provenance,
    evaluate_program,
)
from repro.incremental import (
    IncrementalDatalog,
    MaterializedView,
    UpdateBatch,
    apply_batch_to_database,
    apply_delta,
    batch_deltas,
    view_delta,
)
from repro.engine import compile_query, execute
from repro.obs import (
    InstrumentedSemiring,
    OpCounter,
    explain_analyze,
    instrument,
    tracing,
)
from repro.planner import (
    CostModel,
    OptimizationReport,
    Statistics,
    explain,
    optimize,
    plan_signature,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SemiringError",
    "InvalidAnnotationError",
    "SchemaError",
    "QueryError",
    "DatalogError",
    "GroundingError",
    "DivergenceError",
    "ContainmentError",
    "ParseError",
    # relations
    "Tup",
    "Schema",
    "KRelation",
    "Database",
    "TaggedDatabase",
    "abstractly_tag",
    "abstractly_tag_database",
    # semirings
    "Semiring",
    "BooleanSemiring",
    "NaturalsSemiring",
    "CompletedNaturalsSemiring",
    "NatInf",
    "INFINITY",
    "TropicalSemiring",
    "FuzzySemiring",
    "ViterbiSemiring",
    "PosBoolSemiring",
    "BoolExpr",
    "WhyProvenanceSemiring",
    "WitnessWhySemiring",
    "EventSemiring",
    "EventSpace",
    "IntegerRing",
    "IntegerPolynomialRing",
    "ZPolynomial",
    "Monomial",
    "Polynomial",
    "PolynomialSemiring",
    "ProvenancePolynomialSemiring",
    "FormalPowerSeries",
    "PowerSeriesSemiring",
    "ProductSemiring",
    "SemiringHomomorphism",
    "polynomial_evaluation",
    "series_evaluation",
    "get_semiring",
    "available_semirings",
    # circuits
    "CircuitSemiring",
    "CircuitEvaluator",
    "eval_circuit",
    "circuit_evaluation",
    "to_polynomial",
    "from_polynomial",
    "specialize",
    # datalog
    "Program",
    "Rule",
    "DatalogResult",
    "evaluate_program",
    "DatalogProvenance",
    "DatalogCircuitProvenance",
    "datalog_provenance",
    "datalog_circuit_provenance",
    # incremental
    "UpdateBatch",
    "MaterializedView",
    "IncrementalDatalog",
    "view_delta",
    "apply_delta",
    "batch_deltas",
    "apply_batch_to_database",
    # engine
    "compile_query",
    "execute",
    # observability
    "tracing",
    "instrument",
    "InstrumentedSemiring",
    "OpCounter",
    "explain_analyze",
    # planner
    "optimize",
    "explain",
    "OptimizationReport",
    "Statistics",
    "CostModel",
    "plan_signature",
    # algebra
    "Q",
    "Query",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "cq_contained_set",
    "ucq_contained_set",
    "contained_in_semiring",
    "factorized_evaluate",
    "verify_factorization",
]
