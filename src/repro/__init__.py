"""repro -- a reproduction of "Provenance Semirings" (Green, Karvounarakis & Tannen, PODS 2007).

The library provides K-relations (relations annotated with elements of a
commutative semiring), the positive relational algebra and datalog over
them, the provenance semirings ``N[X]`` and ``N∞[[X]]``, incomplete and
probabilistic database frontends, and query containment machinery.

Quickstart::

    from repro import BooleanSemiring, Database, Q

    db = Database(BooleanSemiring())
    db.create("R", ["a", "b"], [("1", "2"), ("2", "3")])
    result = Q.relation("R").project("a").evaluate(db)
"""

from repro.errors import (
    ContainmentError,
    DatalogError,
    DivergenceError,
    GroundingError,
    InvalidAnnotationError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SemiringError,
)
from repro.relations import (
    Database,
    KRelation,
    Schema,
    TaggedDatabase,
    Tup,
    abstractly_tag,
    abstractly_tag_database,
)
from repro.semirings import (
    INFINITY,
    BooleanSemiring,
    BoolExpr,
    CompletedNaturalsSemiring,
    EventSemiring,
    EventSpace,
    FormalPowerSeries,
    FuzzySemiring,
    Monomial,
    NatInf,
    NaturalsSemiring,
    Polynomial,
    PolynomialSemiring,
    PosBoolSemiring,
    PowerSeriesSemiring,
    ProductSemiring,
    ProvenancePolynomialSemiring,
    Semiring,
    SemiringHomomorphism,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
    WitnessWhySemiring,
    available_semirings,
    get_semiring,
    polynomial_evaluation,
    series_evaluation,
)
from repro.algebra import (
    ConjunctiveQuery,
    Q,
    Query,
    UnionOfConjunctiveQueries,
    contained_in_semiring,
    cq_contained_set,
    factorized_evaluate,
    ucq_contained_set,
    verify_factorization,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SemiringError",
    "InvalidAnnotationError",
    "SchemaError",
    "QueryError",
    "DatalogError",
    "GroundingError",
    "DivergenceError",
    "ContainmentError",
    "ParseError",
    # relations
    "Tup",
    "Schema",
    "KRelation",
    "Database",
    "TaggedDatabase",
    "abstractly_tag",
    "abstractly_tag_database",
    # semirings
    "Semiring",
    "BooleanSemiring",
    "NaturalsSemiring",
    "CompletedNaturalsSemiring",
    "NatInf",
    "INFINITY",
    "TropicalSemiring",
    "FuzzySemiring",
    "ViterbiSemiring",
    "PosBoolSemiring",
    "BoolExpr",
    "WhyProvenanceSemiring",
    "WitnessWhySemiring",
    "EventSemiring",
    "EventSpace",
    "Monomial",
    "Polynomial",
    "PolynomialSemiring",
    "ProvenancePolynomialSemiring",
    "FormalPowerSeries",
    "PowerSeriesSemiring",
    "ProductSemiring",
    "SemiringHomomorphism",
    "polynomial_evaluation",
    "series_evaluation",
    "get_semiring",
    "available_semirings",
    # algebra
    "Q",
    "Query",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "cq_contained_set",
    "ucq_contained_set",
    "contained_in_semiring",
    "factorized_evaluate",
    "verify_factorization",
]
