"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SemiringError",
    "InvalidAnnotationError",
    "SchemaError",
    "QueryError",
    "DatalogError",
    "GroundingError",
    "DivergenceError",
    "ContainmentError",
    "ParseError",
    "SerializationError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SemiringError(ReproError):
    """A semiring was constructed or used incorrectly."""


class InvalidAnnotationError(SemiringError):
    """An annotation value does not belong to the semiring's carrier set."""


class SchemaError(ReproError):
    """Schemas of relations are incompatible with the requested operation."""


class QueryError(ReproError):
    """A relational-algebra query is malformed or cannot be evaluated."""


class DatalogError(ReproError):
    """A datalog program is malformed or cannot be evaluated."""


class GroundingError(DatalogError):
    """A datalog program could not be instantiated over the given database."""


class DivergenceError(DatalogError):
    """A fixpoint computation does not converge in the chosen semiring.

    Raised only when the caller requests strict behaviour; by default the
    engine represents divergent annotations with the semiring's infinity
    when one exists.
    """


class ContainmentError(ReproError):
    """A containment test was requested for unsupported query classes."""


class ParseError(ReproError):
    """Textual input (datalog rules, conjunctive queries) failed to parse."""


class SerializationError(ReproError):
    """A value cannot cross a process boundary (pickle round-trip).

    Raised instead of :class:`pickle.PicklingError` when the library can
    tell *why* the value does not serialize -- e.g. an
    :class:`~repro.algebra.predicates.OpaquePredicate` wrapping a lambda or
    local closure -- so the parallel executor's decline path and the caller
    both see an actionable message.
    """
