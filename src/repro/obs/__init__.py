"""Engine-wide observability: tracing spans, semiring-op metrics, EXPLAIN ANALYZE.

This package is the measurement substrate for the whole reproduction:

* :mod:`repro.obs.trace` -- a context-manager span tracer (nested spans,
  wall-clock timing, user attributes) with pluggable sinks and a no-op fast
  path that keeps the instrumented engine within the 5% tracing-off budget;
* :mod:`repro.obs.sinks` -- in-memory, JSONL-file and stderr sinks;
* :mod:`repro.obs.metrics` -- semiring-op counters (:class:`OpCounter`),
  circuit hash-consing statistics (:data:`consing`) and knowledge-compilation
  counters (:data:`compilation`);
* :mod:`repro.obs.semiring` -- :class:`InstrumentedSemiring`, an
  annotation-identical counting wrapper for any registry semiring;
* :mod:`repro.obs.explain` -- ``explain_analyze``: execute the pipelined
  physical plan and render the operator tree annotated with actual rows,
  timings and per-node semiring-op counts.

``explain`` lives behind a lazy import because it depends on the planner and
the execution engine; everything exported here eagerly is stdlib-plus-base.
"""

from __future__ import annotations

from repro.obs.metrics import CompileStats, ConsingStats, OpCounter, compilation, consing
from repro.obs.semiring import InstrumentedSemiring, instrument
from repro.obs.sinks import InMemorySink, JsonlSink, StderrSink
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanRecord,
    active_sinks,
    add_sink,
    disable,
    enable,
    enabled,
    remove_sink,
    span,
    tracing,
)

from repro.obs.trace import _enable_from_environment

# REPRO_TRACE activation happens here, after every obs module has loaded
# (the sinks need the trace record type, so trace.py cannot do it itself).
_enable_from_environment()

__all__ = [
    "CompileStats",
    "ConsingStats",
    "OpCounter",
    "compilation",
    "consing",
    "InstrumentedSemiring",
    "instrument",
    "InMemorySink",
    "JsonlSink",
    "StderrSink",
    "NOOP_SPAN",
    "Span",
    "SpanRecord",
    "active_sinks",
    "add_sink",
    "disable",
    "enable",
    "enabled",
    "remove_sink",
    "span",
    "tracing",
    "explain_analyze",
    "ExplainAnalyzeReport",
]


def __getattr__(name: str):
    if name in ("explain_analyze", "ExplainAnalyzeReport", "ExecutionObserver", "NodeStats"):
        from repro.obs import explain as _explain

        return getattr(_explain, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
