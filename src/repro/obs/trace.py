"""A zero-dependency, context-manager span tracer with a no-op fast path.

Tracing is **disabled by default** and designed so that instrumented code
pays almost nothing while it stays off: :func:`span` checks one module-level
flag and returns a shared no-op singleton, so a ``with span(...)`` at an
instrumentation site costs one function call and two no-op method calls.
All instrumentation sites in the engine sit at *operator/round* granularity
(a kernel invocation, a datalog round, a planner pass) -- never inside
per-tuple loops -- which is what keeps the tracing-off overhead under the
5% budget asserted by ``benchmarks/bench_obs_overhead.py``.

Enabled, the tracer records **nested spans**: every ``with span(name, **attrs)``
block gets a wall-clock duration (``time.perf_counter``), a depth and a
parent id from the currently open spans, and user attributes (set at creation
or later via :meth:`Span.set` -- e.g. output cardinalities known only at the
end of the block).  Finished spans are emitted to pluggable sinks
(:mod:`repro.obs.sinks`): in-memory for tests and programmatic inspection,
JSONL files for machine-readable traces, stderr for eyeballing.

Environment activation: setting ``REPRO_TRACE`` turns tracing on at import
time -- ``REPRO_TRACE=stderr`` attaches the stderr sink, any other value is
taken as a JSONL output path.  This is how CI's tracing-on smoke job runs
the whole test suite under the JSONL sink without touching any code.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterator, List

__all__ = [
    "Span",
    "SpanRecord",
    "span",
    "enabled",
    "enable",
    "disable",
    "add_sink",
    "remove_sink",
    "active_sinks",
    "tracing",
]


class SpanRecord:
    """One finished span: name, timing, nesting links, and user attributes."""

    __slots__ = ("name", "start", "duration", "depth", "span_id", "parent_id", "attributes")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        span_id: int,
        parent_id: int | None,
        attributes: Dict[str, Any],
    ):
        self.name = name
        self.start = start
        self.duration = duration
        self.depth = depth
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly flat representation (used by the JSONL sink)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"<SpanRecord {self.name!r} {self.duration * 1e3:.3f}ms "
            f"depth={self.depth} attrs={self.attributes}>"
        )


class _State:
    """Module-level tracer state (one tracer per process, like logging)."""

    __slots__ = ("enabled", "sinks", "stack", "next_id")

    def __init__(self) -> None:
        self.enabled = False
        self.sinks: List[Any] = []
        self.stack: List["Span"] = []
        self.next_id = 0


_STATE = _State()


class _NoopSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; use as a context manager.  Not created directly -- call
    :func:`span`, which routes through the no-op fast path when tracing is off.
    """

    __slots__ = ("name", "attributes", "span_id", "parent_id", "depth", "_start")

    def __init__(self, name: str, attributes: Dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.span_id = -1
        self.parent_id: int | None = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attributes: Any) -> "Span":
        """Merge attributes into the span (chainable); later keys win."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        state = _STATE
        self.parent_id = state.stack[-1].span_id if state.stack else None
        self.depth = len(state.stack)
        self.span_id = state.next_id
        state.next_id += 1
        state.stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._start
        state = _STATE
        # Tolerate exceptions unwinding several spans at once.
        while state.stack and state.stack[-1] is not self:
            state.stack.pop()
        if state.stack:
            state.stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        record = SpanRecord(
            self.name,
            self._start,
            duration,
            self.depth,
            self.span_id,
            self.parent_id,
            self.attributes,
        )
        for sink in state.sinks:
            sink.emit(record)
        return False


def enabled() -> bool:
    """Whether tracing is currently on (the flag every hot-path gate checks)."""
    return _STATE.enabled


def span(name: str, **attributes: Any):
    """Open a span (usable as ``with span("engine.execute", rows=n) as sp``).

    The no-op fast path: while tracing is disabled this returns a shared
    inert singleton without allocating anything.
    """
    if not _STATE.enabled:
        return NOOP_SPAN
    return Span(name, attributes)


def _sync_metrics(on: bool) -> None:
    # Hash-consing counters live next to the hottest loop in the system
    # (circuit node interning) and are gated by their own flag; tracing
    # toggles them in lockstep so a traced run gets consing hit rates for
    # free.  An explicit metrics.consing.enable() still works independently.
    from repro.obs import metrics

    metrics.consing.enabled = on


def enable(*sinks: Any) -> None:
    """Turn tracing on, attaching ``sinks`` (keeps any already attached)."""
    for sink in sinks:
        if sink not in _STATE.sinks:
            _STATE.sinks.append(sink)
    _STATE.enabled = True
    _sync_metrics(True)


def disable() -> None:
    """Turn tracing off (sinks stay attached but receive nothing)."""
    _STATE.enabled = False
    _sync_metrics(False)


def add_sink(sink: Any) -> None:
    """Attach a sink without changing the enabled flag."""
    if sink not in _STATE.sinks:
        _STATE.sinks.append(sink)


def remove_sink(sink: Any) -> None:
    """Detach a sink (no error if absent)."""
    if sink in _STATE.sinks:
        _STATE.sinks.remove(sink)


def active_sinks() -> tuple:
    """The currently attached sinks."""
    return tuple(_STATE.sinks)


class tracing:
    """Scoped tracing: ``with tracing() as sink: ...`` enables tracing with an
    in-memory sink (or the sinks you pass) and restores the previous tracer
    state -- enabled flag and sink list -- on exit.
    """

    __slots__ = ("_sinks", "_prev_enabled", "_prev_sinks")

    def __init__(self, *sinks: Any):
        if not sinks:
            from repro.obs.sinks import InMemorySink

            sinks = (InMemorySink(),)
        self._sinks = sinks

    def __enter__(self):
        self._prev_enabled = _STATE.enabled
        self._prev_sinks = list(_STATE.sinks)
        _STATE.sinks = list(self._sinks)
        _STATE.enabled = True
        _sync_metrics(True)
        return self._sinks[0] if len(self._sinks) == 1 else self._sinks

    def __exit__(self, *exc: Any) -> bool:
        _STATE.enabled = self._prev_enabled
        _STATE.sinks = self._prev_sinks
        _sync_metrics(self._prev_enabled)
        return False


def _enable_from_environment() -> None:
    """Activate tracing from ``REPRO_TRACE`` (called by ``repro.obs`` once the
    sink module has fully loaded -- the sinks import back the record type, so
    activating here at module scope would be a circular import)."""
    target = os.environ.get("REPRO_TRACE")
    if not target:
        return
    from repro.obs import sinks as _sinks

    if target.strip().lower() == "stderr":
        enable(_sinks.StderrSink())
    else:
        enable(_sinks.JsonlSink(target))
