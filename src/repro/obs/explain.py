"""EXPLAIN ANALYZE for the pipelined execution engine.

:func:`explain_analyze` runs a query through the PR 4 logical planner (by
default), compiles the optimized plan with the PR 5 pipelined compiler,
executes it with an :class:`ExecutionObserver` attached to every physical
operator, and returns an :class:`ExplainAnalyzeReport`: the physical operator
tree annotated with **actual** output rows, cumulative wall time, hash-join
build/probe sizes and semiring-operation counts -- the quantities the
paper's cost analysis is stated in (one ``+``/``x`` chain per derivation,
Definition 3.2).

Attribution model (the pipelined engine has a single pipeline breaker):

* each operator's ``rows``/``time`` are measured on its *output* stream;
  time is inclusive of its children, PostgreSQL-style;
* ``times`` (semiring ``x``) is attributed to the join whose probe loop
  performed it, and to the envelope of operators with semiring-valued
  filters;
* ``plus``/``is_zero`` happen only at the breaker (batched accumulation)
  and are attributed to the report's ``breaker_ops``;
* the global totals are counted independently by an
  :class:`~repro.obs.semiring.InstrumentedSemiring` wrapped around the
  database's semiring, so per-node counts can be cross-checked against the
  totals (the ``tests/obs`` suite does exactly this).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.obs import trace as _trace
from repro.obs.metrics import OpCounter, compilation
from repro.obs.semiring import InstrumentedSemiring

__all__ = [
    "NodeStats",
    "ExecutionObserver",
    "ExplainAnalyzeReport",
    "explain_analyze",
]


class NodeStats:
    """Actuals collected for one physical operator during an observed run."""

    __slots__ = ("rows", "wall", "ops", "build_size", "probe_size")

    def __init__(self) -> None:
        self.rows = 0
        self.wall = 0.0
        self.ops = OpCounter()
        self.build_size = 0
        self.probe_size = 0

    def snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rows": self.rows,
            "wall": self.wall,
            "ops": self.ops.snapshot(),
        }
        if self.build_size or self.probe_size:
            data["build_size"] = self.build_size
            data["probe_size"] = self.probe_size
        return data


class ExecutionObserver:
    """Per-node collection hooks for an observed execution.

    Attached to a compiled plan via :meth:`attach`, the observer wraps every
    operator's output stream (:meth:`observe_rows`: output cardinality and
    cumulative wall time, measured per ``next()``) and hands joins a counted
    ``mul`` plus a stats slot for build/probe sizes.  Plans without an
    observer skip all of this -- the ordinary execution path checks a single
    ``observer is None`` per operator.
    """

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: Dict[int, NodeStats] = {}

    def stats(self, node: Any) -> NodeStats:
        """The (created-on-first-use) stats slot of a physical operator."""
        found = self._stats.get(id(node))
        if found is None:
            found = self._stats[id(node)] = NodeStats()
        return found

    def attach(self, root: Any) -> None:
        """Install this observer on every node of a compiled plan."""
        root.observer = self
        self.stats(root)
        for child in _children(root):
            self.attach(child)

    def observe_rows(
        self, node: Any, iterator: Iterator[Tuple[tuple, Any]]
    ) -> Iterator[Tuple[tuple, Any]]:
        """Wrap a node's output stream, timing each ``next()`` (inclusive)."""
        stats = self.stats(node)
        clock = time.perf_counter
        while True:
            started = clock()
            try:
                item = next(iterator)
            except StopIteration:
                stats.wall += clock() - started
                return
            stats.wall += clock() - started
            stats.rows += 1
            yield item

    def counted_mul(
        self, node: Any, mul: Callable[[Any, Any], Any]
    ) -> Callable[[Any, Any], Any]:
        """A ``mul`` that attributes its calls to ``node`` before delegating."""
        ops = self.stats(node).ops

        def counted(a: Any, b: Any) -> Any:
            ops.times += 1
            return mul(a, b)

        return counted

    def join_stats(self, node: Any) -> NodeStats:
        """The stats slot a join passes to the kernel for build/probe sizes."""
        return self.stats(node)


class _ObservedDatabase:
    """A database view whose semiring is the instrumented wrapper.

    Relations, catalog lookups and everything else delegate to the real
    database; only ``semiring`` differs, which is all the compiled plan
    reads for annotation arithmetic.  Works because semirings interoperate
    by *name* across the system and the wrapper mirrors its delegate's name.
    """

    __slots__ = ("semiring", "_delegate")

    def __init__(self, delegate: Any, semiring: InstrumentedSemiring):
        self.semiring = semiring
        self._delegate = delegate

    def relation(self, name: str) -> Any:
        return self._delegate.relation(name)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._delegate, name)


def _children(node: Any) -> Tuple[Any, ...]:
    left = getattr(node, "left", None)
    right = getattr(node, "right", None)
    if left is not None and right is not None:
        return (left, right)
    return ()


def _node_label(node: Any) -> str:
    from repro.engine.compile import _Empty, _HashJoin, _Scan, _UnionAll

    if isinstance(node, _Scan):
        return f"Scan {node.name}"
    if isinstance(node, _Empty):
        return "Empty"
    if isinstance(node, _HashJoin):
        shared = tuple(node.left.attrs[i] for i in node.left_key)
        build = "left" if node.build_is_left else "right"
        key = ", ".join(shared) if shared else "⨯"
        return f"HashJoin on ({key}) build={build}"
    if isinstance(node, _UnionAll):
        return "UnionAll"
    return type(node).__name__.lstrip("_")


class ExplainAnalyzeReport:
    """The outcome of an observed execution: result, actuals, and rendering.

    Attributes
    ----------
    result:
        The query's K-relation (annotation-identical to an ordinary run).
    root:
        The compiled physical plan (tree of engine nodes).
    observer:
        The :class:`ExecutionObserver` holding per-node actuals.
    totals:
        Global semiring-op counts of the entire run (independent of the
        per-node attribution; includes the breaker).
    breaker_ops:
        The ``plus``/``is_zero`` (and any residual ``times``) spent in the
        final batched accumulation.
    wall:
        End-to-end execution wall time in seconds (excludes planning).
    optimization:
        The planner's :class:`~repro.planner.optimizer.OptimizationReport`
        when the logical optimizer ran first, else ``None``.
    compile_stats:
        Knowledge-compilation counters accumulated during the observed run
        (circuit compiles, decision-memo hit rate, input/output DAG sizes):
        the cost of ``method="compile"`` probabilistic inference, first-class
        next to the semiring-op counts.  All zero for runs that never
        compile.
    """

    def __init__(
        self,
        query: Any,
        plan: Any,
        root: Any,
        observer: ExecutionObserver,
        result: Any,
        totals: Dict[str, int],
        breaker_ops: Dict[str, int],
        wall: float,
        optimization: Any = None,
        compile_stats: Dict[str, float] | None = None,
    ):
        self.query = query
        self.plan = plan
        self.root = root
        self.observer = observer
        self.result = result
        self.totals = totals
        self.breaker_ops = breaker_ops
        self.wall = wall
        self.optimization = optimization
        self.compile_stats = compile_stats or {
            "compiles": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "input_nodes": 0,
            "output_nodes": 0,
            "hit_rate": 0.0,
        }

    # -- structured access -------------------------------------------------------
    def nodes(self) -> List[Tuple[Any, NodeStats, int]]:
        """All physical operators as ``(node, stats, depth)``, preorder."""
        collected: List[Tuple[Any, NodeStats, int]] = []

        def walk(node: Any, depth: int) -> None:
            collected.append((node, self.observer.stats(node), depth))
            for child in _children(node):
                walk(child, depth + 1)

        walk(self.root, 0)
        return collected

    def table(self) -> List[Dict[str, Any]]:
        """JSON-friendly per-operator rows (used by tests and benchmarks)."""
        rows = []
        for node, stats, depth in self.nodes():
            entry: Dict[str, Any] = {
                "operator": _node_label(node),
                "depth": depth,
                "columns": list(node.attrs),
                "estimate": node.estimate,
            }
            if node.filter_labels:
                entry["filters"] = list(node.filter_labels)
            entry.update(stats.snapshot())
            rows.append(entry)
        return rows

    # -- rendering ---------------------------------------------------------------
    def render(self, *, timings: bool = True) -> str:
        """The annotated physical tree (set ``timings=False`` for golden tests:
        wall-clock values are the only nondeterministic field)."""
        lines: List[str] = []
        if self.optimization is not None:
            rules = self.optimization.applied_rules
            lines.append(f"logical plan: {self.plan}")
            lines.append(
                "applied rules: " + (", ".join(rules) if rules else "(none)")
            )
        for node, stats, depth in self.nodes():
            parts = [f"rows={stats.rows}", f"est={node.estimate:g}"]
            if timings:
                parts.append(f"time={stats.wall * 1e3:.3f}ms")
            if stats.build_size or stats.probe_size:
                parts.append(f"build={stats.build_size}")
                parts.append(f"probe={stats.probe_size}")
            ops = stats.ops
            if ops.total:
                parts.append(f"times={ops.times}")
                if ops.plus:
                    parts.append(f"plus={ops.plus}")
                if ops.is_zero:
                    parts.append(f"is_zero={ops.is_zero}")
            label = _node_label(node)
            columns = ", ".join(node.attrs)
            line = f"{'  ' * depth}{label} -> ({columns})  [{' '.join(parts)}]"
            lines.append(line)
            for filter_label in node.filter_labels:
                lines.append(f"{'  ' * (depth + 1)}filter: {filter_label}")
        breaker = [
            f"output rows={len(self.result)}",
            f"plus={self.breaker_ops['plus']}",
            f"is_zero={self.breaker_ops['is_zero']}",
        ]
        lines.append("breaker: " + " ".join(breaker))
        if self.compile_stats.get("compiles"):
            cs = self.compile_stats
            lines.append(
                "compile: "
                f"compiles={int(cs['compiles'])} "
                f"nodes_in={int(cs['input_nodes'])} "
                f"nodes_out={int(cs['output_nodes'])} "
                f"cache_hit_rate={cs['hit_rate']:.3f}"
            )
        totals = [
            f"plus={self.totals['plus']}",
            f"times={self.totals['times']}",
            f"is_zero={self.totals['is_zero']}",
        ]
        if timings:
            totals.append(f"wall={self.wall * 1e3:.3f}ms")
        lines.append("totals: " + " ".join(totals))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return (
            f"<ExplainAnalyzeReport rows={len(self.result)} "
            f"ops={self.totals} wall={self.wall * 1e3:.3f}ms>"
        )


def explain_analyze(
    query: Any,
    database: Any,
    *,
    optimize: bool = True,
    **planner_options: Any,
) -> ExplainAnalyzeReport:
    """Execute ``query`` pipelined with full observation and report actuals.

    With ``optimize=True`` (default) the query first goes through the
    semiring-aware logical planner and the report carries the
    :class:`OptimizationReport` alongside the physical actuals --
    ``planner_options`` (``reorder=``, ``statistics=``, ...) are forwarded.
    The executed result is annotation-identical to an ordinary run (the
    instrumented semiring is a counting pass-through) and is available as
    ``report.result``.
    """
    from repro.engine.compile import compile_query
    from repro.engine.kernels import build_relation
    from repro.relations.krelation import KRelation

    optimization = None
    plan = query
    if optimize:
        from repro.planner import explain as _logical_explain

        optimization = _logical_explain(query, database, **planner_options)
        plan = optimization.optimized

    ops = OpCounter()
    instrumented = InstrumentedSemiring(database.semiring, ops)
    observed = _ObservedDatabase(database, instrumented)
    observer = ExecutionObserver()
    compile_before = compilation.snapshot()

    with _trace.span("explain.analyze", semiring=database.semiring.name):
        started = time.perf_counter()
        root = compile_query(plan, observed)
        observer.attach(root)
        groups: Dict[tuple, List[Any]] = {}
        for row, annotation in root.rows(observed):
            batch = groups.get(row)
            if batch is None:
                groups[row] = [annotation]
            else:
                batch.append(annotation)
        before_breaker = ops.snapshot()
        accumulated = build_relation(instrumented, root.attrs, groups)
        breaker_ops = ops.delta(before_breaker)
        wall = time.perf_counter() - started

    # Hand back a result over the *plain* semiring so downstream code never
    # sees the instrumented wrapper.
    result = KRelation(database.semiring, accumulated.schema)
    result._annotations.update(accumulated._annotations)

    return ExplainAnalyzeReport(
        query=query,
        plan=plan,
        root=root,
        observer=observer,
        result=result,
        totals=ops.snapshot(),
        breaker_ops=breaker_ops,
        wall=wall,
        optimization=optimization,
        compile_stats=compilation.delta(compile_before),
    )
