"""An instrumented semiring wrapper: delegates every operation and counts.

:class:`InstrumentedSemiring` wraps any :class:`~repro.semirings.base.Semiring`
(including registry semirings and circuits) and is annotation-identical to
its delegate -- ``add``/``mul``/``is_zero`` return exactly what the delegate
returns, and every structural flag (``name``, ``idempotent_add``, ring
capability, ...) is mirrored, so K-relations, databases, the planner's
property gates and the datalog engine all treat the wrapper as the wrapped
semiring.  The only difference is that the three hot operations bump an
:class:`~repro.obs.metrics.OpCounter` on the way through.

Because semirings are compared *by name* throughout the system (databases,
kernels, cross-relation checks), a database built over an instrumented
semiring interoperates with plain relations over the delegate; the
differential test suite (``tests/obs``) proves annotation-for-annotation
equality across N, B, Tropical, PosBool, Z, N[X] and circuits.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.metrics import OpCounter
from repro.semirings.base import Semiring

__all__ = ["InstrumentedSemiring", "instrument"]


class InstrumentedSemiring(Semiring):
    """Count ``add``/``mul``/``is_zero`` calls of a delegate semiring.

    ``ops`` is the attached :class:`OpCounter` (a fresh one unless shared
    explicitly); ``delegate`` is the wrapped semiring.  All other methods --
    coercion, order, star, rendering, ring operations -- forward verbatim.
    ``sum``/``product`` are inherited from the base class, which folds
    through ``self.add``/``self.mul``, so batched chains are counted
    per-element exactly like explicit loops.
    """

    __slots__ = ("delegate", "ops")

    def __init__(self, delegate: Semiring, ops: OpCounter | None = None):
        if isinstance(delegate, InstrumentedSemiring):
            delegate = delegate.delegate
        self.delegate = delegate
        self.ops = ops if ops is not None else OpCounter()
        # Mirror the structural flags so property-gated code paths (planner
        # rewrites, datalog regimes, view deletion support) see the delegate.
        self.name = delegate.name
        self.idempotent_add = delegate.idempotent_add
        self.idempotent_mul = delegate.idempotent_mul
        self.is_omega_continuous = delegate.is_omega_continuous
        self.is_distributive_lattice = delegate.is_distributive_lattice
        self.has_top = delegate.has_top
        self.naturally_ordered = delegate.naturally_ordered
        self.has_negation = delegate.has_negation

    def __reduce__(self):
        # Pickles by reconstruction so worker processes get a working
        # wrapper (delegate + a value-copy of the counter).  Counts bumped
        # in a worker do not flow back to the parent's OpCounter -- op
        # metrics are per-process; the parallel executor's spans carry the
        # cross-process accounting instead.
        return (InstrumentedSemiring, (self.delegate, self.ops))

    # -- counted hot path --------------------------------------------------------
    def add(self, a: Any, b: Any) -> Any:
        self.ops.plus += 1
        return self.delegate.add(a, b)

    def mul(self, a: Any, b: Any) -> Any:
        self.ops.times += 1
        return self.delegate.mul(a, b)

    def is_zero(self, value: Any) -> bool:
        self.ops.is_zero += 1
        return self.delegate.is_zero(value)

    # -- verbatim delegation -----------------------------------------------------
    def zero(self) -> Any:
        return self.delegate.zero()

    def one(self) -> Any:
        return self.delegate.one()

    def contains(self, value: Any) -> bool:
        return self.delegate.contains(value)

    def coerce(self, value: Any) -> Any:
        return self.delegate.coerce(value)

    def is_one(self, value: Any) -> bool:
        return self.delegate.is_one(value)

    def negate(self, value: Any) -> Any:
        return self.delegate.negate(value)

    def subtract(self, a: Any, b: Any) -> Any:
        # Route through the counted add so ring subtraction shows up as plus.
        return self.add(a, self.negate(b))

    def leq(self, a: Any, b: Any) -> bool:
        return self.delegate.leq(a, b)

    def top(self) -> Any:
        return self.delegate.top()

    def star(self, a: Any) -> Any:
        return self.delegate.star(a)

    def normalize(self, value: Any) -> Any:
        return self.delegate.normalize(value)

    def format_value(self, value: Any) -> str:
        return self.delegate.format_value(value)

    def summarize_value(self, value: Any) -> str:
        return self.delegate.summarize_value(value)

    def check(self, value: Any) -> Any:
        return self.delegate.check(value)

    def from_int(self, n: int) -> Any:
        # Delegate directly: some semirings (circuits, Z) embed integers in
        # O(1) rather than by the n-fold +-chain of the base implementation,
        # and the wrapper must be representation-identical to its delegate.
        return self.delegate.from_int(n)

    def scale(self, n: int, value: Any) -> Any:
        return self.delegate.scale(n, value)

    def power(self, value: Any, n: int) -> Any:
        return self.delegate.power(value, n)

    def __repr__(self) -> str:
        return f"<InstrumentedSemiring {self.name} ops={self.ops!r}>"


def instrument(semiring: Semiring, ops: OpCounter | None = None) -> InstrumentedSemiring:
    """Wrap ``semiring`` so its ``plus``/``times``/``is_zero`` calls are counted."""
    return InstrumentedSemiring(semiring, ops)
