"""Metric counters for the quantities the paper's cost model cares about.

The dominant cost of semiring-annotated evaluation is *annotation
arithmetic* -- one ``+``/``x`` chain per derivation (Definition 3.2) -- so
the first-class metrics here are semiring-operation counts, not just rows
and seconds:

* :class:`OpCounter` -- ``plus`` / ``times`` / ``is_zero`` call counts,
  filled in by :class:`repro.obs.semiring.InstrumentedSemiring` (globally)
  and by the observed executor (per physical operator);
* :data:`consing` -- hash-consing hit/miss counts of the circuit intern
  table (:mod:`repro.circuits.nodes`), gated by its own ``enabled`` flag
  because node interning is the hottest loop in the system.  Tracing
  (:mod:`repro.obs.trace`) toggles it in lockstep.

Everything is plain attribute arithmetic on ``__slots__`` objects: cheap to
update, trivially snapshotted into JSON for the benchmark reports.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["OpCounter", "ConsingStats", "consing", "CompileStats", "compilation"]


class OpCounter:
    """Counts of the three semiring operations that dominate evaluation cost.

    ``plus`` counts ``add`` calls (union / projection / accumulation),
    ``times`` counts ``mul`` calls (join / selection), ``is_zero`` counts
    support checks (the stored-zero invariant of Definition 3.1).
    """

    __slots__ = ("plus", "times", "is_zero")

    def __init__(self, plus: int = 0, times: int = 0, is_zero: int = 0):
        self.plus = plus
        self.times = times
        self.is_zero = is_zero

    def reset(self) -> None:
        self.plus = self.times = self.is_zero = 0

    def snapshot(self) -> Dict[str, int]:
        """A frozen dict of the current counts (JSON-friendly)."""
        return {"plus": self.plus, "times": self.times, "is_zero": self.is_zero}

    def delta(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counts accumulated since an earlier :meth:`snapshot`."""
        return {
            "plus": self.plus - earlier["plus"],
            "times": self.times - earlier["times"],
            "is_zero": self.is_zero - earlier["is_zero"],
        }

    @property
    def total(self) -> int:
        return self.plus + self.times + self.is_zero

    def __repr__(self) -> str:
        return f"<OpCounter plus={self.plus} times={self.times} is_zero={self.is_zero}>"


class ConsingStats:
    """Hit/miss counts of the circuit hash-consing intern table.

    ``enabled`` gates the counting -- the intern table sits inside every
    circuit ``+``/``x``, so the counters must cost nothing when nobody is
    looking.  A *hit* means a structurally identical node already existed
    (the sharing that keeps circuits polynomially small); the hit rate is
    the fraction of constructions the DAG representation deduplicated.
    """

    __slots__ = ("enabled", "hits", "misses")

    def __init__(self) -> None:
        self.enabled = False
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of node constructions served from the intern table."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}

    def __repr__(self) -> str:
        return (
            f"<ConsingStats hits={self.hits} misses={self.misses} "
            f"hit_rate={self.hit_rate:.3f} enabled={self.enabled}>"
        )


class CompileStats:
    """Counters for knowledge compilation (:mod:`repro.circuits.compile`).

    Compilation is the potentially-exponential step of the inference stack,
    so its cost is first-class: ``compiles`` counts :func:`compile_circuit`
    calls, ``cache_hits``/``cache_misses`` count lookups in the
    decision-node memo (a hit means a restricted subcircuit had already been
    compiled -- the sharing that keeps the diagram polynomial when one
    exists), ``input_nodes``/``output_nodes`` accumulate DAG sizes before
    and after, so ``output_nodes / compiles`` is the mean compiled size.
    Unlike the consing counters these are always on: compilation happens at
    most once per distinct lineage, never inside per-tuple loops.
    """

    __slots__ = ("compiles", "cache_hits", "cache_misses", "input_nodes", "output_nodes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiles = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.input_nodes = 0
        self.output_nodes = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of decision-memo lookups served from the cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "input_nodes": self.input_nodes,
            "output_nodes": self.output_nodes,
            "hit_rate": self.hit_rate,
        }

    def delta(self, earlier: Dict[str, float]) -> Dict[str, float]:
        """Counts accumulated since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        out = {key: current[key] - earlier[key] for key in current if key != "hit_rate"}
        lookups = out["cache_hits"] + out["cache_misses"]
        out["hit_rate"] = out["cache_hits"] / lookups if lookups else 0.0
        return out

    def __repr__(self) -> str:
        return (
            f"<CompileStats compiles={self.compiles} cache_hits={self.cache_hits} "
            f"cache_misses={self.cache_misses} output_nodes={self.output_nodes}>"
        )


#: The process-wide hash-consing counters (see :mod:`repro.circuits.nodes`).
consing = ConsingStats()

#: The process-wide knowledge-compilation counters (see
#: :mod:`repro.circuits.compile`).
compilation = CompileStats()
