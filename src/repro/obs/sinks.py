"""Span sinks: where finished :class:`~repro.obs.trace.SpanRecord`s go.

Three zero-dependency sinks cover the intended uses:

* :class:`InMemorySink` -- a list, for tests and programmatic analysis;
* :class:`JsonlSink` -- one JSON object per line, the machine-readable trace
  format CI's tracing-on smoke job produces and uploads;
* :class:`StderrSink` -- indented human-readable lines for eyeballing a run.

A sink is anything with ``emit(record: SpanRecord) -> None``; custom sinks
plug in via :func:`repro.obs.trace.enable` / ``add_sink``.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List

from repro.obs.trace import SpanRecord

__all__ = ["InMemorySink", "JsonlSink", "StderrSink"]


class InMemorySink:
    """Collect finished spans in a list (the default sink of ``tracing()``)."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []

    def emit(self, record: SpanRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    def find(self, name: str) -> List[SpanRecord]:
        """All recorded spans with the given name, in completion order."""
        return [record for record in self.records if record.name == name]

    def names(self) -> List[str]:
        """Span names in completion order (children complete before parents)."""
        return [record.name for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class JsonlSink:
    """Append finished spans to a file, one JSON object per line.

    The file is opened lazily on the first span and line-buffered, so traces
    survive a crashed process up to the last completed span.  Values that are
    not JSON-serializable (semiring elements, circuit nodes) degrade to their
    ``str`` rendering rather than failing the traced program.
    """

    __slots__ = ("path", "_file")

    def __init__(self, path: str):
        self.path = path
        self._file = None

    def emit(self, record: SpanRecord) -> None:
        if self._file is None:
            self._file = open(self.path, "a", buffering=1, encoding="utf-8")
        self._file.write(json.dumps(record.to_dict(), default=str) + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class StderrSink:
    """Print one indented line per finished span to stderr."""

    __slots__ = ("stream",)

    def __init__(self, stream: Any = None):
        self.stream = stream

    def emit(self, record: SpanRecord) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        attrs = " ".join(f"{k}={v}" for k, v in record.attributes.items())
        indent = "  " * record.depth
        print(
            f"{indent}{record.name} {record.duration * 1e3:.3f}ms"
            + (f" [{attrs}]" if attrs else ""),
            file=stream,
        )
