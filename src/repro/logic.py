"""Shared first-order syntax: variables, constants and relational atoms.

Conjunctive queries (Section 9) and datalog rules (Section 5) both build
their bodies out of relational atoms over variables and constants.  This
module holds those syntactic objects so that :mod:`repro.algebra.conjunctive`
and :mod:`repro.datalog.syntax` can share them without depending on each
other.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.errors import ParseError

__all__ = ["Variable", "Constant", "Term", "Atom", "parse_atom", "parse_term"]


class Variable:
    """A first-order variable, written as a lower-case identifier (x, y, z1...)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = str(name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant:
    """A constant value appearing in a query or rule."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


#: A term is either a variable or a constant.
Term = Variable | Constant


class Atom:
    """A relational atom ``R(t1, ..., tn)`` with terms that are variables or constants."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Iterable[Term]):
        self.relation = str(relation)
        self.terms: Tuple[Term, ...] = tuple(terms)
        for term in self.terms:
            if not isinstance(term, (Variable, Constant)):
                raise ParseError(f"{term!r} is not a Variable or Constant")

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    @property
    def variables(self) -> frozenset[Variable]:
        """The variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def substitute(self, assignment: Mapping[Variable, Any]) -> "Atom":
        """Replace variables by the terms/constants given in ``assignment``.

        Values in the assignment may be terms (for renamings/homomorphisms)
        or plain Python values (for groundings), which are wrapped as
        :class:`Constant`.
        """
        new_terms: list[Term] = []
        for term in self.terms:
            if isinstance(term, Variable) and term in assignment:
                value = assignment[term]
                if not isinstance(value, (Variable, Constant)):
                    value = Constant(value)
                new_terms.append(value)
            else:
                new_terms.append(term)
        return Atom(self.relation, new_terms)

    def is_ground(self) -> bool:
        """Whether the atom contains no variables."""
        return not self.variables

    def ground_values(self) -> tuple:
        """The constant values of a ground atom, in positional order."""
        if not self.is_ground():
            raise ParseError(f"atom {self} is not ground")
        return tuple(term.value for term in self.terms)  # type: ignore[union-attr]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash(("Atom", self.relation, self.terms))

    def __repr__(self) -> str:
        return f"Atom({self})"

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)\s*$")
_VARIABLE_RE = re.compile(r"^[a-z][A-Za-z_0-9]*$")
_NUMBER_RE = re.compile(r"^-?\d+$")


def parse_term(text: str) -> Term:
    """Parse a single term.

    Lower-case identifiers are variables; quoted strings, numbers and
    capitalized identifiers are constants (the usual datalog convention).
    """
    text = text.strip()
    if not text:
        raise ParseError("empty term")
    if (text.startswith('"') and text.endswith('"')) or (
        text.startswith("'") and text.endswith("'")
    ):
        return Constant(text[1:-1])
    if _NUMBER_RE.match(text):
        return Constant(int(text))
    if _VARIABLE_RE.match(text):
        return Variable(text)
    return Constant(text)


def parse_atom(text: str) -> Atom:
    """Parse ``"R(x, 'a', 3)"`` into an :class:`Atom`."""
    match = _ATOM_RE.match(text)
    if not match:
        raise ParseError(f"cannot parse atom {text!r}")
    relation, arguments = match.group(1), match.group(2).strip()
    if not arguments:
        return Atom(relation, ())
    terms = [parse_term(part) for part in arguments.split(",")]
    return Atom(relation, terms)


def fresh_variables(count: int, prefix: str = "v") -> list[Variable]:
    """Generate ``count`` distinct variables ``v0, v1, ...``."""
    return [Variable(f"{prefix}{i}") for i in range(count)]


def unify_ground(atom: Atom, values: tuple, assignment: Dict[Variable, Any]) -> Dict[Variable, Any] | None:
    """Try to extend ``assignment`` so that ``atom`` matches the ground ``values``.

    Returns the extended assignment, or ``None`` when the match fails.  Used
    by conjunctive-query evaluation and datalog grounding.
    """
    if len(values) != atom.arity:
        return None
    extended = dict(assignment)
    for term, value in zip(atom.terms, values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
    return extended


_UNBOUND = object()
