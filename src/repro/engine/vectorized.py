"""Whole-column (vectorized) query execution over columnar K-relations.

The pipelined engine of :mod:`repro.engine.compile` still runs a Python
loop per row; this module evaluates the same positive-algebra plans one
**column** at a time instead, MonetDB-style, on ``numpy`` arrays:

* a scan reads the per-attribute value arrays and the parallel annotation
  array straight out of a :class:`~repro.relations.storage.ColumnarRowStore`
  (object arrays for attribute columns; ``int64``/``float64``/``bool`` for
  the annotations of the vectorizable semirings);
* a selection compiles its structured predicate to a boolean mask;
* a join factorizes the shared key columns to integer codes, sorts the
  build side once, finds every probe row's bucket with two binary searches
  (``searchsorted``) and expands the matching (build, probe) index pairs
  without a Python-level loop; annotations multiply array-at-a-time;
* projections and unions group rows by integer-coded keys and combine all
  annotation contributions per output group with a single ``ufunc.at``
  scatter -- the batched ``+``-chain of :func:`~repro.engine.kernels.
  accumulate_batches`, performed by the ufunc inner loop;
* canonical :class:`~repro.relations.tuples.Tup` objects are rebuilt only
  for the final result rows.

**Exactness.**  Only semirings whose carrier maps losslessly onto a numpy
dtype are vectorized -- N and Z (``int64``, with explicit overflow guards
that fall back to the scalar engine rather than wrap), Tropical, Fuzzy and
Viterbi (``float64``; min/max/+/* on IEEE doubles are bit-identical to the
scalar ``float`` path), and B (``bool``).  Their ``+`` is commutative *and*
order-insensitive on the carrier (sums of ints, min/max of floats, or of
bools), so regrouping contributions per output tuple yields exactly the
annotations the row-at-a-time engines produce; the differential harnesses
in ``tests/engine`` assert this.  Everything else -- polynomials, circuits,
event sets, ``N-inf`` -- and every plan shape this module does not cover
(opaque predicates, non-total comparisons) falls back to the row engine,
which works on either storage backend.

Dispatch is by ``semiring.name``, so the annotation-identical
:class:`~repro.obs.semiring.InstrumentedSemiring` wrapper also takes the
vectorized path -- its per-op counters then see only the residual scalar
work, which is precisely the point: ``BENCH_*.json`` op counts attribute
the columnar speedup to Python-level semiring calls that no longer happen.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.operators import validate_rename
from repro.algebra.predicates import (
    AttrEquals,
    AttrEqualsConst,
    AttrNotEqualsConst,
    BasePredicate,
    ComparisonPredicate,
    Conjunction,
    Disjunction,
    FalsePredicate,
    Negation,
    TruePredicate,
)
from repro.errors import SchemaError
from repro.obs import trace as _trace
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.storage import ColumnarRowStore
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring

try:  # pragma: no cover - exercised implicitly by every vectorized test
    import numpy as _np
except ImportError:  # pragma: no cover - CI images without numpy
    _np = None

__all__ = [
    "numpy_available",
    "vector_ops_for",
    "try_execute",
    "try_join",
    "try_project",
    "ColumnEncoder",
    "fire_linear_join",
]

#: Magnitude bound for int64 vector arithmetic: if ``|a|.max * |b|.max`` or
#: ``count * |v|.max`` can exceed this, the operation falls back to the
#: scalar engine instead of risking silent wraparound.  Python's unbounded
#: ints make the guard itself exact.
_INT64_GUARD = 1 << 62


def numpy_available() -> bool:
    """Whether the vectorized kernels can run at all."""
    return _np is not None


class _Fallback(Exception):
    """Internal: this plan/instance cannot be vectorized exactly; use rows."""


# ---------------------------------------------------------------------------
# Vector-level semiring arithmetic
# ---------------------------------------------------------------------------


class VectorOps:
    """Array-at-a-time ``(+, ., 0)`` for one numeric carrier.

    ``to_array`` lifts a sequence of carrier values; ``mul`` multiplies two
    annotation arrays elementwise; ``accumulate`` combines all contributions
    landing in the same output group with the semiring's ``+`` (one
    ``ufunc.at`` scatter); ``zero_mask`` flags groups that summed to the
    semiring zero (possible under Z's cancellation); ``to_python`` lowers a
    numpy scalar back to the exact carrier type the scalar engine uses.
    """

    name = "abstract"

    def to_array(self, values: Iterable[Any]):
        raise NotImplementedError

    def mul(self, a, b):
        raise NotImplementedError

    def accumulate(self, values, group_ids, n_groups):
        raise NotImplementedError

    def zero_mask(self, totals):
        raise NotImplementedError

    def to_python(self, value) -> Any:
        raise NotImplementedError


class _IntSumOps(VectorOps):
    """N and Z: ``int64`` arrays with exact overflow guards."""

    def __init__(self, name: str):
        self.name = name

    def to_array(self, values):
        try:
            return _np.array(list(values), dtype=_np.int64)
        except (OverflowError, TypeError, ValueError):
            raise _Fallback from None

    def mul(self, a, b):
        if len(a):
            bound = int(_np.abs(a).max()) * int(_np.abs(b).max())
            if bound > _INT64_GUARD:
                raise _Fallback
        return a * b

    def accumulate(self, values, group_ids, n_groups):
        if len(values):
            bound = len(values) * int(_np.abs(values).max())
            if bound > _INT64_GUARD:
                raise _Fallback
        totals = _np.zeros(n_groups, dtype=_np.int64)
        _np.add.at(totals, group_ids, values)
        return totals

    def zero_mask(self, totals):
        return totals == 0

    def to_python(self, value) -> int:
        return int(value)


class _FloatOps(VectorOps):
    """Tropical / Fuzzy / Viterbi: ``float64`` min/max/+/* (IEEE-exact)."""

    def __init__(self, name: str, add_ufunc, mul_kind: str, zero: float):
        self.name = name
        self._add_ufunc = add_ufunc  # np.minimum or np.maximum
        self._mul_kind = mul_kind  # "sum" (tropical) | "min" | "product"
        self._zero = zero

    def to_array(self, values):
        try:
            return _np.array(list(values), dtype=_np.float64)
        except (TypeError, ValueError):
            raise _Fallback from None

    def mul(self, a, b):
        if self._mul_kind == "sum":
            return a + b
        if self._mul_kind == "min":
            return _np.minimum(a, b)
        return a * b

    def accumulate(self, values, group_ids, n_groups):
        totals = _np.full(n_groups, self._zero, dtype=_np.float64)
        self._add_ufunc.at(totals, group_ids, values)
        return totals

    def zero_mask(self, totals):
        return totals == self._zero

    def to_python(self, value) -> float:
        return float(value)


class _BoolOps(VectorOps):
    """B: boolean arrays, ``+`` = or, ``.`` = and."""

    name = "B"

    def to_array(self, values):
        return _np.array([bool(v) for v in values], dtype=bool)

    def mul(self, a, b):
        return a & b

    def accumulate(self, values, group_ids, n_groups):
        totals = _np.zeros(n_groups, dtype=bool)
        _np.logical_or.at(totals, group_ids, values)
        return totals

    def zero_mask(self, totals):
        return ~totals

    def to_python(self, value) -> bool:
        return bool(value)


def _build_ops_table() -> Dict[str, VectorOps]:
    if _np is None:
        return {}
    return {
        "N": _IntSumOps("N"),
        "Z": _IntSumOps("Z"),
        "Tropical": _FloatOps("Tropical", _np.minimum, "sum", float("inf")),
        "Fuzzy": _FloatOps("Fuzzy", _np.maximum, "min", 0.0),
        "Viterbi": _FloatOps("Viterbi", _np.maximum, "product", 0.0),
        "B": _BoolOps(),
    }


_OPS_BY_NAME: Dict[str, VectorOps] = _build_ops_table()


def vector_ops_for(semiring: Semiring) -> VectorOps | None:
    """The vector arithmetic for ``semiring``, or ``None`` when unavailable.

    Dispatch is by name so the annotation-identical instrumented wrapper
    (:class:`repro.obs.semiring.InstrumentedSemiring`) vectorizes exactly
    like the semiring it wraps.  Checked against the runtime at call time
    (not just import time) so every vectorized entry point declines
    together when numpy is unavailable.
    """
    if _np is None:
        return None
    return _OPS_BY_NAME.get(semiring.name)


# ---------------------------------------------------------------------------
# Column batches
# ---------------------------------------------------------------------------


class _Col:
    """A dictionary-encoded column: dense ``int64`` codes into an alphabet.

    ``uniques`` is the (small) object array of distinct values the column
    has ever held; ``codes[i]`` indexes into it.  Every structural
    operation -- join key matching, group-by, equality masks -- runs on the
    integer codes; the actual values are gathered back (``uniques[codes]``)
    only when the final result materializes.
    """

    __slots__ = ("codes", "uniques")

    def __init__(self, codes, uniques):
        self.codes = codes
        self.uniques = uniques

    def take(self, index) -> "_Col":
        return _Col(self.codes[index], self.uniques)

    def values(self):
        return self.uniques[self.codes]


class _Batch:
    """An intermediate result: named encoded columns + an annotation array.

    Rows are unique by construction (scans read a finite-support map;
    grouping operators re-unique), so joins never need a dedup pass.
    ``display`` tracks the attribute order the operator-at-a-time path
    would have displayed -- equality of K-relations ignores it, but the
    final schema should still read naturally.
    """

    __slots__ = ("display", "columns", "ann")

    def __init__(self, display: Tuple[str, ...], columns: Dict[str, _Col], ann):
        self.display = display
        self.columns = columns
        self.ann = ann

    def __len__(self) -> int:
        return len(self.ann)


def _object_array(values: list):
    """A 1-D object array holding ``values`` verbatim (no nested broadcast)."""
    array = _np.empty(len(values), dtype=object)
    array[:] = values
    return array


def _encode_column(values) -> _Col:
    """Dictionary-encode a raw value sequence with a hash table.

    Hash-based interning matches the dict-equality grouping of the row
    engines exactly (no reliance on a total order over the domain).
    """
    table: Dict[Any, int] = {}
    alphabet: list = []
    codes = _np.empty(len(values), dtype=_np.int64)
    for i, value in enumerate(values):
        code = table.get(value)
        if code is None:
            code = len(alphabet)
            table[value] = code
            alphabet.append(value)
        codes[i] = code
    return _Col(codes, _object_array(alphabet))


def _scan_batch(relation: KRelation, ops: VectorOps) -> _Batch:
    """Lift a relation into an encoded column batch.

    For columnar stores the encoding (and the lifted annotation array) is
    cached on the store keyed by its mutation version, so the semi-naive
    fixpoint rounds and repeated queries re-scan for free.
    """
    store = relation._store
    display = tuple(relation.schema.attributes)
    if isinstance(store, ColumnarRowStore):
        cache = getattr(store, "_vec_cache", None)
        if cache is not None and cache[0] == store.version:
            columns, ann_values = cache[1], cache[2]
        else:
            columns = {
                attribute: _encode_column(column)
                for attribute, column in zip(store.attributes, store.columns)
            }
            ann_values = list(store.annotations)
            store._vec_cache = (store.version, columns, ann_values)
        return _Batch(display, dict(columns), ops.to_array(ann_values))
    attributes = tuple(sorted(relation.schema.attribute_set))
    raw: list[list] = [[] for _ in attributes]
    annotations: list = []
    for tup, annotation in store.items():
        for bucket, (_, value) in zip(raw, tup._items):
            bucket.append(value)
        annotations.append(annotation)
    columns = {a: _encode_column(bucket) for a, bucket in zip(attributes, raw)}
    return _Batch(display, columns, ops.to_array(annotations))


def _align(left: _Col, right: _Col) -> Tuple[Any, Any, int]:
    """Re-code two columns into one shared alphabet: ``(lcodes, rcodes, size)``.

    Only the (small) alphabets are touched with Python-level hashing; the
    code arrays remap with one fancy-index gather each.
    """
    table: Dict[Any, int] = {}
    left_map = _np.empty(len(left.uniques), dtype=_np.int64)
    for i, value in enumerate(left.uniques):
        left_map[i] = table.setdefault(value, len(table))
    right_map = _np.empty(len(right.uniques), dtype=_np.int64)
    for i, value in enumerate(right.uniques):
        right_map[i] = table.setdefault(value, len(table))
    size = len(table)
    lcodes = left_map[left.codes] if len(left.codes) else left.codes
    rcodes = right_map[right.codes] if len(right.codes) else right.codes
    return lcodes, rcodes, size


def _merged_col(left: _Col, right: _Col) -> _Col:
    """The concatenation of two columns over their shared alphabet."""
    table: Dict[Any, int] = {}
    alphabet: list = []
    left_map = _np.empty(len(left.uniques), dtype=_np.int64)
    for i, value in enumerate(left.uniques):
        code = table.get(value)
        if code is None:
            code = len(alphabet)
            table[value] = code
            alphabet.append(value)
        left_map[i] = code
    right_map = _np.empty(len(right.uniques), dtype=_np.int64)
    for i, value in enumerate(right.uniques):
        code = table.get(value)
        if code is None:
            code = len(alphabet)
            table[value] = code
            alphabet.append(value)
        right_map[i] = code
    codes = _np.concatenate(
        [
            left_map[left.codes] if len(left.codes) else left.codes,
            right_map[right.codes] if len(right.codes) else right.codes,
        ]
    )
    return _Col(codes, _object_array(alphabet))


def _combine_codes(columns: list) -> Any:
    """Mixed-radix combination of several columns' codes into one row code."""
    combined = None
    radix = 1
    for column in columns:
        size = max(len(column.uniques), 1)
        if combined is None:
            combined, radix = column.codes, size
        else:
            if radix * size > _INT64_GUARD:
                raise _Fallback
            combined = combined * size + column.codes
            radix *= size
    return combined


def _group(batch: _Batch, keep: Tuple[str, ...], display: Tuple[str, ...], ops: VectorOps) -> _Batch:
    """Group rows by the ``keep`` columns, accumulating annotations per group."""
    n = len(batch)
    if n == 0:
        return _Batch(display, {a: batch.columns[a] for a in keep}, batch.ann)
    codes = _combine_codes([batch.columns[a] for a in keep])
    _, first_index, inverse = _np.unique(
        codes, return_index=True, return_inverse=True
    )
    totals = ops.accumulate(batch.ann, inverse, len(first_index))
    alive = ~ops.zero_mask(totals)
    representative = first_index[alive]
    columns = {a: batch.columns[a].take(representative) for a in keep}
    return _Batch(display, columns, totals[alive])


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def _select_batch(batch: _Batch, predicate: Any, ops: VectorOps) -> _Batch:
    mask = _predicate_mask(predicate, batch)
    columns = {a: column.take(mask) for a, column in batch.columns.items()}
    return _Batch(batch.display, columns, batch.ann[mask])


def _const_mask(column: _Col, constant: Any):
    """Rows whose value equals ``constant``: one compare per *distinct* value."""
    flags = _np.fromiter(
        (bool(u == constant) for u in column.uniques),
        dtype=bool,
        count=len(column.uniques),
    )
    return flags[column.codes]


def _predicate_mask(predicate: Any, batch: _Batch):
    """A boolean keep-mask for a structured, total predicate.

    Mirrors the row-level truthiness of :mod:`repro.algebra.predicates`,
    evaluated on the column alphabets (tiny) and gathered out to rows;
    anything outside the supported repertoire was already rejected by
    :func:`_plan_supported`, so reaching the final branch is a bug guard.
    """
    n = len(batch)
    if isinstance(predicate, TruePredicate):
        return _np.ones(n, dtype=bool)
    if isinstance(predicate, FalsePredicate):
        return _np.zeros(n, dtype=bool)
    if isinstance(predicate, AttrEquals):
        lcodes, rcodes, _ = _align(
            batch.columns[predicate.left], batch.columns[predicate.right]
        )
        return lcodes == rcodes
    if isinstance(predicate, AttrEqualsConst):
        return _const_mask(batch.columns[predicate.attribute], predicate.constant)
    if isinstance(predicate, AttrNotEqualsConst):
        return ~_const_mask(batch.columns[predicate.attribute], predicate.constant)
    if isinstance(predicate, ComparisonPredicate):
        column = batch.columns[predicate.attribute]
        if predicate.operator == "==":
            return _const_mask(column, predicate.value)
        if predicate.operator == "!=":
            return ~_const_mask(column, predicate.value)
        raise _Fallback  # non-total comparisons never vectorize
    if isinstance(predicate, Conjunction):
        mask = _np.ones(n, dtype=bool)
        for part in predicate.parts:
            mask &= _predicate_mask(part, batch)
        return mask
    if isinstance(predicate, Disjunction):
        mask = _np.zeros(n, dtype=bool)
        for part in predicate.parts:
            mask |= _predicate_mask(part, batch)
        return mask
    if isinstance(predicate, Negation):
        return ~_predicate_mask(predicate.inner, batch)
    raise _Fallback


def _project_batch(batch: _Batch, attributes: Tuple[str, ...], ops: VectorOps) -> _Batch:
    missing = [a for a in attributes if a not in batch.columns]
    if missing:
        raise SchemaError(
            f"cannot project on unknown attributes {sorted(missing)}"
        )
    keep = tuple(dict.fromkeys(attributes))
    return _group(batch, keep, tuple(attributes), ops)


def _join_batches(left: _Batch, right: _Batch, ops: VectorOps) -> _Batch:
    shared = sorted(set(left.columns) & set(right.columns))
    extras = tuple(a for a in right.display if a not in left.columns)
    display = left.display + extras
    n_left, n_right = len(left), len(right)

    if not shared:
        left_index = _np.repeat(_np.arange(n_left), n_right)
        right_index = _np.tile(_np.arange(n_right), n_left)
    else:
        # Re-code each shared attribute over BOTH sides' alphabets at once
        # so the integer codes are comparable across the join, then combine
        # per-attribute codes into one mixed-radix row code per side.
        left_codes = right_codes = None
        radix = 1
        for attribute in shared:
            lcodes, rcodes, size = _align(
                left.columns[attribute], right.columns[attribute]
            )
            size = max(size, 1)
            if left_codes is None:
                left_codes, right_codes, radix = lcodes, rcodes, size
            else:
                if radix * size > _INT64_GUARD:
                    raise _Fallback
                left_codes = left_codes * size + lcodes
                right_codes = right_codes * size + rcodes
                radix *= size

        if n_left <= n_right:
            build_codes, probe_codes, build_is_left = left_codes, right_codes, True
        else:
            build_codes, probe_codes, build_is_left = right_codes, left_codes, False
        order = _np.argsort(build_codes, kind="stable")
        sorted_codes = build_codes[order]
        lo = _np.searchsorted(sorted_codes, probe_codes, side="left")
        hi = _np.searchsorted(sorted_codes, probe_codes, side="right")
        counts = hi - lo
        total = int(counts.sum())
        probe_index = _np.repeat(_np.arange(len(probe_codes)), counts)
        exclusive = _np.cumsum(counts) - counts
        offsets = _np.arange(total) - _np.repeat(exclusive, counts)
        build_index = order[_np.repeat(lo, counts) + offsets]
        if build_is_left:
            left_index, right_index = build_index, probe_index
        else:
            left_index, right_index = probe_index, build_index

    ann = ops.mul(left.ann[left_index], right.ann[right_index])
    columns = {a: column.take(left_index) for a, column in left.columns.items()}
    for attribute in extras:
        columns[attribute] = right.columns[attribute].take(right_index)
    return _Batch(display, columns, ann)


def _union_batches(left: _Batch, right: _Batch, ops: VectorOps) -> _Batch:
    if set(left.columns) != set(right.columns):
        raise SchemaError(
            f"union requires identical attribute sets: "
            f"{sorted(left.columns)} vs {sorted(right.columns)}"
        )
    columns = {
        a: _merged_col(column, right.columns[a])
        for a, column in left.columns.items()
    }
    ann = _np.concatenate([left.ann, right.ann])
    merged = _Batch(left.display, columns, ann)
    return _group(merged, tuple(sorted(columns)), left.display, ops)


def _rename_batch(batch: _Batch, mapping: Dict[str, str]) -> _Batch:
    validate_rename(mapping, tuple(batch.columns))
    columns = {mapping.get(a, a): column for a, column in batch.columns.items()}
    display = tuple(mapping.get(a, a) for a in batch.display)
    return _Batch(display, columns, batch.ann)


# ---------------------------------------------------------------------------
# Semi-naive round batching
# ---------------------------------------------------------------------------


class ColumnEncoder:
    """Incremental dictionary encoder for an append-only value stream.

    The semi-naive engine's per-predicate stores only ever *grow* during a
    fixpoint run, so each round extends the encoding with the new suffix
    instead of re-encoding the whole column (:meth:`extend` is the only
    Python-level per-value work; :meth:`column` is a C-level array build).
    Unhashable values raise ``TypeError`` out of :meth:`extend` -- callers
    fall back to the row engine.
    """

    __slots__ = ("_table", "_alphabet", "_codes")

    def __init__(self):
        self._table: Dict[Any, int] = {}
        self._alphabet: list = []
        self._codes: list = []

    def __len__(self) -> int:
        return len(self._codes)

    def extend(self, values: Iterable[Any]) -> None:
        table, alphabet, codes = self._table, self._alphabet, self._codes
        for value in values:
            code = table.get(value)
            if code is None:
                code = len(alphabet)
                table[value] = code
                alphabet.append(value)
            codes.append(code)

    def column(self) -> _Col:
        return _Col(
            _np.array(self._codes, dtype=_np.int64), _object_array(self._alphabet)
        )


def fire_linear_join(
    ops: VectorOps,
    probe_cols: Dict[Any, _Col],
    probe_ann,
    build_cols: Dict[Any, _Col],
    build_ann,
    key: list,
    head: list,
    emit: Dict[tuple, list],
) -> bool:
    """One whole-column semi-naive firing: delta ⋈ stored, grouped per head.

    ``probe_*`` hold the round's delta rows, ``build_*`` the full stored
    relation of the single non-driver atom; ``key`` lists the
    ``(probe key, build key)`` column pairs to equi-join on and ``head``
    lists ``("p" | "b", key)`` sources for each head position.  Matching
    pairs are found with the sorted-build / binary-search probe of
    :func:`_join_batches`, annotations multiply array-at-a-time, and all
    contributions to the same head tuple are combined with one ``ufunc.at``
    scatter -- the batched accumulation of ``_merge``, performed before the
    contributions ever become Python objects.  One grouped total per head
    tuple is appended to ``emit`` (exact for these order-insensitive
    carriers).  Returns ``False`` when an instance guard trips and the row
    path should run instead.
    """
    if _np is None:
        return False
    try:
        if len(probe_ann) == 0 or len(build_ann) == 0:
            return True
        pcodes = bcodes = None
        radix = 1
        for probe_key, build_key in key:
            lcodes, rcodes, size = _align(probe_cols[probe_key], build_cols[build_key])
            size = max(size, 1)
            if pcodes is None:
                pcodes, bcodes, radix = lcodes, rcodes, size
            else:
                if radix * size > _INT64_GUARD:
                    raise _Fallback
                pcodes = pcodes * size + lcodes
                bcodes = bcodes * size + rcodes
                radix *= size

        if pcodes is None:  # no shared variables: cross product
            n_probe, n_build = len(probe_ann), len(build_ann)
            probe_index = _np.repeat(_np.arange(n_probe), n_build)
            build_index = _np.tile(_np.arange(n_build), n_probe)
        else:
            order = _np.argsort(bcodes, kind="stable")
            sorted_codes = bcodes[order]
            lo = _np.searchsorted(sorted_codes, pcodes, side="left")
            hi = _np.searchsorted(sorted_codes, pcodes, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                return True
            probe_index = _np.repeat(_np.arange(len(pcodes)), counts)
            exclusive = _np.cumsum(counts) - counts
            offsets = _np.arange(total) - _np.repeat(exclusive, counts)
            build_index = order[_np.repeat(lo, counts) + offsets]

        ann = ops.mul(probe_ann[probe_index], build_ann[build_index])
        out_cols = [
            probe_cols[k].take(probe_index)
            if side == "p"
            else build_cols[k].take(build_index)
            for side, k in head
        ]
        combined = _combine_codes(out_cols)
        _, first_index, inverse = _np.unique(
            combined, return_index=True, return_inverse=True
        )
        totals = ops.accumulate(ann, inverse, len(first_index))
        # Zero totals are emitted too: the row path hands every combined
        # batch to merge_delta, which owns the stored-zero invariant.
        representatives = [
            col.uniques[col.codes[first_index]].tolist() for col in out_cols
        ]
        for row, value in zip(zip(*representatives), totals.tolist()):
            batch = emit.get(row)
            if batch is None:
                emit[row] = [value]
            else:
                batch.append(value)
        return True
    except _Fallback:
        return False


# ---------------------------------------------------------------------------
# Plan evaluation
# ---------------------------------------------------------------------------


def _predicate_supported(predicate: Any) -> bool:
    """Whether a predicate vectorizes *exactly*.

    Only total predicates qualify: ordering comparisons can raise on
    mixed-type values and the row engines evaluate conjunctions with
    short-circuiting, so a mask-at-a-time evaluation of a non-total part
    could raise where the scalar path would not.  Opaque callables are
    unanalyzable by definition.
    """
    if isinstance(
        predicate,
        (TruePredicate, FalsePredicate, AttrEquals, AttrEqualsConst, AttrNotEqualsConst),
    ):
        return True
    if isinstance(predicate, ComparisonPredicate):
        return predicate.operator in ("==", "!=")
    if isinstance(predicate, (Conjunction, Disjunction)):
        return all(_predicate_supported(part) for part in predicate.parts)
    if isinstance(predicate, Negation):
        return _predicate_supported(predicate.inner)
    return False


def _plan_supported(query: Query) -> bool:
    if isinstance(query, (RelationRef, EmptyRelation)):
        return True
    if isinstance(query, Select):
        return _predicate_supported(query.predicate) and _plan_supported(query.child)
    if isinstance(query, (Project, Rename)):
        return _plan_supported(query.child)
    if isinstance(query, (Join, Union)):
        return _plan_supported(query.left) and _plan_supported(query.right)
    return False


def _evaluate(query: Query, database: Database, ops: VectorOps) -> _Batch:
    if isinstance(query, RelationRef):
        return _scan_batch(database.relation(query.name), ops)
    if isinstance(query, EmptyRelation):
        display = tuple(query.schema.attributes)
        columns = {
            a: _Col(_np.zeros(0, dtype=_np.int64), _object_array([]))
            for a in display
        }
        return _Batch(display, columns, ops.to_array([]))
    if isinstance(query, Select):
        return _select_batch(_evaluate(query.child, database, ops), query.predicate, ops)
    if isinstance(query, Project):
        return _project_batch(
            _evaluate(query.child, database, ops), tuple(query.attributes), ops
        )
    if isinstance(query, Rename):
        return _rename_batch(_evaluate(query.child, database, ops), query.mapping)
    if isinstance(query, Join):
        return _join_batches(
            _evaluate(query.left, database, ops),
            _evaluate(query.right, database, ops),
            ops,
        )
    if isinstance(query, Union):
        return _union_batches(
            _evaluate(query.left, database, ops),
            _evaluate(query.right, database, ops),
            ops,
        )
    raise _Fallback


def _materialize(
    batch: _Batch, semiring: Semiring, ops: VectorOps, storage: str
) -> KRelation:
    """Build the final K-relation: the only per-row Python loop of a plan."""
    # Multiplication can reach the semiring zero on the float carriers
    # (overflow to inf under Tropical, underflow to 0.0 under Viterbi);
    # the row engines drop such rows when they accumulate, so drop them
    # here before storing -- zero is never stored (Definition 3.1).
    dead = ops.zero_mask(batch.ann)
    if dead.any():
        alive = ~dead
        batch = _Batch(
            batch.display,
            {a: column.take(alive) for a, column in batch.columns.items()},
            batch.ann[alive],
        )
    result = KRelation(semiring, Schema(batch.display), storage=storage)
    store = result._store
    attributes = tuple(sorted(batch.display))
    # One C-level gather per column decodes it; .tolist() lowers numpy
    # scalars to the exact Python carrier types the scalar engine uses
    # (int64 -> int, float64 -> float, bool_ -> bool).
    value_lists = [batch.columns[a].values().tolist() for a in attributes]
    annotations = batch.ann.tolist()
    from_sorted = Tup._from_sorted_items
    # Pre-pair each column with its attribute name once, so the per-row
    # work is a single zip(*) step yielding ready-made sorted item tuples.
    paired = [
        [(attribute, value) for value in values]
        for attribute, values in zip(attributes, value_lists)
    ]
    tuples = [from_sorted(row) for row in zip(*paired)]
    if isinstance(store, ColumnarRowStore):
        store.extend_rows(tuples, value_lists, annotations)
    else:
        for tup, annotation in zip(tuples, annotations):
            store.set(tup, annotation)
    return result


def try_execute(
    query: Query, database: Database, *, storage: str = "columnar"
) -> KRelation | None:
    """Evaluate ``query`` column-at-a-time, or ``None`` to use the row engine.

    Returns ``None`` when numpy is missing, the semiring has no exact
    vector arithmetic, the plan contains an unsupported shape, or an
    instance-level guard (int64 overflow, uncodable columns) trips
    mid-evaluation.  Never partially mutates anything -- evaluation is
    read-only until the final materialization.
    """
    if _np is None:
        return None
    ops = vector_ops_for(database.semiring)
    if ops is None or not _plan_supported(query):
        return None
    try:
        if not _trace.enabled():
            batch = _evaluate(query, database, ops)
            return _materialize(batch, database.semiring, ops, storage)
        with _trace.span(
            "engine.vectorized", semiring=database.semiring.name
        ) as span:
            batch = _evaluate(query, database, ops)
            result = _materialize(batch, database.semiring, ops, storage)
            span.set(out_rows=len(result))
            return result
    except _Fallback:
        return None


# ---------------------------------------------------------------------------
# Relation-level kernels (for views and datalog merge paths)
# ---------------------------------------------------------------------------


def _relation_ops(*relations: KRelation) -> VectorOps | None:
    """Vector ops when every input is columnar and the semiring vectorizes."""
    if _np is None:
        return None
    if any(not isinstance(r._store, ColumnarRowStore) for r in relations):
        return None
    return vector_ops_for(relations[0].semiring)


def try_join(left: KRelation, right: KRelation) -> KRelation | None:
    """Vectorized natural join of two columnar relations (or ``None``)."""
    ops = _relation_ops(left, right)
    if ops is None:
        return None
    try:
        batch = _join_batches(
            _scan_batch(left, ops), _scan_batch(right, ops), ops
        )
        schema = left.schema.join(right.schema)
        batch.display = tuple(schema.attributes)
        return _materialize(batch, left.semiring, ops, "columnar")
    except _Fallback:
        return None


def try_project(relation: KRelation, attributes: Iterable[str]) -> KRelation | None:
    """Vectorized projection of a columnar relation (or ``None``)."""
    attributes = tuple(attributes)
    ops = _relation_ops(relation)
    if ops is None:
        return None
    try:
        batch = _project_batch(_scan_batch(relation, ops), attributes, ops)
        return _materialize(batch, relation.semiring, ops, "columnar")
    except _Fallback:
        return None


def try_merge_contributions(
    semiring: Semiring, contributions: Dict[Any, list]
) -> Dict[Any, Any] | None:
    """Array-at-a-time accumulation of per-key contribution batches.

    The partition-parallel merge step: each key's batch (one contribution
    per partition that produced the tuple) is combined with the semiring's
    ``+`` in a single grouped scatter, and keys that sum to zero are
    dropped -- the vectorized counterpart of
    :func:`repro.engine.kernels.accumulate_batches`.

    Runs behind the same ``_INT64_GUARD`` as every other int64 kernel:
    per-partition partial sums can *individually* sit under the guard yet
    overflow int64 when added together here, so ``accumulate`` re-checks
    ``len(values) * max|value|`` against the bound and this function
    returns ``None`` (caller falls back to exact Python-int arithmetic)
    instead of risking silent wraparound at the merge.  Also ``None`` when
    numpy or vector arithmetic for the semiring is unavailable.
    """
    ops = vector_ops_for(semiring)
    if ops is None:
        return None
    keys: list = []
    values: list = []
    group_ids: list = []
    for key, batch in contributions.items():
        group = len(keys)
        keys.append(key)
        values.extend(batch)
        group_ids.extend([group] * len(batch))
    if not keys:
        return {}
    try:
        lifted = ops.to_array(values)
        totals = ops.accumulate(
            lifted, _np.array(group_ids, dtype=_np.int64), len(keys)
        )
    except _Fallback:
        return None
    zeros = ops.zero_mask(totals)
    return {
        key: ops.to_python(total)
        for key, total, is_zero in zip(keys, totals, zeros)
        if not is_zero
    }
