"""Shared physical operator kernels over K-relations.

The three hot paths of the system -- ad-hoc query evaluation
(:mod:`repro.engine.compile`), materialized-view delta propagation
(:mod:`repro.incremental.view`), and the semi-naive datalog rounds
(:mod:`repro.datalog.seminaive`) -- all reduce to the same two primitives:

* **hash join** with cost-driven build-side selection: the smaller input is
  loaded into a bucket index on the shared attributes and the larger one
  probes it, so the work is proportional to the joinable pairs;
* **batched annotation accumulation**: contributions to the same output
  tuple are collected first and combined with *one* ``+``-chain per tuple
  (:func:`combine_contributions`), instead of interleaving a semiring
  ``add`` and an ``is_zero`` test per input pair.  For cheap annotations
  (``B``, ``N``) this trims per-pair overhead; for heavy ones (polynomials,
  circuits, event sets) it also performs a single zero test per output
  tuple, which is where most of the win comes from.

Everything here works positionally: a relation's tuples are flattened once
into plain value tuples in sorted-attribute order (the order
:class:`~repro.relations.tuples.Tup` stores internally), all per-row work
happens on those value tuples, and canonical :class:`Tup` objects are
rebuilt only for the final output.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.errors import QueryError
from repro.obs import trace as _trace
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring

__all__ = [
    "combine_contributions",
    "accumulate_batches",
    "relation_rows",
    "build_relation",
    "hash_join_rows",
    "join_relations",
    "project_relation",
]


def combine_contributions(semiring: Semiring, values: Iterable[Any]) -> Any:
    """One ``+``-chain over a non-empty batch of contributions.

    Left-folds without a zero seed, so the result is bit-for-bit what the
    per-pair accumulation of :meth:`KRelation._accumulate` would have
    produced -- important for representation-sensitive semirings (circuit
    DAG shapes, polynomial term orders) that the differential harnesses
    compare structurally.
    """
    iterator = iter(values)
    total = next(iterator)
    add = semiring.add
    for value in iterator:
        total = add(total, value)
    return total


def accumulate_batches(
    semiring: Semiring, groups: Dict[Any, List[Any]]
) -> Dict[Any, Any]:
    """Combine per-key contribution batches, dropping keys that sum to zero."""
    out: Dict[Any, Any] = {}
    is_zero = semiring.is_zero
    for key, values in groups.items():
        total = values[0] if len(values) == 1 else combine_contributions(semiring, values)
        if not is_zero(total):
            out[key] = total
    return out


def relation_rows(relation: KRelation) -> Tuple[Tuple[str, ...], List[Tuple[tuple, Any]]]:
    """Flatten a relation to ``(sorted attrs, [(value row, annotation), ...])``.

    Rows come out in sorted-attribute order, read straight off each tuple's
    internal sorted item list -- no per-attribute lookups.
    """
    attrs = tuple(sorted(relation.schema.attribute_set))
    rows = [
        (tuple(value for _, value in tup.items()), annotation)
        for tup, annotation in relation.items()
    ]
    return attrs, rows


def build_relation(
    semiring: Semiring,
    attrs: Tuple[str, ...],
    groups: Dict[tuple, List[Any]],
    schema: Schema | None = None,
    storage: Any = None,
) -> KRelation:
    """Materialize accumulated row batches into a :class:`KRelation`.

    ``attrs`` names the positions of the row keys in ``groups``; ``schema``
    fixes the display order of the result (default: ``attrs`` as given);
    ``storage`` selects the result's physical backend (default: the
    process-wide ``REPRO_STORAGE`` setting).
    """
    result = KRelation(
        semiring, schema if schema is not None else Schema(attrs), storage=storage
    )
    order = sorted(range(len(attrs)), key=attrs.__getitem__)
    store = result._store
    for row, value in accumulate_batches(semiring, groups).items():
        items = tuple((attrs[i], row[i]) for i in order)
        store.set(Tup._from_sorted_items(items), value)
    return result


def _counted(rows: Iterable[Tuple[tuple, Any]], stats: Any) -> Iterable[Tuple[tuple, Any]]:
    """Count probe rows as they stream past (only used in observed mode)."""
    for item in rows:
        stats.probe_size += 1
        yield item


def hash_join_rows(
    mul: Callable[[Any, Any], Any],
    left_rows: Iterable[Tuple[tuple, Any]],
    right_rows: Iterable[Tuple[tuple, Any]],
    left_key: Tuple[int, ...],
    right_key: Tuple[int, ...],
    right_extra: Tuple[int, ...],
    build_is_left: bool,
    stats: Any = None,
) -> Iterable[Tuple[tuple, Any]]:
    """The shared hash-join probe loop on positional rows.

    Loads the designated build side into a bucket index on its key
    positions, streams the probe side against it, and yields
    ``(natural row, annotation)`` pairs where the natural row is the left
    row followed by the right side's ``right_extra`` columns and the
    annotation is ``left . right`` (Definition 3.2) regardless of which
    side was indexed.  When the build side is empty the probe side is never
    consumed.  Both the relation-level kernel (:func:`join_relations`) and
    the pipelined plan compiler's join node delegate here, so the join
    semantics live in exactly one place.

    ``stats``, when given, is an object with ``build_size`` / ``probe_size``
    counters (see :class:`repro.obs.explain.NodeStats`); the build size is
    recorded once the index is loaded and probe rows are counted as they
    stream through.  The default ``None`` keeps the loop unobserved.
    """
    if build_is_left:
        build_rows, build_key = left_rows, left_key
        probe_rows, probe_key = right_rows, right_key
    else:
        build_rows, build_key = right_rows, right_key
        probe_rows, probe_key = left_rows, left_key

    index: Dict[tuple, list] = {}
    for row, annotation in build_rows:
        index.setdefault(tuple(row[i] for i in build_key), []).append(
            (row, annotation)
        )
    if stats is not None:
        stats.build_size += sum(len(bucket) for bucket in index.values())
        probe_rows = _counted(probe_rows, stats)
    if not index:
        return

    for probe_row, probe_annotation in probe_rows:
        bucket = index.get(tuple(probe_row[i] for i in probe_key))
        if bucket is None:
            continue
        for build_row, build_annotation in bucket:
            if build_is_left:
                yield build_row + tuple(
                    probe_row[i] for i in right_extra
                ), mul(build_annotation, probe_annotation)
            else:
                yield probe_row + tuple(
                    build_row[i] for i in right_extra
                ), mul(probe_annotation, build_annotation)


def join_relations(left: KRelation, right: KRelation) -> KRelation:
    """Natural-join kernel: cost-driven build side, batched accumulation.

    Annotation semantics are Definition 3.2's ``left . right`` regardless of
    which side is indexed.  Equivalent to :func:`repro.algebra.operators.join`
    but works on positional value rows (no intermediate :class:`Tup`
    construction) and combines duplicate-output contributions with one
    ``+``-chain per output tuple.
    """
    if not _trace.enabled():
        return _join_relations(left, right)
    with _trace.span(
        "kernel.join", left_rows=len(left), right_rows=len(right)
    ) as sp:
        result = _join_relations(left, right)
        sp.set(out_rows=len(result))
        return result


def _shared_storage(*relations: KRelation) -> str | None:
    """The backend kernel outputs should use: columnar only when all inputs are."""
    if all(r.storage == "columnar" for r in relations):
        return "columnar"
    return None  # defer to the process-wide default


def _join_relations(left: KRelation, right: KRelation) -> KRelation:
    if left.semiring.name != right.semiring.name:
        raise QueryError(
            f"cannot combine relations over different semirings "
            f"({left.semiring.name} vs {right.semiring.name})"
        )
    semiring = left.semiring
    result_schema = left.schema.join(right.schema)
    out_storage = _shared_storage(left, right)
    if not left or not right:
        return KRelation(semiring, result_schema, storage=out_storage)

    if out_storage == "columnar":
        from repro.engine import vectorized

        result = vectorized.try_join(left, right)
        if result is not None:
            return result

    left_attrs, left_rows = relation_rows(left)
    right_attrs, right_rows = relation_rows(right)
    left_set = set(left_attrs)
    shared = sorted(left_set & set(right_attrs))
    left_key = tuple(left_attrs.index(a) for a in shared)
    right_key = tuple(right_attrs.index(a) for a in shared)
    extra_positions = tuple(
        i for i, a in enumerate(right_attrs) if a not in left_set
    )
    out_attrs = left_attrs + tuple(right_attrs[i] for i in extra_positions)

    groups: Dict[tuple, List[Any]] = {}
    for out_row, value in hash_join_rows(
        semiring.mul,
        left_rows,
        right_rows,
        left_key,
        right_key,
        extra_positions,
        build_is_left=len(left_rows) <= len(right_rows),
    ):
        batch = groups.get(out_row)
        if batch is None:
            groups[out_row] = [value]
        else:
            batch.append(value)
    return build_relation(semiring, out_attrs, groups, result_schema, storage=out_storage)


def project_relation(relation: KRelation, attributes: Iterable[str]) -> KRelation:
    """Projection kernel with batched accumulation of merged tuples."""
    if not _trace.enabled():
        return _project_relation(relation, attributes)
    with _trace.span("kernel.project", in_rows=len(relation)) as sp:
        result = _project_relation(relation, attributes)
        sp.set(out_rows=len(result))
        return result


def _project_relation(relation: KRelation, attributes: Iterable[str]) -> KRelation:
    target_schema = relation.schema.project(attributes)
    out_storage = _shared_storage(relation)
    if out_storage == "columnar":
        from repro.engine import vectorized

        result = vectorized.try_project(relation, tuple(target_schema.attributes))
        if result is not None:
            return result
    attrs, rows = relation_rows(relation)
    keep = tuple(attrs.index(a) for a in sorted(target_schema.attribute_set))
    out_attrs = tuple(attrs[i] for i in keep)
    groups: Dict[tuple, List[Any]] = {}
    for row, annotation in rows:
        key = tuple(row[i] for i in keep)
        batch = groups.get(key)
        if batch is None:
            groups[key] = [annotation]
        else:
            batch.append(annotation)
    return build_relation(
        relation.semiring, out_attrs, groups, target_schema, storage=out_storage
    )
