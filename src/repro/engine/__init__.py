"""Physical execution engine: pipelined kernels for optimized plans.

The logical layers -- the PR 4 planner, materialized views, the semi-naive
datalog engine -- all produce *plans*; this package is where plans become
machine work.  :mod:`repro.engine.compile` turns any positive-algebra query
into a tree of pipelined operators (fused scan-select-project, hash join
with cost-driven build-side selection, streaming union) with one batched
annotation-accumulation pipeline breaker at the root, and
:mod:`repro.engine.kernels` exposes the underlying relation-level kernels
shared with view maintenance and the datalog delta rounds.

Entry points::

    result = Q.relation("R").join(Q.relation("S")).evaluate(
        db, optimize=True, executor="pipelined"
    )

    from repro.engine import execute
    result = execute(plan, db)          # the same, on a prepared plan
"""

from repro.engine.compile import compile_query, execute
from repro.engine.kernels import (
    accumulate_batches,
    combine_contributions,
    join_relations,
    project_relation,
)

__all__ = [
    "compile_query",
    "execute",
    "accumulate_batches",
    "combine_contributions",
    "join_relations",
    "project_relation",
]
