"""Compile positive-algebra plans into pipelined physical operators.

The logical operators of Definition 3.2 (and of the PR 4 planner's output)
evaluate operator-at-a-time in :mod:`repro.algebra.operators`: every node
materializes a full intermediate :class:`~repro.relations.krelation.KRelation`,
building a canonical :class:`~repro.relations.tuples.Tup` and running a
semiring ``add``/``is_zero`` round-trip per intermediate tuple.  This module
compiles the same plans into a tree of **pipelined kernels** instead:

* rows are plain value tuples in a fixed positional order; canonical
  ``Tup`` objects exist only in the base relations and in the final result;
* ``select``/``project``/``rename`` **fuse** into the producing operator --
  a selection over a scan becomes a predicate compiled to positional row
  slots and evaluated inside the scan loop, a projection becomes an output
  column map, a rename is free (labels only);
* ``join`` is a hash join whose **build side is chosen by estimated
  cardinality** (exact for scans, propagated through operators with
  textbook default selectivities), with the fused residual predicates and
  the output column map applied directly in the probe loop;
* annotations of duplicate output rows are accumulated **batched** at the
  single pipeline breaker (the result materialization): contributions are
  grouped per output row and combined with one ``+``-chain and one zero
  test per row (:func:`repro.engine.kernels.accumulate_batches`).

The compiled plan evaluates to the same K-relation as the operator-at-a-time
path, annotation for annotation, over every commutative semiring -- all the
reassociation this streaming evaluation performs is justified by
associativity, commutativity and distributivity alone.  Only the display
order of attributes may differ (the named perspective is order-free).  The
differential harness in ``tests/engine`` drives this equivalence over
randomized plans and all registered semirings, circuits included.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import (
    AttrEquals,
    AttrEqualsConst,
    AttrNotEqualsConst,
    BasePredicate,
    ComparisonPredicate,
    Conjunction,
    Disjunction,
    FalsePredicate,
    Negation,
    TruePredicate,
    describe_predicate,
)
from repro.algebra.operators import validate_rename
from repro.engine.kernels import build_relation, hash_join_rows
from repro.errors import QueryError, SchemaError
from repro.obs import trace as _trace
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["compile_query", "execute", "drain", "resolve_execution_storage"]

#: Selectivity assumed for a fused predicate when sizing join build sides
#: (mirrors the planner's :data:`repro.planner.cost.DEFAULT_SELECTIVITY`).
_FILTER_SELECTIVITY = 1.0 / 3.0

Row = tuple
Filter = Callable[[Row], Any]


class _Node:
    """One physical operator plus its fused select/project/rename envelope.

    ``natural_attrs`` names the columns of the raw rows the operator
    produces; ``filters`` run against those raw rows; ``out_positions``
    (``None`` = identity) maps raw rows to output rows and ``attrs`` names
    the output columns (renames change only the names).  ``estimate`` is the
    compile-time output-cardinality estimate driving build-side selection.

    ``observer`` is the per-execution observability hook
    (:class:`repro.obs.explain.ExecutionObserver`): ``None`` in ordinary
    runs (the only cost is one attribute check per *operator*, never per
    row), set by ``explain(analyze=True)`` to collect actual rows, wall
    time and semiring-op counts per node.  ``filter_labels`` keeps the
    human-readable form of each fused predicate for plan rendering.
    """

    __slots__ = (
        "natural_attrs",
        "attrs",
        "out_positions",
        "filters",
        "estimate",
        "observer",
        "filter_labels",
    )

    def __init__(self, natural_attrs: Tuple[str, ...], estimate: float):
        self.natural_attrs = natural_attrs
        self.attrs = natural_attrs
        self.out_positions: Tuple[int, ...] | None = None
        self.filters: List[Filter] = []
        self.estimate = estimate
        self.observer = None
        self.filter_labels: List[str] = []

    # -- envelope -------------------------------------------------------------
    def natural_position(self, attribute: str) -> int | None:
        """The raw-row slot currently visible under output name ``attribute``."""
        try:
            output_index = self.attrs.index(attribute)
        except ValueError:
            return None
        if self.out_positions is None:
            return output_index
        return self.out_positions[output_index]

    def visible_slots(self) -> Tuple[Tuple[str, int], ...]:
        """(output name, raw-row slot) pairs for the current output columns."""
        if self.out_positions is None:
            return tuple((name, i) for i, name in enumerate(self.attrs))
        return tuple(zip(self.attrs, self.out_positions))

    def produce(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        """Raw rows of the operator (before filters and the column map)."""
        raise NotImplementedError

    def rows(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        """Output rows: raw rows through the fused envelope.

        With an observer attached the stream is wrapped to record per-node
        output cardinality and cumulative wall time; otherwise the iterator
        is returned untouched (no per-row observability cost).
        """
        iterator = self._envelope_rows(database)
        observer = self.observer
        if observer is None:
            return iterator
        return observer.observe_rows(self, iterator)

    def _envelope_rows(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        filters = tuple(self.filters)
        out = self.out_positions
        if not filters and out is None:
            # Nothing fused onto this operator: skip the envelope entirely
            # (the common shape for scans feeding a join after pushdown).
            yield from self.produce(database)
            return
        semiring = database.semiring
        zero, one = semiring.zero(), semiring.one()
        mul = semiring.mul
        is_zero = semiring.is_zero
        for row, annotation in self.produce(database):
            keep = True
            for predicate in filters:
                outcome = predicate(row)
                if outcome is True:
                    continue
                if outcome is False:
                    keep = False
                    break
                # Semiring-valued {0, 1} outcome (Definition 3.2 allows it).
                if outcome == zero or outcome == one:
                    annotation = mul(annotation, outcome)
                    if is_zero(annotation):
                        keep = False
                        break
                else:
                    raise QueryError(
                        f"selection predicate returned {outcome!r}, "
                        "expected a {0, 1} value"
                    )
            if not keep:
                continue
            if out is not None:
                row = tuple(row[i] for i in out)
            yield row, annotation


class _Scan(_Node):
    """A base-relation scan emitting positional rows in sorted-attr order."""

    __slots__ = ("name",)

    def __init__(self, name: str, attrs: Tuple[str, ...], estimate: float):
        super().__init__(attrs, estimate)
        self.name = name

    def produce(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        for tup, annotation in database.relation(self.name).items():
            yield tuple(value for _, value in tup.items()), annotation


class _Empty(_Node):
    """The empty relation: no rows, fixed schema."""

    __slots__ = ()

    def produce(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        return iter(())


class _HashJoin(_Node):
    """Hash join: build the cheaper side, probe with the other.

    The children's *output* rows are joined on their shared attributes;
    residual predicates and the output column map fused onto this node run
    inside the probe loop.
    """

    __slots__ = (
        "left",
        "right",
        "left_key",
        "right_key",
        "right_extra",
        "build_is_left",
    )

    def __init__(self, left: _Node, right: _Node):
        shared = sorted(set(left.attrs) & set(right.attrs))
        left_attr_set = set(left.attrs)
        self.left = left
        self.right = right
        self.left_key = tuple(left.attrs.index(a) for a in shared)
        self.right_key = tuple(right.attrs.index(a) for a in shared)
        self.right_extra = tuple(
            i for i, a in enumerate(right.attrs) if a not in left_attr_set
        )
        natural = left.attrs + tuple(right.attrs[i] for i in self.right_extra)
        if shared:
            estimate = max(left.estimate, right.estimate)
        else:
            estimate = left.estimate * right.estimate
        super().__init__(natural, estimate)
        self.build_is_left = left.estimate <= right.estimate

    def produce(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        mul = database.semiring.mul
        observer = self.observer
        stats = None
        if observer is not None:
            mul = observer.counted_mul(self, mul)
            stats = observer.join_stats(self)
        yield from hash_join_rows(
            mul,
            self.left.rows(database),
            self.right.rows(database),
            self.left_key,
            self.right_key,
            self.right_extra,
            self.build_is_left,
            stats=stats,
        )


class _UnionAll(_Node):
    """Stream both sides; the right side's columns are permuted to the left's."""

    __slots__ = ("left", "right", "right_permutation")

    def __init__(self, left: _Node, right: _Node):
        if set(left.attrs) != set(right.attrs):
            raise SchemaError(
                f"union requires identical attribute sets: "
                f"{left.attrs} vs {right.attrs}"
            )
        super().__init__(left.attrs, left.estimate + right.estimate)
        self.left = left
        self.right = right
        permutation = tuple(right.attrs.index(a) for a in left.attrs)
        self.right_permutation = (
            None if permutation == tuple(range(len(permutation))) else permutation
        )

    def produce(self, database: Database) -> Iterator[Tuple[Row, Any]]:
        yield from self.left.rows(database)
        permutation = self.right_permutation
        if permutation is None:
            yield from self.right.rows(database)
            return
        for row, annotation in self.right.rows(database):
            yield tuple(row[i] for i in permutation), annotation


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------


def _tup_fallback_filter(predicate: Callable[[Tup], Any], node: _Node) -> Filter:
    """Evaluate ``predicate`` on a reconstructed canonical tuple.

    The slow path: opaque callables (and structured predicates naming
    attributes the compiler cannot resolve) see exactly the tuple the
    operator-at-a-time evaluator would have handed them -- the node's
    current *output* columns -- so behaviour, including raised errors,
    matches the naive executor.
    """
    slots = sorted(node.visible_slots())

    def evaluate(row: Row) -> Any:
        return predicate(
            Tup._from_sorted_items(tuple((name, row[i]) for name, i in slots))
        )

    return evaluate


def _compile_predicate(predicate: Callable[[Tup], Any], node: _Node) -> Filter:
    """Compile a selection predicate to a positional row filter.

    Structured predicates (:mod:`repro.algebra.predicates`) compile to slot
    lookups; anything else falls back to :func:`_tup_fallback_filter`.
    Boolean combinators mirror the truthiness semantics of the structured
    predicate classes themselves (``Conjunction.__call__`` uses ``all``).
    """
    if isinstance(predicate, TruePredicate):
        return lambda row: True
    if isinstance(predicate, FalsePredicate):
        return lambda row: False
    if isinstance(predicate, AttrEquals):
        left = node.natural_position(predicate.left)
        right = node.natural_position(predicate.right)
        if left is None or right is None:
            return _tup_fallback_filter(predicate, node)
        return lambda row: row[left] == row[right]
    if isinstance(predicate, AttrEqualsConst):
        slot = node.natural_position(predicate.attribute)
        if slot is None:
            return _tup_fallback_filter(predicate, node)
        constant = predicate.constant
        return lambda row: row[slot] == constant
    if isinstance(predicate, AttrNotEqualsConst):
        slot = node.natural_position(predicate.attribute)
        if slot is None:
            return _tup_fallback_filter(predicate, node)
        constant = predicate.constant
        return lambda row: row[slot] != constant
    if isinstance(predicate, ComparisonPredicate):
        slot = node.natural_position(predicate.attribute)
        if slot is None:
            return _tup_fallback_filter(predicate, node)
        compare, value = predicate._compare, predicate.value
        return lambda row: compare(row[slot], value)
    if isinstance(predicate, Conjunction):
        parts = [_compile_predicate(part, node) for part in predicate.parts]
        return lambda row: all(part(row) for part in parts)
    if isinstance(predicate, Disjunction):
        parts = [_compile_predicate(part, node) for part in predicate.parts]
        return lambda row: any(part(row) for part in parts)
    if isinstance(predicate, Negation):
        inner = _compile_predicate(predicate.inner, node)
        return lambda row: not inner(row)
    if isinstance(predicate, BasePredicate):
        return _tup_fallback_filter(predicate, node)
    # Plain callable: opaque, evaluated on a reconstructed tuple.
    return _tup_fallback_filter(predicate, node)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


def compile_query(query: Query, database: Database) -> _Node:
    """Compile a logical plan into a pipelined physical operator tree."""
    if isinstance(query, RelationRef):
        relation = database.relation(query.name)
        attrs = tuple(sorted(relation.schema.attribute_set))
        return _Scan(query.name, attrs, float(len(relation)))
    if isinstance(query, EmptyRelation):
        return _Empty(tuple(sorted(query.schema.attribute_set)), 0.0)
    if isinstance(query, Select):
        node = compile_query(query.child, database)
        node.filters.append(_compile_predicate(query.predicate, node))
        node.filter_labels.append(describe_predicate(query.predicate))
        node.estimate *= _FILTER_SELECTIVITY
        return node
    if isinstance(query, Project):
        node = compile_query(query.child, database)
        positions = []
        for attribute in query.attributes:
            slot = node.natural_position(attribute)
            if slot is None:
                raise SchemaError(
                    f"cannot project on unknown attributes "
                    f"[{attribute!r}] of {node.attrs}"
                )
            positions.append(slot)
        node.out_positions = tuple(positions)
        node.attrs = tuple(query.attributes)
        return node
    if isinstance(query, Rename):
        node = compile_query(query.child, database)
        validate_rename(query.mapping, node.attrs)
        node.attrs = tuple(query.mapping.get(a, a) for a in node.attrs)
        return node
    if isinstance(query, Join):
        return _HashJoin(
            compile_query(query.left, database),
            compile_query(query.right, database),
        )
    if isinstance(query, Union):
        return _UnionAll(
            compile_query(query.left, database),
            compile_query(query.right, database),
        )
    raise QueryError(
        f"cannot compile query node {type(query).__name__}; the pipelined "
        "executor covers the positive algebra of Definition 3.2"
    )


def resolve_execution_storage(storage: Any, database: Database) -> str:
    """The storage backend a plan execution should target.

    Explicit ``storage=`` wins; then the ``REPRO_STORAGE`` environment
    variable; finally the database itself -- when every base relation is
    already columnar, results stay columnar (and the vectorized engine
    engages) without any configuration.
    """
    import os

    from repro.relations.storage import STORAGE_ENV, resolve_storage_kind

    if storage is not None:
        return resolve_storage_kind(storage)
    if os.environ.get(STORAGE_ENV):
        return resolve_storage_kind(None)
    relations = [relation for _, relation in database.items()]
    if relations and all(r.storage == "columnar" for r in relations):
        return "columnar"
    return "row"


def execute(query: Query, database: Database, *, storage: Any = None) -> KRelation:
    """Compile ``query`` and run it pipelined against ``database``.

    When the resolved storage backend is columnar, the whole-column
    engine (:mod:`repro.engine.vectorized`) is tried first: supported plan
    shapes over vectorizable semirings evaluate array-at-a-time with no
    per-row Python dispatch.  Anything it declines falls through to the
    row pipeline below, which runs on either backend.

    The row path's single pipeline breaker: all output rows are drained
    into per-row contribution batches, combined with one ``+``-chain each,
    and materialized as a K-relation (the stored-zero invariant of
    Definition 3.1 is enforced by the batch combiner).
    """
    kind = resolve_execution_storage(storage, database)
    if kind == "columnar":
        from repro.engine import vectorized

        result = vectorized.try_execute(query, database, storage=kind)
        if result is not None:
            return result
    if not _trace.enabled():
        root = compile_query(query, database)
        return drain(root, database, storage=kind)
    with _trace.span("engine.compile"):
        root = compile_query(query, database)
    with _trace.span("engine.execute", semiring=database.semiring.name) as sp:
        result = drain(root, database, storage=kind)
        sp.set(out_rows=len(result))
        return result


def drain(root: _Node, database: Database, *, storage: Any = None) -> KRelation:
    """Run a compiled plan to completion: the single pipeline breaker."""
    groups: Dict[tuple, List[Any]] = {}
    for row, annotation in root.rows(database):
        batch = groups.get(row)
        if batch is None:
            groups[row] = [annotation]
        else:
            batch.append(annotation)
    return build_relation(database.semiring, root.attrs, groups, storage=storage)
