"""Worker-process configuration: ship the parent's *effective* settings.

A worker started with the ``spawn`` method re-imports :mod:`repro` from
scratch, so anything the parent configured *programmatically* -- tracing
enabled via :func:`repro.obs.trace.enable`, a storage default set after
import, a monkeypatched ``REPRO_DEBUG_TUPLES`` flag -- would silently
diverge if workers only inherited environment variables.  The executor
therefore captures the parent's **resolved** state once
(:func:`capture_worker_config`) and replays it in every worker's pool
initializer (:func:`apply_worker_config`), so that
``resolve_storage_kind(None)``, tuple debug checking and trace emission
agree across the whole pool regardless of how the parent was configured.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "WorkerConfig",
    "capture_worker_config",
    "apply_worker_config",
    "PARALLEL_ENV",
    "PARALLEL_START_ENV",
]

#: Environment variable enabling parallel execution process-wide
#: (``0``/unset = serial, an integer = worker count, ``auto`` = cpu count).
PARALLEL_ENV = "REPRO_PARALLEL"

#: Environment variable overriding the multiprocessing start method used by
#: the pool (``fork``, ``spawn`` or ``forkserver``; unset = platform default).
PARALLEL_START_ENV = "REPRO_PARALLEL_START"


@dataclass(frozen=True)
class WorkerConfig:
    """The parent-resolved settings every worker must agree on.

    ``storage_kind`` is the parent's ``resolve_storage_kind(None)`` --
    the *effective* default backend, not the raw environment variable;
    ``debug_tuples`` is the live ``repro.relations.tuples._DEBUG_TUPLES``
    flag; ``trace_target`` is the trace sink destination (``"stderr"`` or a
    JSONL path) when the parent has tracing enabled, else ``None``.
    """

    storage_kind: str
    debug_tuples: bool
    trace_target: str | None


def capture_worker_config() -> WorkerConfig:
    """Snapshot the parent process's effective configuration."""
    from repro.obs import trace
    from repro.relations import tuples
    from repro.relations.storage import resolve_storage_kind

    trace_target = None
    if trace.enabled():
        trace_target = os.environ.get("REPRO_TRACE") or "stderr"
    return WorkerConfig(
        storage_kind=resolve_storage_kind(None),
        debug_tuples=tuples._DEBUG_TUPLES,
        trace_target=trace_target,
    )


def apply_worker_config(config: WorkerConfig) -> None:
    """Replay a captured :class:`WorkerConfig` inside a worker process.

    Sets both the module state (so already-imported code sees the change)
    and the environment (so any further child processes inherit it).
    """
    from repro.obs import trace
    from repro.relations import tuples
    from repro.relations.storage import STORAGE_ENV

    os.environ[STORAGE_ENV] = config.storage_kind
    os.environ["REPRO_DEBUG_TUPLES"] = "1" if config.debug_tuples else ""
    tuples._DEBUG_TUPLES = config.debug_tuples
    if config.trace_target and not trace.enabled():
        from repro.obs import sinks

        if config.trace_target.strip().lower() == "stderr":
            trace.enable(sinks.StderrSink())
        else:
            trace.enable(sinks.JsonlSink(config.trace_target))
        os.environ["REPRO_TRACE"] = config.trace_target
