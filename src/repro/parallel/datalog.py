"""Partition-parallel semi-naive datalog rounds.

The parent process keeps the **authoritative** engine -- stores, indexes,
and the one place annotations are merged -- and uses the pool only to fire
join plans over partitions of each round's delta:

* the program and database are **broadcast** once; every worker builds an
  identical engine (plan compilation is deterministic in ``(program,
  database)``, so plans are addressed by index) whose stores hold only the
  broadcast EDB state;
* a plan is **remote-safe** when every non-driver body atom is extensional:
  its probes only touch the broadcast (immutable during the run) EDB
  stores.  Rules that probe IDB state -- the nonlinear transitive-closure
  rule, for instance -- fire locally in the parent against its live stores;
* per remote-safe plan and round, :func:`~repro.planner.cost.choose_partitions`
  decides between **repartitioning** the delta across the pool and firing
  locally against the broadcast state (small deltas never amortize the
  shipping);
* delta rows are shipped together with their annotations (the worker's
  engine never holds derived state -- see ``_fire``'s
  ``driver_annotations``); seed partitions ship row *indexes* into the
  broadcast EDB stores;
* workers return raw contribution maps; the parent folds them into the
  round's output and runs its ordinary ``_merge`` -- one ``+``-chain per
  head tuple, identical to the serial engine's accumulation discipline.

Collect mode (non-idempotent semirings record rule instantiations) and
semirings without a canonical, picklable carrier decline through the same
chokepoint as everything else (:func:`~repro.parallel.merge.parallel_merge_ops`)
and the caller falls back to :meth:`_SemiNaiveEngine.run`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import DivergenceError, SerializationError
from repro.obs import trace as _trace
from repro.parallel.executor import ParallelExecutor, shared_executor
from repro.parallel.merge import parallel_merge_ops
from repro.parallel.partition import partition_indexes, partition_rows
from repro.parallel.worker import run_datalog_tasks
from repro.planner.cost import choose_partitions

__all__ = ["run_engine_parallel"]


def _remote_safe(plan, edb: set) -> bool:
    """Whether ``plan`` may fire in a worker -- and whether it is worth it.

    Besides the EDB-only probe requirement, step-less plans (pure copies,
    ``Q(x) :- R(x)``) never fan out: they do no join work per row, so
    shipping the rows -- and their full annotations back -- costs strictly
    more than firing locally.
    """
    return (
        plan.driver is not None
        and bool(plan.steps)
        and all(step.predicate in edb for step in plan.steps)
    )


def _dispatch(executor: ParallelExecutor, token: str, blob: bytes, tasks: List[tuple], out) -> None:
    """Ship a round's task batch and fold the workers' contributions into ``out``.

    Tasks are dealt round-robin over at most ``executor.workers`` calls so
    partitions of the same plan land on different workers; results are
    folded in submission order (irrelevant for the order-insensitive
    carriers the chokepoint admits, but it keeps runs reproducible).
    """
    if not tasks:
        return
    fanout = min(executor.workers, len(tasks))
    buckets = [tasks[i::fanout] for i in range(fanout)]
    with _trace.span(
        "parallel.worker", kind="datalog", tasks=len(tasks), fanout=fanout
    ):
        results = executor.run_tasks(
            run_datalog_tasks, [(token, blob, bucket) for bucket in buckets]
        )
    for result in results:
        for predicate, emit in result.items():
            destination = out[predicate]
            for head, batch in emit.items():
                existing = destination.get(head)
                if existing is None:
                    destination[head] = batch
                else:
                    existing.extend(batch)


def run_engine_parallel(
    engine, *, max_iterations: int, parallel: Any
) -> Optional[int]:
    """Run ``engine``'s fixpoint with partition-parallel rounds.

    Drop-in for :meth:`_SemiNaiveEngine.run`: same store mutations, same
    round accounting, same divergence behaviour.  Returns the round count,
    or ``None`` to decline (collect mode, a semiring outside the parallel
    whitelist, a program with no remote-safe plan, an unshippable database)
    -- the caller then runs the ordinary serial loop on the same, still
    untouched, engine.
    """
    if engine.collect:
        return None
    if not parallel_merge_ops(engine.semiring):
        return None
    if isinstance(parallel, ParallelExecutor):
        executor = parallel
    else:
        workers = int(parallel)
        if workers < 1:
            return None
        executor = None

    edb = set(engine.program.edb_predicates)
    remote_seed = {
        i for i, plan in enumerate(engine.seed_plans) if _remote_safe(plan, edb)
    }
    remote_delta = {
        predicate: {i for i, plan in enumerate(plans) if _remote_safe(plan, edb)}
        for predicate, plans in engine.delta_plans.items()
    }
    if not remote_seed and not any(remote_delta.values()):
        return None  # nothing could ever fan out (e.g. all rules nonlinear)

    if executor is None:
        executor = shared_executor(workers)
    try:
        token, blob = executor.broadcast(
            (engine.program, engine.database, engine.maintain_edb, engine.storage_kind)
        )
    except SerializationError:
        return None

    pool = executor.workers

    # -- seed round --------------------------------------------------------------
    with _trace.span(
        "datalog.seed", mode="annotate", plans=len(engine.seed_plans), parallel=pool
    ) as sp:
        out = engine._fresh()
        tasks: List[tuple] = []
        with _trace.span("parallel.partition", round=1):
            for index, plan in enumerate(engine.seed_plans):
                rows = engine.stores[plan.driver.predicate].rows
                if index in remote_seed:
                    decision = choose_partitions(len(rows), pool)
                    if decision.partitions > 1:
                        for part in partition_indexes(
                            rows, decision.partitions, key=lambda row: row[0]
                        ):
                            if part:
                                tasks.append(("seed", index, part))
                        continue
                engine._fire(plan, rows, out)
        _dispatch(executor, token, blob, tasks, out)
        with _trace.span("parallel.merge"):
            delta = engine._merge(out)
        if _trace.enabled():
            sp.set(delta_rows=sum(len(rows) for rows in delta.values()))
    iterations = 1

    # -- delta rounds ------------------------------------------------------------
    while any(delta.values()):
        if iterations >= max_iterations:
            raise DivergenceError(
                f"datalog evaluation over {engine.database.semiring.name} did not "
                f"converge within {max_iterations} iterations"
            )
        iterations += 1
        with _trace.span("datalog.round", round=iterations, parallel=pool):
            out = engine._fresh()
            tasks = []
            with _trace.span("parallel.partition", round=iterations):
                for predicate, rows in delta.items():
                    if not rows:
                        continue
                    annotated: Optional[List[Tuple[tuple, Any]]] = None
                    for index, plan in enumerate(engine.delta_plans[predicate]):
                        if index in remote_delta.get(predicate, ()):
                            decision = choose_partitions(len(rows), pool)
                            if decision.partitions > 1:
                                if annotated is None:
                                    stored = engine.stores[
                                        predicate
                                    ].relation._annotations
                                    annotated = [
                                        (row, stored[row[1]]) for row in rows
                                    ]
                                for part in partition_rows(
                                    annotated,
                                    decision.partitions,
                                    key=lambda pair: pair[0][0],
                                ):
                                    if part:
                                        tasks.append(
                                            (
                                                "delta",
                                                predicate,
                                                index,
                                                [row for row, _ in part],
                                                [value for _, value in part],
                                            )
                                        )
                                continue
                        engine._fire(plan, rows, out)
            _dispatch(executor, token, blob, tasks, out)
            with _trace.span("parallel.merge"):
                delta = engine._merge(out)
    return iterations
