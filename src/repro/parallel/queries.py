"""Partition-parallel evaluation of positive-algebra queries.

The strategy is textbook shared-nothing: pick one base relation as the
**driver**, hash-partition it on its join key, broadcast every other
relation, evaluate the unchanged plan over each partition in a worker
process, and merge the partial K-relations with one ``+``-chain per output
tuple.  Exactness rides on Proposition 3.4 (``+`` associative/commutative
in any commutative semiring) plus a *linearity* condition on how the driver
occurs in the plan -- every derivation of an output tuple must consume
exactly one driver row, so the partials' contribution multisets partition
the serial one:

* the driver relation is referenced **exactly once** in the plan (a
  self-join consumes two driver rows per output, so relations referenced
  twice never drive);
* on the path from the driver to the root, joins are fine (the other side
  is replicated), but a **union with a replicated branch** is not: summing
  ``R ∪ S_i`` over ``n`` partitions counts ``R`` ``n`` times.  The status
  analysis (:func:`_partition_status`) propagates partitioned/replicated
  labels bottom-up and requires the root to be *partitioned*.

Anything that fails these checks -- or a semiring that declines
:func:`~repro.parallel.merge.parallel_merge_ops`, or a plan whose pickled
payload cannot cross a process boundary (opaque predicate closures) --
returns ``None`` and the caller falls back to the serial executor.
"""

from __future__ import annotations

import collections
from typing import Any, Dict, List, Optional

from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.errors import SerializationError
from repro.obs import trace as _trace
from repro.parallel.executor import ParallelExecutor, shared_executor
from repro.parallel.merge import merge_relations, parallel_merge_ops
from repro.parallel.partition import partition_rows
from repro.planner.cost import choose_partitions
from repro.planner.plans import catalog_of, infer_attributes
from repro.relations.database import Database
from repro.relations.krelation import KRelation

__all__ = ["execute_query_parallel"]

_PARTITIONED, _REPLICATED, _ANY, _INVALID = "partitioned", "replicated", "any", "invalid"


def _reference_counts(query: Query) -> Dict[str, int]:
    counts: Dict[str, int] = collections.Counter()
    stack = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, RelationRef):
            counts[node.name] += 1
        stack.extend(node.children())
    return dict(counts)


def _partition_status(node: Query, driver: RelationRef) -> str:
    """Bottom-up partitioned/replicated labelling relative to ``driver``.

    ``any`` is the empty relation's label (it merges with either side --
    the result is empty regardless of replication).  ``invalid`` marks
    shapes whose per-partition sum differs from the serial result.
    """
    if node is driver:
        return _PARTITIONED
    if isinstance(node, RelationRef):
        return _REPLICATED
    if isinstance(node, EmptyRelation):
        return _ANY
    if isinstance(node, (Project, Select, Rename)):
        return _partition_status(node.child, driver)
    if isinstance(node, Join):
        left = _partition_status(node.left, driver)
        right = _partition_status(node.right, driver)
        if _INVALID in (left, right):
            return _INVALID
        if _PARTITIONED in (left, right):
            # Join(partitioned, partitioned) cannot occur: the driver is
            # referenced exactly once, so at most one side is partitioned.
            return _PARTITIONED
        return _ANY if left == right == _ANY else _REPLICATED
    if isinstance(node, Union):
        left = _partition_status(node.left, driver)
        right = _partition_status(node.right, driver)
        if _INVALID in (left, right):
            return _INVALID
        if _PARTITIONED in (left, right):
            other = right if left == _PARTITIONED else left
            # Union with a replicated branch replicates that branch's
            # annotations into every partial: n partials sum to n * branch.
            return _PARTITIONED if other == _ANY else _INVALID
        return _ANY if left == right == _ANY else _REPLICATED
    return _INVALID  # unknown operator: stay serial


def _find_reference(query: Query, name: str) -> Optional[RelationRef]:
    stack = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, RelationRef) and node.name == name:
            return node
        stack.extend(node.children())
    return None


def _join_key_attributes(
    query: Query, driver: RelationRef, database: Database
) -> Optional[List[str]]:
    """The driver-side attributes of the driver's nearest enclosing join.

    Walks the root-to-driver path for the innermost :class:`Join` above the
    driver and intersects its two children's inferred schemas.  Returns the
    shared attributes when they all exist on the driver's own schema (no
    rename between driver and join), else ``None`` -- the partitioner then
    hashes whole rows, which is equally exact, just blind to join locality.
    """

    def path_to(node: Query) -> Optional[List[Query]]:
        if node is driver:
            return [node]
        for child in node.children():
            tail = path_to(child)
            if tail is not None:
                return [node] + tail
        return None

    path = path_to(query)
    if path is None:  # pragma: no cover - driver always found
        return None
    catalog = catalog_of(database)
    for node in reversed(path[:-1]):
        if isinstance(node, Join):
            left = infer_attributes(node.left, catalog)
            right = infer_attributes(node.right, catalog)
            if left is None or right is None:
                return None
            shared = sorted(set(left) & set(right))
            schema_attrs = set(database.relation(driver.name).schema.attributes)
            if shared and set(shared) <= schema_attrs:
                return shared
            return None
    return None


def execute_query_parallel(
    query: Query,
    database: Database,
    *,
    parallel: Any,
    storage: Any = None,
) -> Optional[KRelation]:
    """Evaluate ``query`` partition-parallel, or ``None`` to decline.

    ``parallel`` is a resolved worker count (>= 1) or a
    :class:`~repro.parallel.executor.ParallelExecutor` to reuse.  The
    result, when not declined, is annotation-identical to the serial
    executors (the differential suite in ``tests/parallel`` checks this
    across semirings, storage backends and worker counts).
    """
    semiring = database.semiring
    if not parallel_merge_ops(semiring):
        return None
    if isinstance(parallel, ParallelExecutor):
        executor = parallel
    else:
        workers = int(parallel)
        if workers < 1:
            return None
        executor = None  # created lazily, only once a fan-out is worthwhile

    counts = _reference_counts(query)
    candidates = [
        name
        for name, count in counts.items()
        if count == 1 and name in database
    ]
    # Largest relation first: the driver is the table worth splitting.
    candidates.sort(key=lambda name: -len(database.relation(name)))

    driver = None
    for name in candidates:
        reference = _find_reference(query, name)
        if reference is not None and _partition_status(query, reference) == _PARTITIONED:
            driver = reference
            break
    if driver is None:
        return None

    driver_relation = database.relation(driver.name)
    max_workers = executor.workers if executor is not None else workers
    decision = choose_partitions(len(driver_relation), max_workers)
    if decision.partitions <= 1:
        return None
    if executor is None:
        executor = shared_executor(workers)

    from repro.engine.compile import resolve_execution_storage

    storage_kind = resolve_execution_storage(storage, database)
    needed = query.relation_names()
    rest = {
        name: database.relation(name)
        for name in needed
        if name != driver.name and name in database
    }
    try:
        token, blob = executor.broadcast(
            (query, semiring, driver.name, rest, storage_kind)
        )
    except SerializationError:
        return None

    key_attributes = _join_key_attributes(query, driver, database)
    with _trace.span(
        "parallel.partition",
        relation=driver.name,
        partitions=decision.partitions,
        rows=len(driver_relation),
        key=",".join(key_attributes) if key_attributes else "<row>",
    ):
        if key_attributes:
            key = lambda item: tuple(item[0][a] for a in key_attributes)
        else:
            key = lambda item: item[0]
        parts = partition_rows(list(driver_relation.items()), decision.partitions, key)
        payloads = []
        for part in parts:
            partition = KRelation(
                semiring, driver_relation.schema, storage=driver_relation.storage
            )
            partition.merge_delta(part)
            payloads.append((token, blob, executor.dumps(partition)))

    from repro.parallel.worker import run_query_task

    with _trace.span(
        "parallel.worker", kind="query", tasks=len(payloads), workers=executor.workers
    ):
        partials = executor.run_tasks(run_query_task, payloads)
    template = partials[0]
    return merge_relations(partials, template)
