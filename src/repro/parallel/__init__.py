"""Shared-nothing parallel execution of queries and datalog fixpoints.

Proposition 3.4's small print is a parallelization theorem: the semiring
``+`` of Definition 3.1 is associative and commutative, so a K-relation may
be hash-partitioned on the join/driver key, each partition evaluated by an
independent worker process against broadcast copies of the other relations,
and the partial results merged with a single ``+``-chain per output tuple
-- **exactly**, not approximately, for any commutative semiring whose
values have a canonical, picklable representation.  This package is that
theorem as an executor:

* :mod:`repro.parallel.executor` -- the process pool
  (:class:`ParallelExecutor`), worker-configuration shipping and the
  ``REPRO_PARALLEL`` / ``REPRO_PARALLEL_START`` environment knobs;
* :mod:`repro.parallel.partition` -- hash/round-robin partitioning;
* :mod:`repro.parallel.merge` -- partial-result merging and
  :func:`parallel_merge_ops`, the single chokepoint where
  representation-sensitive carriers (hash-consed circuits) and collect-mode
  runs decline to the serial path, mirroring how non-vectorizable semirings
  decline :func:`repro.engine.vectorized.vector_ops_for`;
* :mod:`repro.parallel.queries` / :mod:`repro.parallel.datalog` -- the
  coordinators for one-shot queries and semi-naive fixpoints;
* :mod:`repro.parallel.worker` -- the spawn-safe worker entry points.

Entry points::

    query.evaluate(database, parallel=4)            # or REPRO_PARALLEL=4
    evaluate_program(program, database, engine="seminaive", parallel=4)
    IncrementalDatalog(program, database, parallel=4)

Every caller treats ``None`` from the parallel path as "declined": the
serial executors run instead and the answer is identical either way.
"""

from repro.parallel.config import (
    PARALLEL_ENV,
    PARALLEL_START_ENV,
    WorkerConfig,
    apply_worker_config,
    capture_worker_config,
)
from repro.parallel.executor import (
    ParallelExecutor,
    resolve_parallel,
    shared_executor,
    shutdown_executors,
)
from repro.parallel.merge import (
    PARALLEL_SAFE_SEMIRINGS,
    merge_contribution_map,
    merge_relations,
    parallel_merge_ops,
)
from repro.parallel.partition import partition_indexes, partition_rows

__all__ = [
    "ParallelExecutor",
    "resolve_parallel",
    "shared_executor",
    "shutdown_executors",
    "WorkerConfig",
    "capture_worker_config",
    "apply_worker_config",
    "PARALLEL_ENV",
    "PARALLEL_START_ENV",
    "PARALLEL_SAFE_SEMIRINGS",
    "parallel_merge_ops",
    "merge_contribution_map",
    "merge_relations",
    "partition_rows",
    "partition_indexes",
    "execute_query_parallel",
    "run_engine_parallel",
]


def execute_query_parallel(*args, **kwargs):
    """Lazy re-export of :func:`repro.parallel.queries.execute_query_parallel`."""
    from repro.parallel.queries import execute_query_parallel as _impl

    return _impl(*args, **kwargs)


def run_engine_parallel(*args, **kwargs):
    """Lazy re-export of :func:`repro.parallel.datalog.run_engine_parallel`."""
    from repro.parallel.datalog import run_engine_parallel as _impl

    return _impl(*args, **kwargs)
