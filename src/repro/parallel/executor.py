"""The shared-nothing process pool behind parallel evaluation.

:class:`ParallelExecutor` owns a lazily-created
:class:`concurrent.futures.ProcessPoolExecutor` whose workers are
initialized with the parent's captured :class:`~repro.parallel.config.WorkerConfig`
(storage default, tuple debug flag, trace sink) so every process resolves
configuration identically.  The start method follows the platform default
unless overridden by ``start_method=`` or ``REPRO_PARALLEL_START`` --
the test suite runs the whole machinery under both ``fork`` and ``spawn``.

Coordinators broadcast a run's shared payload once (:meth:`broadcast`
pickles it to bytes and mints a token); each task then carries the same
bytes object, and the worker-side cache materializes the payload once per
process (see :mod:`repro.parallel.worker`).  :meth:`run_tasks` submits a
batch and gathers results in submission order, so merging is deterministic.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Sequence

from repro.errors import SerializationError
from repro.parallel.config import (
    PARALLEL_ENV,
    PARALLEL_START_ENV,
    WorkerConfig,
    capture_worker_config,
)
from repro.parallel.worker import initialize_worker

__all__ = ["ParallelExecutor", "resolve_parallel", "shared_executor", "shutdown_executors"]

_token_counter = itertools.count(1)


def resolve_parallel(parallel: Any = None) -> Any:
    """Normalize a ``parallel=`` argument to a worker count or executor.

    * a :class:`ParallelExecutor` passes through (reusing its pool);
    * ``None`` defers to ``$REPRO_PARALLEL`` (unset/``0``/``off`` = serial,
      an integer = that many workers, ``auto``/``true`` = the cpu count);
    * ``False``/``0`` force serial, ``True`` means the cpu count;
    * an integer >= 1 is used as the worker count.

    Returns ``0`` for serial, a positive worker count, or the executor.
    Note that one worker still exercises the full partition/ship/merge
    machinery; :func:`repro.planner.cost.choose_partitions` simply never
    fans out, so ``parallel=1`` degrades to the serial path in practice.
    """
    if isinstance(parallel, ParallelExecutor):
        return parallel
    if parallel is None:
        raw = os.environ.get(PARALLEL_ENV, "").strip().lower()
        if not raw or raw in ("0", "off", "false", "no"):
            return 0
        if raw in ("auto", "true", "on", "yes"):
            return os.cpu_count() or 1
        try:
            return max(int(raw), 0)
        except ValueError:
            raise ValueError(
                f"{PARALLEL_ENV}={raw!r} is not a worker count; expected an "
                "integer, 'auto' or 'off'"
            ) from None
    if parallel is True:
        return os.cpu_count() or 1
    if parallel is False:
        return 0
    workers = int(parallel)
    if workers < 0:
        raise ValueError(f"parallel={parallel!r}: worker count cannot be negative")
    return workers


class ParallelExecutor:
    """A reusable pool of shared-nothing worker processes.

    ``max_workers`` is the pool size (default: the cpu count);
    ``start_method`` overrides the multiprocessing start method (default:
    ``$REPRO_PARALLEL_START``, then the platform default).  The pool itself
    is created on first use and torn down by :meth:`close` (also usable as
    a context manager).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        start_method: str | None = None,
        config: WorkerConfig | None = None,
    ):
        workers = resolve_parallel(max_workers if max_workers is not None else True)
        if isinstance(workers, ParallelExecutor):  # pragma: no cover - defensive
            raise TypeError("max_workers must be a count, not an executor")
        self.workers = max(int(workers), 1)
        self.start_method = (
            start_method or os.environ.get(PARALLEL_START_ENV) or None
        )
        self.config = config if config is not None else capture_worker_config()
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    # -- pool lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ParallelExecutor is closed")
        if self._pool is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=initialize_worker,
                initargs=(self.config,),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False

    # -- broadcast + task batches ------------------------------------------------
    def broadcast(self, payload: Any) -> tuple[str, bytes]:
        """Pickle a run's shared payload once; returns ``(token, blob)``.

        Raises :class:`~repro.errors.SerializationError` when the payload
        cannot cross a process boundary (opaque predicate closures raise it
        themselves; anything else unpicklable is wrapped), which callers
        treat as a decline-to-serial signal.
        """
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                f"cannot ship payload to worker processes: {exc}"
            ) from exc
        return f"bx{next(_token_counter)}-{id(self):x}", blob

    def dumps(self, value: Any) -> bytes:
        """Pickle a per-task value under the same error contract as broadcast."""
        try:
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                f"cannot ship payload to worker processes: {exc}"
            ) from exc

    def run_tasks(self, fn: Callable[..., Any], payloads: Sequence[tuple]) -> List[Any]:
        """Run ``fn(*payload)`` for each payload; results in submission order."""
        if not payloads:
            return []
        pool = self._ensure_pool()
        futures = [pool.submit(fn, *payload) for payload in payloads]
        return [future.result() for future in futures]


# -- shared executors ----------------------------------------------------------
#: (workers, start method, config) -> pool, so repeated ``parallel=N`` calls
#: (and the REPRO_PARALLEL environment path) reuse warm workers instead of
#: paying process startup per query.  Keyed by the captured config: if the
#: parent reconfigures (storage default, tracing), a fresh pool with the new
#: config replaces the stale one.
_SHARED: dict = {}
_SHARED_LIMIT = 2


def shared_executor(
    workers: int, *, start_method: str | None = None
) -> ParallelExecutor:
    """The process-wide pool for ``workers`` under the current configuration."""
    config = capture_worker_config()
    key = (
        workers,
        start_method or os.environ.get(PARALLEL_START_ENV) or None,
        config,
    )
    executor = _SHARED.get(key)
    if executor is None or executor.closed:
        executor = ParallelExecutor(
            workers, start_method=start_method, config=config
        )
        _SHARED[key] = executor
        while len(_SHARED) > _SHARED_LIMIT:
            stale_key = next(iter(k for k in _SHARED if k != key))
            _SHARED.pop(stale_key).close()
    return executor


def shutdown_executors() -> None:
    """Close every shared pool (tests and interpreter exit)."""
    while _SHARED:
        _, executor = _SHARED.popitem()
        executor.close()


atexit.register(shutdown_executors)
