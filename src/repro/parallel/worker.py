"""Worker-side entry points of the process pool (module-level, spawn-safe).

Everything a worker runs must be importable by name -- ``spawn`` pickles
the initializer and task functions by reference -- so this module holds
only top-level functions plus a small per-process cache of *broadcast*
state: the coordinator pickles a run's shared payload (a query's replicated
relations, a datalog run's program + database) once, tags it with a token,
and sends the same bytes with every task; each worker unpickles it on first
sight and reuses the materialized state -- stores, indexes, compiled plans
-- for every subsequent task of the same run.

The task functions are ordinary functions of their payloads: the in-process
unit tests call them directly, and the pool calls them from worker
processes; behaviour is identical by construction.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Any, Dict, List, Tuple

from repro.parallel.config import WorkerConfig, apply_worker_config

__all__ = [
    "initialize_worker",
    "run_query_task",
    "run_datalog_tasks",
    "probe_configuration",
]

#: token -> materialized broadcast state; small LRU so a long-lived pool
#: serving many runs does not accumulate every run's database.
_BROADCAST: "OrderedDict[str, Any]" = OrderedDict()
_BROADCAST_LIMIT = 4


def initialize_worker(config: WorkerConfig) -> None:
    """Pool initializer: replay the parent's effective configuration."""
    apply_worker_config(config)


def probe_configuration() -> Tuple[str, bool, bool]:
    """The calling process's effective configuration (test/debug hook).

    Returns ``(resolve_storage_kind(None), debug-tuples flag, tracing
    enabled)`` -- submitted to every pool worker, it proves the pool agrees
    with the parent on configuration resolution.
    """
    from repro.obs import trace
    from repro.relations import tuples
    from repro.relations.storage import resolve_storage_kind

    return (resolve_storage_kind(None), tuples._DEBUG_TUPLES, trace.enabled())


def _broadcast_state(token: str, blob: bytes, build) -> Any:
    state = _BROADCAST.get(token)
    if state is None:
        state = build(pickle.loads(blob))
        _BROADCAST[token] = state
        while len(_BROADCAST) > _BROADCAST_LIMIT:
            _BROADCAST.popitem(last=False)
    else:
        _BROADCAST.move_to_end(token)
    return state


# -- queries ---------------------------------------------------------------------
def run_query_task(token: str, blob: bytes, driver_blob: bytes) -> Any:
    """Evaluate the broadcast query plan over one driver partition.

    ``blob`` is the run's shared payload ``(plan, semiring, driver name,
    replicated relations, storage kind)``; ``driver_blob`` is this task's
    partition of the driver relation.  Returns the partial K-relation.
    """
    from repro.obs import trace as _trace

    def build(payload):
        return payload  # (plan, semiring, driver_name, rest, storage_kind)

    plan, semiring, driver_name, rest, storage_kind = _broadcast_state(
        token, blob, build
    )
    driver_part = pickle.loads(driver_blob)
    from repro.engine import execute as _execute
    from repro.relations.database import Database

    database = Database(semiring, {**rest, driver_name: driver_part})
    with _trace.span(
        "parallel.worker", kind="query", driver_rows=len(driver_part)
    ):
        return _execute(plan, database, storage=storage_kind)


# -- datalog ---------------------------------------------------------------------
def _build_engine(payload):
    from repro.datalog.seminaive import _SemiNaiveEngine

    program, database, maintain_edb, storage_kind = payload
    return _SemiNaiveEngine(
        program,
        database,
        collect=False,
        maintain_edb=maintain_edb,
        storage=storage_kind,
    )


def run_datalog_tasks(
    token: str, blob: bytes, tasks: List[Tuple[Any, ...]]
) -> Dict[str, Dict[tuple, List[Any]]]:
    """Fire a batch of plan partitions against the broadcast engine.

    The engine is rebuilt from ``blob`` -- plan compilation is deterministic
    in ``(program, database)``, so plan indexes agree with the parent's --
    and holds only broadcast EDB state; IDB delta rows arrive *in* the
    tasks, together with their annotations, because the worker's stores
    never see the parent's derived tuples.  Task forms:

    * ``("seed", plan_index, row_indexes)`` -- fire a seed plan over the
      indexed subset of its (broadcast, identical) EDB driver store;
    * ``("delta", predicate, plan_index, rows, annotations)`` -- fire a
      delta plan over shipped ``(values, tup)`` rows with their aligned
      annotation list.

    Returns the non-empty slice of the round's contribution map
    ``{predicate: {head values: [contributions]}}`` for the parent to fold
    into its own round output before the authoritative ``_merge``.
    """
    from repro.obs import trace as _trace

    engine = _broadcast_state(token, blob, _build_engine)
    out = engine._fresh()
    with _trace.span("parallel.worker", kind="datalog", tasks=len(tasks)):
        for task in tasks:
            if task[0] == "seed":
                _, plan_index, row_indexes = task
                plan = engine.seed_plans[plan_index]
                rows = engine.stores[plan.driver.predicate].rows
                engine._fire(plan, [rows[i] for i in row_indexes], out)
            else:
                _, predicate, plan_index, rows, annotations = task
                plan = engine.delta_plans[predicate][plan_index]
                driver_annotations = {
                    tup: value for (_, tup), value in zip(rows, annotations)
                }
                engine._fire(
                    plan, rows, out, driver_annotations=driver_annotations
                )
    # Pre-combine each head tuple's contribution batch with the semiring's
    # ``+`` before shipping it back: exact by associativity, it moves the
    # bulk of the accumulation work into the workers and shrinks the return
    # payload to at most one value per head tuple per worker.
    from repro.engine.kernels import combine_contributions

    semiring = engine.semiring
    return {
        predicate: {
            values: [combine_contributions(semiring, batch)]
            for values, batch in emit.items()
        }
        for predicate, emit in out.items()
        if emit
    }
