"""Hash partitioning of rows on a driver/join key.

The exactness argument is Proposition 3.4's associativity/commutativity of
the semiring ``+``: every derivation of an output tuple uses exactly one
row of the partitioned driver relation, so splitting the driver into
disjoint partitions groups each output tuple's contribution multiset by
partition, and re-associating the per-partition partial sums with a final
``+``-chain reproduces the serial total.  Any disjoint covering split is
exact; hashing on the join key additionally keeps co-joining rows together
(locality), and a round-robin split is used when no key is available.

Hashing uses the parent process's ``hash()`` only -- Python's string hash
is salted per process, so partition assignments are never recomputed on
the worker side; workers receive explicit rows (or row indexes into a
broadcast store) instead.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

__all__ = ["partition_rows", "partition_indexes"]


def partition_rows(
    rows: Sequence[Any],
    partitions: int,
    key: Callable[[Any], Any] | None = None,
) -> List[List[Any]]:
    """Split ``rows`` into ``partitions`` disjoint lists.

    With ``key`` the split hashes ``key(row)`` (rows sharing a join key land
    in the same partition); without one it deals rows round-robin.  Every
    row appears in exactly one partition, and the concatenation of the
    partitions is a permutation of ``rows``.
    """
    if partitions <= 1:
        return [list(rows)]
    parts: List[List[Any]] = [[] for _ in range(partitions)]
    if key is None:
        for index, row in enumerate(rows):
            parts[index % partitions].append(row)
    else:
        for row in rows:
            parts[hash(key(row)) % partitions].append(row)
    return parts


def partition_indexes(
    rows: Sequence[Any],
    partitions: int,
    key: Callable[[Any], Any] | None = None,
) -> List[List[int]]:
    """Like :func:`partition_rows` but returns row *indexes* per partition.

    Used when the rows themselves are already broadcast to the workers (the
    seed round's EDB stores are part of the broadcast database), so shipping
    integer indexes avoids re-pickling the rows.
    """
    if partitions <= 1:
        return [list(range(len(rows)))]
    parts: List[List[int]] = [[] for _ in range(partitions)]
    if key is None:
        for index in range(len(rows)):
            parts[index % partitions].append(index)
    else:
        for index, row in enumerate(rows):
            parts[hash(key(row)) % partitions].append(index)
    return parts
