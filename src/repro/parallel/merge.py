"""Merging per-partition partials, and the single parallel-safety chokepoint.

``parallel_merge_ops`` mirrors :func:`repro.engine.vectorized.vector_ops_for`:
it is the one place that decides whether a semiring's values may be summed
across process boundaries.  A semiring qualifies when

* its ``+`` is associative and commutative (every semiring's is -- that is
  Definition 3.1), **and**
* its values have a *canonical representation*: combining the same multiset
  of contributions in any grouping/order yields ``==``-equal values, **and**
* its values pickle round-trip.

Numbers, booleans, frozenset-based witnesses, minimized positive Boolean
expressions and monomial-dict polynomials all qualify.  Hash-consed circuit
nodes do **not**: their equality is representation identity and a
re-associated ``+``-chain builds a structurally different (if equivalent)
circuit, so circuits decline here and evaluation stays on the serial path --
exactly how non-vectorizable semirings decline ``vector_ops_for``.

The merge itself is the semi-naive ``_merge`` discipline: contributions are
grouped per output tuple and combined with **one** ``+``-chain
(:func:`repro.engine.kernels.combine_contributions`), taking the guarded
vectorized accumulation (:func:`repro.engine.vectorized.try_merge_contributions`)
when the semiring has array ops -- the same int64-overflow guard as the
serial columnar path, falling back to exact Python arithmetic when a batch
could overflow.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.engine.kernels import combine_contributions
from repro.engine.vectorized import try_merge_contributions
from repro.obs import trace as _trace
from repro.relations.krelation import KRelation
from repro.semirings.base import Semiring

__all__ = [
    "PARALLEL_SAFE_SEMIRINGS",
    "parallel_merge_ops",
    "merge_contribution_map",
    "merge_relations",
]

#: Semirings (by registry name) whose values may be merged across process
#: boundaries: canonical representation + picklable values.  Instrumented
#: wrappers mirror their delegate's name and qualify with it.
PARALLEL_SAFE_SEMIRINGS = frozenset(
    {
        "B",
        "N",
        "N∞",
        "Z",
        "Tropical",
        "Fuzzy",
        "Viterbi",
        "PosBool(B)",
        "Why(X)",
        "Why-witness(X)",
        "N[X]",
        "Z[X]",
    }
)


def parallel_merge_ops(semiring: Semiring) -> bool:
    """Whether ``semiring`` partials may be shipped and ``+``-merged exactly.

    The single decline chokepoint for partition-parallel execution; see the
    module docstring for the criteria.  Truncated power series and event
    semirings qualify (their names carry the degree bound / world count,
    hence the prefix matches); circuits and other representation-sensitive
    carriers do not.
    """
    name = semiring.name
    return (
        name in PARALLEL_SAFE_SEMIRINGS
        or name.startswith("N∞[[X]]")
        or name.startswith("P(Ω)")
    )


def merge_contribution_map(
    semiring: Semiring, contributions: Dict[Any, List[Any]]
) -> Dict[Any, Any]:
    """One ``+``-chain per key over each key's contribution batch.

    Keys whose total is the semiring zero are dropped (the stored-zero
    invariant of Definition 3.1).  The vectorized accumulation path is
    tried first; its int64 guard falls back to exact Python folds.
    """
    merged = try_merge_contributions(semiring, contributions)
    if merged is not None:
        return merged
    out: Dict[Any, Any] = {}
    for key, batch in contributions.items():
        total = combine_contributions(semiring, batch)
        if not semiring.is_zero(total):
            out[key] = total
    return out


def merge_relations(parts: Iterable[KRelation], template: KRelation) -> KRelation:
    """Merge per-partition result K-relations into one (exact by ``+``-assoc).

    ``template`` supplies the semiring, schema and storage backend of the
    merged result (any serial evaluation of the same plan produces one).
    Distinct partitions may derive the same output tuple -- a projection can
    collapse different driver rows -- so contributions are batched per tuple
    and combined with a single ``+``-chain each.
    """
    contributions: Dict[Any, List[Any]] = {}
    for part in parts:
        for tup, annotation in part.items():
            batch = contributions.get(tup)
            if batch is None:
                contributions[tup] = [annotation]
            else:
                batch.append(annotation)
    semiring = template.semiring
    with _trace.span(
        "parallel.merge", tuples=len(contributions), semiring=semiring.name
    ):
        merged = merge_contribution_map(semiring, contributions)
        result = KRelation(semiring, template.schema, storage=template.storage)
        result.merge_delta(merged.items())
    return result
