"""K-relations: relations whose tuples are annotated with semiring elements.

Definition 3.1 of the paper: a K-relation over attributes ``U`` is a function
``R : U-Tup -> K`` with finite support, where the support is the set of
tuples with non-zero annotation.  :class:`KRelation` stores exactly the
support as a dictionary from :class:`~repro.relations.tuples.Tup` to
annotation; every tuple not stored is implicitly annotated ``0``.

The relational-algebra operators of Definition 3.2 live in
:mod:`repro.algebra.operators`; :class:`KRelation` exposes them as
convenience methods (``union``, ``project``, ``select``, ``join``,
``rename``) so that small programs and the examples read naturally.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, MutableMapping, Tuple

from repro.errors import SchemaError, SemiringError
from repro.relations.schema import Schema
from repro.relations.storage import RowStore, make_store, resolve_storage_kind
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring

__all__ = ["KRelation"]

_MISSING = object()

RowLike = Any  # a Tup, a mapping, or a sequence of values in schema order


class KRelation:
    """A finite-support map from tuples to annotations in a fixed semiring.

    Parameters
    ----------
    semiring:
        The annotation semiring ``K``.
    schema:
        The attribute set ``U`` (a :class:`Schema` or an iterable of names).
    rows:
        Optional initial contents: an iterable of ``(row, annotation)``
        pairs, or of bare rows (annotated with ``1``).  Rows may be
        :class:`Tup` objects, mappings, or value sequences in schema order.
    storage:
        The physical backend: ``"row"`` (dict-of-``Tup``, the default),
        ``"columnar"`` (per-attribute value arrays plus a parallel
        annotation array; see :mod:`repro.relations.storage`), or an
        already-populated :class:`~repro.relations.storage.RowStore` to
        adopt as-is.  ``None`` defers to the ``REPRO_STORAGE`` environment
        variable.
    """

    def __init__(
        self,
        semiring: Semiring,
        schema: Schema | Iterable[str],
        rows: Iterable[Any] = (),
        *,
        storage: Any = None,
    ):
        self.semiring = semiring
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        if isinstance(storage, RowStore):
            self._store = storage
        else:
            self._store = make_store(
                resolve_storage_kind(storage),
                sorted(self.schema.attribute_set),
            )
        for entry in rows:
            row, annotation = self._split_entry(entry)
            self.add(row, annotation)

    @property
    def storage(self) -> str:
        """The physical backend kind (``"row"`` or ``"columnar"``)."""
        return self._store.kind

    @property
    def _annotations(self) -> MutableMapping[Tup, Any]:
        """Dict-compatible view of the stored ``{Tup: annotation}`` contents.

        For the row backend this *is* the backing dictionary; the columnar
        backend returns a mutable adapter over its parallel arrays.  Writes
        through this view are raw (no zero/carrier checks) -- it exists so
        the engine's internal fast paths work identically on any backend.
        """
        return self._store.mapping()

    # -- construction helpers --------------------------------------------------
    def _split_entry(self, entry: Any) -> tuple[Any, Any]:
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], (Tup, Mapping, tuple, list))
            and not isinstance(entry[0], str)
        ):
            return entry[0], entry[1]
        return entry, self.semiring.one()

    def _coerce_tuple(self, row: RowLike) -> Tup:
        if isinstance(row, Tup):
            candidate = row
        elif isinstance(row, Mapping):
            candidate = Tup(row)
        elif isinstance(row, (tuple, list)):
            candidate = Tup.from_values(self.schema.attributes, row)
        else:
            raise SchemaError(f"cannot interpret {row!r} as a tuple over {self.schema}")
        if candidate.attributes != self.schema.attribute_set:
            raise SchemaError(
                f"tuple {candidate} does not match schema {self.schema}"
            )
        return candidate

    @classmethod
    def from_dict(
        cls,
        semiring: Semiring,
        schema: Schema | Iterable[str],
        annotations: Mapping[Any, Any],
    ) -> "KRelation":
        """Build a relation from a ``{row: annotation}`` mapping."""
        return cls(semiring, schema, annotations.items())

    def empty_like(self) -> "KRelation":
        """A fresh empty relation with the same semiring, schema and backend."""
        return KRelation(self.semiring, self.schema, storage=self._store.kind)

    def copy(self) -> "KRelation":
        """A shallow copy (annotations are immutable values, so this is safe)."""
        return KRelation(self.semiring, self.schema, storage=self._store.copy())

    def with_storage(self, storage: Any) -> "KRelation":
        """The same relation converted to another physical backend.

        Always returns a new relation (a plain copy when the backend is
        already the requested one), so callers can mutate the result freely.
        """
        kind = resolve_storage_kind(storage)
        if kind == self._store.kind:
            return self.copy()
        result = KRelation(self.semiring, self.schema, storage=kind)
        store = result._store
        for tup, annotation in self._store.items():
            store.set(tup, annotation)
        return result

    # -- mutation ---------------------------------------------------------------
    def add(self, row: RowLike, annotation: Any | None = None) -> Tup:
        """Add ``annotation`` (default ``1``) to the tuple's current annotation.

        Following Definition 3.2's treatment of union/projection, annotations
        of the same tuple combine with the semiring's ``+``.  Returns the
        canonical :class:`Tup` that was updated.
        """
        tup = self._coerce_tuple(row)
        value = (
            self.semiring.one()
            if annotation is None
            else self.semiring.coerce(annotation)
        )
        store = self._store
        current = store.get(tup)
        if current is None:
            combined = value
        else:
            combined = self.semiring.add(current, value)
        if self.semiring.is_zero(combined):
            store.discard(tup)
        else:
            store.set(tup, combined)
        return tup

    def set(self, row: RowLike, annotation: Any) -> Tup:
        """Overwrite the annotation of a tuple (removing it when set to zero)."""
        tup = self._coerce_tuple(row)
        value = self.semiring.coerce(annotation)
        if self.semiring.is_zero(value):
            self._store.discard(tup)
        else:
            self._store.set(tup, value)
        return tup

    def _accumulate(self, tup: Tup, value: Any) -> None:
        """Internal fast path for the algebra operators: ``add`` without coercion.

        ``tup`` must already be a canonical :class:`Tup` over this schema and
        ``value`` a carrier element (both hold by construction inside
        :mod:`repro.algebra.operators`, where every value comes out of this
        semiring's own operations).  Skipping the per-tuple validation is a
        measurable win on join/projection hot paths.
        """
        store = self._store
        current = store.get(tup)
        if current is not None:
            value = self.semiring.add(current, value)
        if self.semiring.is_zero(value):
            store.discard(tup)
        else:
            store.set(tup, value)

    def merge_delta(self, updates: Iterable[Tuple[Tup, Any]]) -> "KRelation":
        """Accumulate ``updates`` into the relation and return the *delta*.

        Each ``(tup, value)`` pair is added (semiring ``+``) into the current
        annotation of ``tup``.  The returned relation holds exactly the tuples
        whose annotation changed, mapped to their **new** annotations -- the
        delta a semi-naive fixpoint round must re-fire on.  Tuples whose
        annotation is unchanged (e.g. idempotent re-derivations) are absent
        from the delta, so a fixpoint driver can stop as soon as a merge
        returns an empty relation.

        Updates that cancel an annotation exactly to zero (possible when the
        semiring has negation) remove the tuple from the support, keeping the
        stored-zero invariant of Definition 3.1; since a K-relation cannot
        carry a zero annotation, such cancelled tuples are absent from the
        returned delta (callers that must observe removals, like the
        incremental view layer, use :func:`repro.incremental.apply_delta`).

        Like :meth:`_accumulate` this is a fast path: ``tup`` must be a
        canonical :class:`Tup` over this schema and ``value`` a carrier
        element (both hold inside the datalog engines, where every value
        comes out of this semiring's own operations).
        """
        semiring = self.semiring
        store = self._store
        delta = self.empty_like()
        delta_store = delta._store
        for tup, value in updates:
            current = store.get(tup)
            combined = value if current is None else semiring.add(current, value)
            if current is None and semiring.is_zero(combined):
                continue
            if combined != current:
                if semiring.is_zero(combined):
                    store.discard(tup)
                else:
                    store.set(tup, combined)
                    delta_store.set(tup, combined)
        return delta

    def discard(self, row: RowLike) -> None:
        """Remove a tuple from the support (set its annotation to zero)."""
        tup = self._coerce_tuple(row)
        self._store.discard(tup)

    # -- access -----------------------------------------------------------------
    def annotation(self, row: RowLike) -> Any:
        """The annotation of ``row`` (the semiring zero when not in the support)."""
        tup = self._coerce_tuple(row)
        value = self._store.get(tup, _MISSING)
        return self.semiring.zero() if value is _MISSING else value

    __call__ = annotation

    def __getitem__(self, row: RowLike) -> Any:
        return self.annotation(row)

    @property
    def support(self) -> frozenset[Tup]:
        """The tuples with non-zero annotation (Definition 3.1)."""
        return frozenset(self._store)

    def items(self) -> Iterator[Tuple[Tup, Any]]:
        """Iterate over (tuple, annotation) pairs of the support."""
        return iter(self._store.items())

    def annotations(self) -> Iterator[Any]:
        """Iterate over the non-zero annotations."""
        return iter(self._store.values())

    def __iter__(self) -> Iterator[Tup]:
        return iter(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, row: RowLike) -> bool:
        try:
            tup = self._coerce_tuple(row)
        except SchemaError:
            return False
        return tup in self._store

    def __bool__(self) -> bool:
        return len(self._store) > 0

    # -- semiring-aware transformations ------------------------------------------
    def map_annotations(
        self,
        function: Callable[[Any], Any],
        target_semiring: Semiring | None = None,
    ) -> "KRelation":
        """Apply ``function`` to every annotation, optionally changing semiring.

        This is the tuple-wise transformation of Proposition 3.5; it commutes
        with queries exactly when ``function`` is a semiring homomorphism.
        Tuples whose image is zero are dropped ("the support may shrink but
        never increase").
        """
        semiring = target_semiring or self.semiring
        result = KRelation(semiring, self.schema, storage=self._store.kind)
        result_store = result._store
        for tup, annotation in self._store.items():
            value = semiring.coerce(function(annotation))
            if not semiring.is_zero(value):
                result_store.set(tup, value)
        return result

    def to_semiring(
        self, target: Semiring, conversion: Callable[[Any], Any] | None = None
    ) -> "KRelation":
        """Reinterpret the relation in another semiring.

        Without an explicit ``conversion`` the annotations are passed to the
        target's :meth:`~repro.semirings.base.Semiring.coerce` (useful e.g.
        for reading an ``N``-relation as an ``N-inf``-relation, as the paper
        does before running datalog).
        """
        return self.map_annotations(conversion or target.coerce, target)

    # -- relational algebra (thin wrappers over repro.algebra.operators) --------
    def union(self, other: "KRelation") -> "KRelation":
        """Union (Definition 3.2): annotations of shared tuples are added."""
        from repro.algebra import operators

        return operators.union(self, other)

    def project(self, attributes: Iterable[str]) -> "KRelation":
        """Projection onto ``attributes``, summing annotations of merged tuples."""
        from repro.algebra import operators

        return operators.project(self, attributes)

    def select(self, predicate: Callable[[Tup], Any]) -> "KRelation":
        """Selection by a {0,1}-valued predicate (annotations multiplied)."""
        from repro.algebra import operators

        return operators.select(self, predicate)

    def join(self, other: "KRelation") -> "KRelation":
        """Natural join: annotations of joinable tuples are multiplied."""
        from repro.algebra import operators

        return operators.join(self, other)

    def rename(self, mapping: Mapping[str, str]) -> "KRelation":
        """Attribute renaming by a bijection."""
        from repro.algebra import operators

        return operators.rename(self, mapping)

    # -- comparisons --------------------------------------------------------------
    def _require_same_semiring(self, other: "KRelation", operation: str) -> None:
        """Comparisons across semirings are type errors, not inequalities.

        Annotations from different semirings can be structurally equal as
        Python values (``N``'s ``2`` vs Tropical's ``2.0``) while meaning
        entirely different things, and ``leq`` applied to foreign carrier
        values is undefined -- so mixing semirings raises instead of
        silently answering.
        """
        if self.semiring.name != other.semiring.name:
            raise SemiringError(
                f"cannot {operation} relations over different semirings "
                f"({self.semiring.name} vs {other.semiring.name})"
            )

    def equal_to(self, other: "KRelation") -> bool:
        """Annotation-wise equality of two relations over the same schema.

        Raises :class:`~repro.errors.SemiringError` when the relations are
        annotated in different semirings (see :meth:`_require_same_semiring`).
        """
        if not isinstance(other, KRelation):
            return False
        self._require_same_semiring(other, "compare")
        if self.schema.attribute_set != other.schema.attribute_set:
            return False
        # Store-aware comparison (the two relations may use different
        # physical backends): same support, equal annotations tuple-wise.
        if len(self._store) != len(other._store):
            return False
        other_get = other._store.get
        for tup, annotation in self._store.items():
            theirs = other_get(tup, _MISSING)
            if theirs is _MISSING:
                return False
            if theirs is not annotation and theirs != annotation:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KRelation):
            return NotImplemented
        # ``==`` must not raise (relations end up in assertion messages and
        # container lookups); cross-semiring relations are simply unequal.
        if self.semiring.name != other.semiring.name:
            return False
        return self.equal_to(other)

    # K-relations are mutable containers (``add``/``merge_delta`` change the
    # annotation dictionary in place), so they must not be usable as dict or
    # set keys: a hash derived from ``_annotations`` silently goes stale
    # after insertion.  Defining ``__eq__`` alone would already reset this to
    # None; the explicit assignment documents that the unhashability is
    # deliberate.
    __hash__ = None

    def contained_in(self, other: "KRelation") -> bool:
        """Annotation-wise containment in the semiring's natural order.

        Raises :class:`~repro.errors.SemiringError` when the relations are
        annotated in different semirings -- ``leq`` is only defined on this
        semiring's own carrier.
        """
        self._require_same_semiring(other, "compare")
        if self.schema.attribute_set != other.schema.attribute_set:
            raise SchemaError("containment requires union-compatible relations")
        leq = self.semiring.leq
        for tup in set(self._store) | set(other._store):
            if not leq(self.annotation(tup), other.annotation(tup)):
                return False
        return True

    # -- display -------------------------------------------------------------------
    def to_table(self, sort: bool = True, *, max_annotation_width: int | None = None) -> str:
        """Human-readable table of the support with annotations.

        ``max_annotation_width`` summarizes oversized annotations (see
        :func:`repro.relations.display.format_relation`).
        """
        from repro.relations.display import format_relation

        return format_relation(
            self, sort=sort, max_annotation_width=max_annotation_width
        )

    def __repr__(self) -> str:
        return (
            f"KRelation({self.semiring.name}, {list(self.schema.attributes)}, "
            f"{len(self._store)} tuples)"
        )

    def __str__(self) -> str:
        return self.to_table()

    # -- misc -----------------------------------------------------------------------
    def total_annotation(self) -> Any:
        """The sum of all annotations (e.g. total multiplicity under bags)."""
        return self.semiring.sum(self._store.values())

    def check_consistency(self) -> None:
        """Validate the Definition 3.1 invariants on any storage backend.

        Every stored annotation must be a non-zero carrier element (a stored
        zero violates the finite-support representation), and the backend's
        own layout invariants must hold (for the columnar store: parallel
        arrays in sync with the tuple index).
        """
        for tup, annotation in self._store.items():
            if not self.semiring.contains(annotation):
                raise SemiringError(
                    f"annotation {annotation!r} of {tup} is not in {self.semiring.name}"
                )
            if self.semiring.is_zero(annotation):
                raise SemiringError(f"stored zero annotation for {tup}")
        self._store.check(tuple(sorted(self.schema.attribute_set)))
