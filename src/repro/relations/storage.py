"""Row stores: pluggable physical storage backends for K-relations.

A :class:`~repro.relations.krelation.KRelation` is *logically* a finite-
support map ``Tup -> K`` (Definition 3.1); this module separates that logic
from its physical layout.  Two backends implement the :class:`RowStore`
protocol:

* :class:`DictRowStore` (kind ``"row"``, the default) -- the original
  dict-of-``Tup`` layout.  Zero overhead over a plain dictionary: its
  :meth:`~RowStore.mapping` view *is* the underlying dict.
* :class:`ColumnarRowStore` (kind ``"columnar"``) -- one value array per
  attribute plus a parallel annotation array, with a ``Tup -> position``
  index for point lookups and swap-with-last deletion.  The column arrays
  are plain Python lists of carrier values (contiguous object references;
  circuit annotations are hash-consed ``Node`` references, i.e. interned
  node ids), which the vectorized kernels in :mod:`repro.engine.vectorized`
  lift into ``numpy`` arrays (``int64``/``float64``/``bool`` for the
  numeric semirings N, Z, Tropical and B, ``object`` for attribute
  columns) without per-tuple dispatch.

Backend selection: ``KRelation(..., storage="columnar")`` explicitly, or
process-wide via the ``REPRO_STORAGE`` environment variable (``"row"`` or
``"columnar"``).  Every store keeps the same observable contract -- same
iteration of ``(tup, annotation)`` pairs, same point lookups -- so the
whole engine stack runs unchanged on either backend.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, MutableMapping, Tuple

from repro.errors import SchemaError, SemiringError
from repro.relations.tuples import Tup

__all__ = [
    "STORAGE_ENV",
    "STORAGE_KINDS",
    "RowStore",
    "DictRowStore",
    "ColumnarRowStore",
    "resolve_storage_kind",
    "make_store",
]

#: Environment variable selecting the process-wide default backend.
STORAGE_ENV = "REPRO_STORAGE"

#: The registered backend kinds.
STORAGE_KINDS = ("row", "columnar")

_MISSING = object()


def resolve_storage_kind(storage: Any = None) -> str:
    """Normalize a ``storage=`` argument (or the environment) to a kind name.

    ``None`` defers to ``$REPRO_STORAGE`` (default ``"row"``); strings are
    validated against :data:`STORAGE_KINDS`; a :class:`RowStore` instance
    resolves to its own kind.
    """
    if storage is None:
        storage = os.environ.get(STORAGE_ENV) or "row"
    if isinstance(storage, RowStore):
        return storage.kind
    kind = str(storage).strip().lower()
    if kind in ("dict", "rows"):
        kind = "row"
    if kind in ("column", "col", "columns"):
        kind = "columnar"
    if kind not in STORAGE_KINDS:
        raise SchemaError(
            f"unknown storage backend {storage!r}; expected one of {STORAGE_KINDS}"
        )
    return kind


def make_store(kind: str, attributes: Iterable[str]) -> "RowStore":
    """Instantiate a fresh store of ``kind`` over sorted ``attributes``."""
    if kind == "columnar":
        return ColumnarRowStore(attributes)
    return DictRowStore()


class RowStore:
    """The storage protocol behind :class:`KRelation`.

    Keys are canonical :class:`Tup` objects, values are non-zero carrier
    elements of the relation's semiring -- the store itself is
    semiring-agnostic and performs **no** validation (the relation layer
    owns the stored-zero invariant; :meth:`check` only audits layout
    invariants after the fact).
    """

    kind: str = "abstract"

    # -- point access ---------------------------------------------------------
    def get(self, tup: Tup, default: Any = None) -> Any:
        raise NotImplementedError

    def set(self, tup: Tup, value: Any) -> None:
        """Insert or overwrite, unconditionally (no zero handling here)."""
        raise NotImplementedError

    def discard(self, tup: Tup) -> bool:
        """Remove ``tup`` if present; return whether it was stored."""
        raise NotImplementedError

    # -- bulk access ----------------------------------------------------------
    def items(self) -> Iterable[Tuple[Tup, Any]]:
        raise NotImplementedError

    def values(self) -> Iterable[Any]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tup]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, tup: Tup) -> bool:
        return self.get(tup, _MISSING) is not _MISSING

    def copy(self) -> "RowStore":
        raise NotImplementedError

    def mapping(self) -> MutableMapping[Tup, Any]:
        """A dict-compatible mutable view of the store's contents."""
        raise NotImplementedError

    def check(self, attributes: Tuple[str, ...]) -> None:
        """Audit backend layout invariants (cheap no-op for the dict store)."""


class DictRowStore(RowStore):
    """The default backend: a plain ``{Tup: annotation}`` dictionary."""

    kind = "row"
    __slots__ = ("data",)

    def __init__(self, data: dict | None = None):
        self.data: dict = {} if data is None else data

    def get(self, tup: Tup, default: Any = None) -> Any:
        return self.data.get(tup, default)

    def set(self, tup: Tup, value: Any) -> None:
        self.data[tup] = value

    def discard(self, tup: Tup) -> bool:
        return self.data.pop(tup, _MISSING) is not _MISSING

    def items(self) -> Iterable[Tuple[Tup, Any]]:
        return self.data.items()

    def values(self) -> Iterable[Any]:
        return self.data.values()

    def __iter__(self) -> Iterator[Tup]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, tup: Tup) -> bool:
        return tup in self.data

    def copy(self) -> "DictRowStore":
        return DictRowStore(dict(self.data))

    def mapping(self) -> MutableMapping[Tup, Any]:
        return self.data


class ColumnarRowStore(RowStore):
    """Columnar backend: per-attribute value arrays + a parallel annotation array.

    Rows live at a dense integer position: ``columns[j][i]`` is the value of
    attribute ``attributes[j]`` in row ``i`` and ``annotations[i]`` is that
    row's semiring annotation.  ``tuples[i]`` keeps the canonical
    :class:`Tup` (the hash-consed identity the rest of the system keys on)
    and ``_pos`` maps it back to ``i``.  Deletion swaps the last row into
    the vacated slot, so all arrays stay dense.

    ``version`` increments on every mutation; the vectorized kernels use it
    to invalidate cached ``numpy`` materializations of the columns.
    """

    kind = "columnar"
    __slots__ = (
        "attributes",
        "tuples",
        "columns",
        "annotations",
        "_pos",
        "version",
        "_mapping",
        "_vec_cache",
    )

    def __init__(self, attributes: Iterable[str]):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.tuples: list = []
        self.columns: Tuple[list, ...] = tuple([] for _ in self.attributes)
        self.annotations: list = []
        self._pos: dict = {}
        self.version: int = 0
        self._mapping: "_ColumnarMapping | None" = None
        #: Scratch slot for the vectorized kernels: an opaque cached
        #: encoding of the columns, tagged with the ``version`` it was
        #: built at (stale entries are simply ignored).
        self._vec_cache: Any = None

    def __getstate__(self):
        # Ship only the logical contents: ``_pos`` is rebuilt from
        # ``tuples`` (cheaper than pickling a second copy of every Tup
        # key), the mapping adapter is a cyclic view and the vectorized
        # scratch cache may hold numpy arrays -- neither belongs in the
        # worker-IPC payload.
        return (self.attributes, self.tuples, self.columns, self.annotations)

    def __setstate__(self, state):
        self.attributes, self.tuples, self.columns, self.annotations = state
        self._pos = {tup: i for i, tup in enumerate(self.tuples)}
        self.version = 0
        self._mapping = None
        self._vec_cache = None

    def get(self, tup: Tup, default: Any = None) -> Any:
        position = self._pos.get(tup)
        if position is None:
            return default
        return self.annotations[position]

    def set(self, tup: Tup, value: Any) -> None:
        position = self._pos.get(tup)
        if position is not None:
            self.annotations[position] = value
            self.version += 1
            return
        self._pos[tup] = len(self.tuples)
        self.tuples.append(tup)
        items = tup._items
        if len(items) == len(self.columns):
            # Fast path: a canonical tuple's sorted item order is exactly the
            # store's (sorted) attribute order.
            for column, (_, value_) in zip(self.columns, items):
                column.append(value_)
        else:
            # Malformed row (validation was bypassed): keep the parallel
            # arrays aligned so check() can report it instead of crashing.
            lookup = dict(items)
            for column, attribute in zip(self.columns, self.attributes):
                column.append(lookup.get(attribute))
        self.annotations.append(value)
        self.version += 1

    def extend_rows(self, tuples: list, columns: Iterable[list], annotations: list) -> None:
        """Bulk-append pre-aligned rows (the vectorized materialize path).

        ``tuples`` must be canonical, distinct and absent from the store;
        ``columns`` must be per-attribute value lists in the store's
        attribute order, parallel to ``tuples`` and ``annotations``.  One
        position-index pass and one version bump replace ``len(tuples)``
        individual :meth:`set` calls.
        """
        base = len(self.tuples)
        self.tuples.extend(tuples)
        for column, new_values in zip(self.columns, columns):
            column.extend(new_values)
        self.annotations.extend(annotations)
        position_index = self._pos
        for offset, tup in enumerate(tuples):
            position_index[tup] = base + offset
        self.version += 1

    def discard(self, tup: Tup) -> bool:
        position = self._pos.pop(tup, None)
        if position is None:
            return False
        last = len(self.tuples) - 1
        if position != last:
            moved = self.tuples[last]
            self.tuples[position] = moved
            for column in self.columns:
                column[position] = column[last]
            self.annotations[position] = self.annotations[last]
            self._pos[moved] = position
        self.tuples.pop()
        for column in self.columns:
            column.pop()
        self.annotations.pop()
        self.version += 1
        return True

    def items(self) -> Iterable[Tuple[Tup, Any]]:
        return zip(self.tuples, self.annotations)

    def values(self) -> Iterable[Any]:
        return iter(self.annotations)

    def __iter__(self) -> Iterator[Tup]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, tup: Tup) -> bool:
        return tup in self._pos

    def copy(self) -> "ColumnarRowStore":
        clone = ColumnarRowStore(self.attributes)
        clone.tuples = list(self.tuples)
        clone.columns = tuple(list(column) for column in self.columns)
        clone.annotations = list(self.annotations)
        clone._pos = dict(self._pos)
        return clone

    def mapping(self) -> MutableMapping[Tup, Any]:
        if self._mapping is None:
            self._mapping = _ColumnarMapping(self)
        return self._mapping

    def check(self, attributes: Tuple[str, ...]) -> None:
        """Audit the parallel-array and position-index invariants."""
        n = len(self.tuples)
        if len(self.annotations) != n or any(len(c) != n for c in self.columns):
            raise SemiringError(
                f"columnar store arrays out of sync: {n} tuples, "
                f"{len(self.annotations)} annotations, "
                f"columns {[len(c) for c in self.columns]}"
            )
        if tuple(self.attributes) != tuple(attributes):
            raise SchemaError(
                f"columnar store attributes {self.attributes} do not match "
                f"schema attributes {tuple(attributes)}"
            )
        if len(self._pos) != n:
            raise SemiringError(
                f"columnar position index has {len(self._pos)} entries "
                f"for {n} rows"
            )
        for i, tup in enumerate(self.tuples):
            if self._pos.get(tup) != i:
                raise SemiringError(f"columnar position index stale for {tup}")
            items = tup._items
            if tuple(a for a, _ in items) != self.attributes:
                raise SchemaError(
                    f"stored tuple {tup} does not match store attributes "
                    f"{self.attributes}"
                )
            for column, (_, value) in zip(self.columns, items):
                if column[i] != value:
                    raise SemiringError(
                        f"column value {column[i]!r} disagrees with tuple {tup}"
                    )


class _ColumnarMapping(MutableMapping):
    """Dict-compatible mutable view over a :class:`ColumnarRowStore`.

    Lets every existing ``relation._annotations`` call site -- ``get``,
    ``pop``, item assignment/deletion, ``update``, iteration -- work
    unchanged against the columnar layout.  Writes are *raw* (no zero or
    carrier checks), exactly like writing into the backing dict of the row
    store; the relation layer enforces the invariants.
    """

    __slots__ = ("_store",)

    def __init__(self, store: ColumnarRowStore):
        self._store = store

    def __getitem__(self, tup: Tup) -> Any:
        value = self._store.get(tup, _MISSING)
        if value is _MISSING:
            raise KeyError(tup)
        return value

    def __setitem__(self, tup: Tup, value: Any) -> None:
        self._store.set(tup, value)

    def __delitem__(self, tup: Tup) -> None:
        if not self._store.discard(tup):
            raise KeyError(tup)

    def get(self, tup: Tup, default: Any = None) -> Any:
        return self._store.get(tup, default)

    def pop(self, tup: Tup, default: Any = _MISSING) -> Any:
        value = self._store.get(tup, _MISSING)
        if value is _MISSING:
            if default is _MISSING:
                raise KeyError(tup)
            return default
        self._store.discard(tup)
        return value

    def __contains__(self, tup: object) -> bool:
        return tup in self._store

    def __iter__(self) -> Iterator[Tup]:
        return iter(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def items(self):
        return self._store.items()

    def values(self):
        return self._store.values()

    def keys(self):
        return iter(self._store)
