"""Relation schemas (finite attribute sets with a preferred display order)."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError

__all__ = ["Schema"]


class Schema:
    """An ordered collection of distinct attribute names.

    Semantically a schema is just the finite attribute set ``U`` of the named
    perspective; the order is retained only so that relations print in a
    stable, human-friendly column order (matching the paper's figures).
    """

    __slots__ = ("_attributes",)

    def __init__(self, attributes: Iterable[str]):
        ordered = [str(a) for a in attributes]
        if len(set(ordered)) != len(ordered):
            raise SchemaError(f"duplicate attributes in schema {ordered}")
        object.__setattr__(self, "_attributes", tuple(ordered))

    # -- structure ------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in display order."""
        return self._attributes

    @property
    def attribute_set(self) -> frozenset[str]:
        """Attribute names as a set (the ``U`` of the named perspective)."""
        return frozenset(self._attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attributes

    # -- operations -----------------------------------------------------------
    def project(self, attributes: Iterable[str]) -> "Schema":
        """Schema of a projection onto ``attributes`` (kept in the given order)."""
        wanted = [str(a) for a in attributes]
        missing = set(wanted) - self.attribute_set
        if missing:
            raise SchemaError(f"cannot project on unknown attributes {sorted(missing)}")
        return Schema(wanted)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Schema after renaming attributes by the (injective) ``mapping``."""
        renamed = [mapping.get(a, a) for a in self._attributes]
        return Schema(renamed)

    def join(self, other: "Schema") -> "Schema":
        """Schema of a natural join: this schema followed by the new attributes."""
        extra = [a for a in other.attributes if a not in self.attribute_set]
        return Schema(self._attributes + tuple(extra))

    def is_compatible_with(self, other: "Schema") -> bool:
        """Whether the two schemas have the same attribute set (union-compatible)."""
        return self.attribute_set == other.attribute_set

    # -- protocol --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attribute_set == other.attribute_set

    def __hash__(self) -> int:
        return hash(("Schema", self.attribute_set))

    def __repr__(self) -> str:
        return f"Schema({list(self._attributes)})"

    def __str__(self) -> str:
        return "(" + ", ".join(self._attributes) + ")"
