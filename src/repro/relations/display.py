"""Plain-text rendering of K-relations, in the style of the paper's figures."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.relations.krelation import KRelation

__all__ = ["format_relation"]


def format_relation(
    relation: "KRelation",
    *,
    sort: bool = True,
    annotation_header: str = "annotation",
    max_annotation_width: int | None = None,
) -> str:
    """Render a K-relation as an aligned text table.

    Columns are the schema attributes followed by the annotation, formatted
    by the relation's semiring.  Rows are sorted by their attribute values
    when ``sort`` is true so output is deterministic.

    ``max_annotation_width`` caps the annotation column: any annotation
    whose full rendering exceeds it is re-rendered with the semiring's
    :meth:`~repro.semirings.base.Semiring.summarize_value` (e.g. provenance
    circuits print as a node-count/depth summary instead of the expanded
    expression).
    """
    attributes = list(relation.schema.attributes)
    header = attributes + [annotation_header]
    rows = []
    items = list(relation.items())
    if sort:
        items.sort(key=lambda item: tuple(str(v) for v in item[0].values_for(attributes)))
    for tup, annotation in items:
        values = [str(v) for v in tup.values_for(attributes)]
        rendered = relation.semiring.format_value(annotation)
        if max_annotation_width is not None and len(rendered) > max_annotation_width:
            rendered = relation.semiring.summarize_value(annotation)
        values.append(rendered)
        rows.append(values)

    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [render_row(header), "-+-".join("-" * w for w in widths)]
    lines.extend(render_row(row) for row in rows)
    if not rows:
        lines.append("(empty)")
    return "\n".join(lines)
