"""Databases: named collections of K-relations over one semiring."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping

from repro.errors import SchemaError, SemiringError
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.semirings.base import Semiring

__all__ = ["Database"]


class Database:
    """A catalog of named K-relations sharing a single annotation semiring.

    The positive-algebra evaluator and the datalog engine both read their
    input relations from a :class:`Database`; query results are themselves
    K-relations and can be registered back into the catalog.
    """

    def __init__(self, semiring: Semiring, relations: Mapping[str, KRelation] | None = None):
        self.semiring = semiring
        self._relations: Dict[str, KRelation] = {}
        for name, relation in (relations or {}).items():
            self.register(name, relation)

    # -- catalog ----------------------------------------------------------------
    def register(self, name: str, relation: KRelation) -> KRelation:
        """Add or replace a relation under ``name``.

        The relation's semiring must match the database's semiring (by name);
        this keeps query evaluation well-defined.
        """
        if relation.semiring.name != self.semiring.name:
            raise SemiringError(
                f"relation {name!r} is annotated in {relation.semiring.name}, "
                f"but the database uses {self.semiring.name}"
            )
        self._relations[name] = relation
        return relation

    def create(
        self,
        name: str,
        schema: Schema | Iterable[str],
        rows: Iterable[Any] = (),
        *,
        storage: Any = None,
    ) -> KRelation:
        """Create, register and return a new relation."""
        relation = KRelation(self.semiring, schema, rows, storage=storage)
        return self.register(name, relation)

    def relation(self, name: str) -> KRelation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from None

    __getitem__ = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """Sorted relation names."""
        return sorted(self._relations)

    def items(self) -> Iterator[tuple[str, KRelation]]:
        """Iterate over (name, relation) pairs."""
        return iter(self._relations.items())

    # -- transformations -----------------------------------------------------------
    def map_annotations(self, function, target_semiring: Semiring | None = None) -> "Database":
        """Apply an annotation transformation to every relation (Prop. 3.5)."""
        semiring = target_semiring or self.semiring
        result = Database(semiring)
        for name, relation in self._relations.items():
            result.register(name, relation.map_annotations(function, semiring))
        return result

    def to_semiring(self, target: Semiring, conversion=None) -> "Database":
        """Reinterpret every relation in another semiring via coercion."""
        result = Database(target)
        for name, relation in self._relations.items():
            result.register(name, relation.to_semiring(target, conversion))
        return result

    def copy(self) -> "Database":
        """A copy with independently mutable relations."""
        result = Database(self.semiring)
        for name, relation in self._relations.items():
            result.register(name, relation.copy())
        return result

    def with_storage(self, storage: Any) -> "Database":
        """A copy with every relation converted to the given storage backend."""
        result = Database(self.semiring)
        for name, relation in self._relations.items():
            result.register(name, relation.with_storage(storage))
        return result

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Database({self.semiring.name}, relations={self.names()})"
