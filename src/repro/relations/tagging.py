"""Abstract tagging: annotating tuples with their own identifiers.

Theorem 4.3 (and its datalog analogue, Theorem 6.4) evaluates a query in two
stages: first on an *abstractly tagged* version ``R-bar`` of the input, in
which every support tuple is annotated by a fresh variable (its tuple id),
producing provenance polynomials; then the polynomials are evaluated through
``Eval_v`` under the valuation that maps each tuple id back to the original
annotation.  This module provides the tagging step and the bookkeeping that
connects tuple ids to tuples and annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring
from repro.semirings.polynomial import ProvenancePolynomialSemiring

__all__ = ["TaggedDatabase", "abstractly_tag", "abstractly_tag_database"]


@dataclass
class TaggedDatabase:
    """An abstractly-tagged database together with its valuation.

    Attributes
    ----------
    database:
        The ``N[X]``-database in which every input tuple is annotated with a
        distinct provenance variable.
    valuation:
        Maps each introduced variable to the original annotation (in the
        original semiring); this is the ``v`` of ``Eval_v``.
    tuple_ids:
        Maps ``(relation name, tuple)`` to the introduced variable, so
        callers can trace provenance variables back to concrete tuples.
    source_semiring:
        The semiring of the original database.
    """

    database: Database
    valuation: Dict[str, Any]
    tuple_ids: Dict[tuple[str, Tup], str]
    source_semiring: Semiring
    _by_variable: Dict[str, tuple[str, Tup]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_variable = {v: k for k, v in self.tuple_ids.items()}

    def variable_for(self, relation_name: str, row: Any) -> str:
        """The provenance variable assigned to a given input tuple."""
        relation = self.database.relation(relation_name)
        tup = row if isinstance(row, Tup) else relation._coerce_tuple(row)
        return self.tuple_ids[(relation_name, tup)]

    def tuple_for(self, variable: str) -> tuple[str, Tup]:
        """The (relation name, tuple) pair a provenance variable refers to."""
        return self._by_variable[variable]


def _variable_annotation(semiring: Semiring, name: str) -> Any:
    """The annotation representing bare variable ``name`` in ``semiring``."""
    maker = getattr(semiring, "var", None)
    if maker is not None:
        return maker(name)
    return semiring.coerce(name)


def abstractly_tag(
    relation: KRelation,
    *,
    relation_name: str = "R",
    id_format: str = "{name}{index}",
    ids: Mapping[Any, str] | None = None,
    semiring: Semiring | None = None,
) -> tuple[KRelation, Dict[str, Any], Dict[tuple[str, Tup], str]]:
    """Tag every support tuple of ``relation`` with its own fresh variable.

    Returns ``(tagged_relation, valuation, tuple_ids)`` where the tagged
    relation is an ``N[X]``-relation, ``valuation`` maps each variable to the
    tuple's original annotation and ``tuple_ids`` maps ``(relation_name,
    tuple)`` to the variable.  Pass ``ids`` to pin specific variable names to
    specific tuples (as the paper does with ``p, r, s`` in Figure 5).

    ``semiring`` selects the provenance representation: the default is the
    paper's expanded polynomials ``N[X]``; pass
    :class:`~repro.circuits.semiring.CircuitSemiring` (or any semiring with
    a ``var`` constructor) to tag with hash-consed circuit variables
    instead.
    """
    provenance = semiring if semiring is not None else ProvenancePolynomialSemiring()
    tagged = KRelation(provenance, relation.schema)
    valuation: Dict[str, Any] = {}
    tuple_ids: Dict[tuple[str, Tup], str] = {}

    explicit: Dict[Tup, str] = {}
    if ids:
        for row, variable in ids.items():
            explicit[relation._coerce_tuple(row)] = str(variable)

    for index, (tup, annotation) in enumerate(
        sorted(relation.items(), key=lambda item: str(item[0])), start=1
    ):
        variable = explicit.get(tup) or id_format.format(name=relation_name.lower(), index=index)
        if variable in valuation:
            raise ValueError(f"duplicate tuple id {variable!r}")
        tagged.set(tup, _variable_annotation(provenance, variable))
        valuation[variable] = annotation
        tuple_ids[(relation_name, tup)] = variable
    return tagged, valuation, tuple_ids


def abstractly_tag_database(
    database: Database,
    *,
    ids: Mapping[str, Mapping[Any, str]] | None = None,
    semiring: Semiring | None = None,
) -> TaggedDatabase:
    """Tag every relation of ``database``, producing an ``N[X]`` database.

    ``ids`` may pin variable names per relation:
    ``{"R": {("a", "b", "c"): "p", ...}}``.  ``semiring`` selects the
    provenance representation (expanded polynomials by default, circuits
    when a :class:`~repro.circuits.semiring.CircuitSemiring` is passed).
    """
    provenance = semiring if semiring is not None else ProvenancePolynomialSemiring()
    tagged_db = Database(provenance)
    valuation: Dict[str, Any] = {}
    tuple_ids: Dict[tuple[str, Tup], str] = {}
    for name, relation in database.items():
        tagged, rel_valuation, rel_ids = abstractly_tag(
            relation,
            relation_name=name,
            ids=(ids or {}).get(name),
            semiring=provenance,
        )
        overlap = set(rel_valuation) & set(valuation)
        if overlap:
            raise ValueError(f"duplicate tuple ids across relations: {sorted(overlap)}")
        tagged_db.register(name, tagged)
        valuation.update(rel_valuation)
        tuple_ids.update(rel_ids)
    return TaggedDatabase(
        database=tagged_db,
        valuation=valuation,
        tuple_ids=tuple_ids,
        source_semiring=database.semiring,
    )
