"""K-relations and databases (Definition 3.1 of the paper)."""

from repro.relations.database import Database
from repro.relations.display import format_relation
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tagging import (
    TaggedDatabase,
    abstractly_tag,
    abstractly_tag_database,
)
from repro.relations.tuples import Tup

__all__ = [
    "Tup",
    "Schema",
    "KRelation",
    "Database",
    "format_relation",
    "TaggedDatabase",
    "abstractly_tag",
    "abstractly_tag_database",
]
