"""Named-perspective tuples.

The paper works in the *named perspective* of the relational model
(Section 3): a tuple is a function ``t : U -> D`` from a finite set of
attribute names to domain values.  :class:`Tup` is an immutable, hashable
implementation of such a function, with the operations the positive algebra
needs: restriction to a subset of attributes (projection), renaming, and
merging of compatible tuples (natural join).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import SchemaError

__all__ = ["Tup"]

#: Debug-mode validation of the :meth:`Tup._from_sorted_items` fast path.
#: The fast constructor deliberately skips sorting and schema checks, so a
#: kernel bug can silently emit malformed tuples; setting
#: ``REPRO_DEBUG_TUPLES=1`` turns the skipped checks back on (read once at
#: import; tests flip the module attribute directly).
_DEBUG_TUPLES = os.environ.get("REPRO_DEBUG_TUPLES", "").strip().lower() not in (
    "",
    "0",
    "false",
    "off",
)


def _validate_sorted_items(items: Tuple[tuple[str, Any], ...]) -> None:
    """The checks :meth:`Tup._from_sorted_items` bypasses, for debug mode."""
    if not isinstance(items, tuple):
        raise SchemaError(f"_from_sorted_items needs a tuple of pairs, got {items!r}")
    previous = None
    for pair in items:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            raise SchemaError(f"malformed (attribute, value) pair {pair!r}")
        attribute = pair[0]
        if not isinstance(attribute, str):
            raise SchemaError(f"attribute name {attribute!r} is not a string")
        if previous is not None and not (previous < attribute):
            raise SchemaError(
                f"items not sorted by distinct attribute names at {attribute!r} "
                f"(after {previous!r})"
            )
        previous = attribute


class Tup:
    """An immutable named tuple ``{attribute: value}``.

    ``Tup(a=1, b="x")`` and ``Tup({"a": 1, "b": "x"})`` are equivalent.
    Equality and hashing are value-based and independent of attribute
    ordering, matching the function view ``t : U -> D``.
    """

    __slots__ = ("_items",)

    def __init__(self, values: Mapping[str, Any] | Iterable[tuple[str, Any]] = (), **kwargs: Any):
        items: Dict[str, Any] = {}
        pairs = values.items() if isinstance(values, Mapping) else values
        for attribute, value in pairs:
            items[str(attribute)] = value
        for attribute, value in kwargs.items():
            if attribute in items:
                raise SchemaError(f"attribute {attribute!r} given twice")
            items[attribute] = value
        object.__setattr__(self, "_items", tuple(sorted(items.items())))

    # -- constructors ---------------------------------------------------------
    @classmethod
    def _from_sorted_items(cls, items: Tuple[tuple[str, Any], ...]) -> "Tup":
        """Internal fast constructor: ``items`` must already be distinct
        ``(attribute, value)`` pairs sorted by attribute name.

        The physical execution kernels (:mod:`repro.engine.kernels`) build
        output tuples from positional value rows whose attribute order is
        known at compile time, so re-sorting and re-validating per tuple
        would dominate the hot loops.  Set ``REPRO_DEBUG_TUPLES=1`` to
        re-enable the bypassed validation (sortedness, distinctness, string
        attribute names) while chasing a kernel bug.
        """
        if _DEBUG_TUPLES:
            _validate_sorted_items(items)
        tup = cls.__new__(cls)
        object.__setattr__(tup, "_items", items)
        return tup

    @classmethod
    def from_values(cls, attributes: Iterable[str], values: Iterable[Any]) -> "Tup":
        """Zip parallel attribute and value sequences into a tuple."""
        attributes, values = list(attributes), list(values)
        if len(attributes) != len(values):
            raise SchemaError(
                f"{len(values)} values for {len(attributes)} attributes"
            )
        return cls(zip(attributes, values))

    # -- mapping protocol -------------------------------------------------------
    @property
    def attributes(self) -> frozenset[str]:
        """The attribute set ``U`` of this tuple."""
        return frozenset(a for a, _ in self._items)

    def __getitem__(self, attribute: str) -> Any:
        for a, v in self._items:
            if a == attribute:
                return v
        raise KeyError(attribute)

    def get(self, attribute: str, default: Any = None) -> Any:
        """Value of ``attribute`` or ``default`` when absent."""
        for a, v in self._items:
            if a == attribute:
                return v
        return default

    def __contains__(self, attribute: str) -> bool:
        return any(a == attribute for a, _ in self._items)

    def __iter__(self) -> Iterator[str]:
        return (a for a, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[tuple[str, Any], ...]:
        """Sorted (attribute, value) pairs."""
        return self._items

    def values_for(self, attributes: Iterable[str]) -> tuple:
        """Values listed in the order of ``attributes`` (useful for display)."""
        return tuple(self[a] for a in attributes)

    def as_dict(self) -> Dict[str, Any]:
        """A plain mutable dictionary copy."""
        return dict(self._items)

    # -- relational operations ---------------------------------------------------
    def restrict(self, attributes: Iterable[str]) -> "Tup":
        """Projection: the restriction of the function to ``attributes``."""
        wanted = set(attributes)
        missing = wanted - self.attributes
        if missing:
            raise SchemaError(f"cannot project on missing attributes {sorted(missing)}")
        return Tup((a, v) for a, v in self._items if a in wanted)

    def rename(self, mapping: Mapping[str, str]) -> "Tup":
        """Renaming: relabel attributes according to the bijection ``mapping``."""
        new_items = []
        for attribute, value in self._items:
            new_items.append((mapping.get(attribute, attribute), value))
        renamed = Tup(new_items)
        if len(renamed) != len(self):
            raise SchemaError(f"renaming {dict(mapping)!r} is not injective on {self}")
        return renamed

    def compatible_with(self, other: "Tup") -> bool:
        """Whether the two tuples agree on their shared attributes."""
        shared = self.attributes & other.attributes
        return all(self[a] == other[a] for a in shared)

    def merge(self, other: "Tup") -> "Tup":
        """Natural-join merge of two compatible tuples (union of the functions)."""
        if not self.compatible_with(other):
            raise SchemaError(f"cannot merge incompatible tuples {self} and {other}")
        combined = dict(self._items)
        combined.update(other.items())
        return Tup(combined)

    # -- protocol --------------------------------------------------------------
    def __reduce__(self):
        # Canonical tuples unpickle through the fast constructor: the items
        # are sorted by construction, so re-validation happens only under
        # REPRO_DEBUG_TUPLES (the receiving process's setting -- worker
        # pools propagate the parent's flag in their init payload).
        return (Tup._from_sorted_items, (self._items,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tup):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(("Tup", self._items))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}={v!r}" for a, v in self._items)
        return f"Tup({inner})"

    def __str__(self) -> str:
        return "(" + ", ".join(f"{a}: {v}" for a, v in self._items) + ")"
