"""Datalog syntax: rules and programs (Section 5 of the paper).

The paper considers "pure" datalog: every subgoal of every rule is a
relational atom (no arithmetic, no negation).  A :class:`Program` is a finite
set of :class:`Rule` objects; relations that never appear in a rule head are
extensional (EDB), the others are intensional (IDB).

Textual syntax (one rule per line, ``%`` comments)::

    Q(x, y) :- R(x, y)
    Q(x, y) :- Q(x, z), Q(z, y)
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, Sequence

from repro.errors import DatalogError, ParseError
from repro.logic import Atom, Constant, Variable, parse_atom  # noqa: F401 (Variable used in head_attributes)

__all__ = ["Rule", "Program"]


class Rule:
    """A datalog rule ``head :- body`` where every subgoal is a relational atom."""

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: Sequence[Atom]):
        self.head = head
        self.body = tuple(body)
        if not self.body:
            raise DatalogError(f"rule for {head} has an empty body (facts belong in the EDB)")
        head_variables = head.variables
        body_variables = frozenset(v for atom in self.body for v in atom.variables)
        unsafe = head_variables - body_variables
        if unsafe:
            raise DatalogError(
                f"unsafe rule {self}: head variables {sorted(v.name for v in unsafe)} "
                "do not occur in the body"
            )

    @classmethod
    def parse(cls, text: str) -> "Rule":
        """Parse ``"Q(x, y) :- R(x, z), R(z, y)"`` into a rule."""
        text = text.strip().rstrip(".")
        if ":-" not in text:
            raise ParseError(f"missing ':-' in rule {text!r}")
        head_text, body_text = text.split(":-", 1)
        head = parse_atom(head_text)
        body_parts = _split_top_level_commas(body_text)
        if not body_parts:
            raise ParseError(f"empty body in rule {text!r}")
        return cls(head, [parse_atom(part) for part in body_parts])

    @property
    def variables(self) -> frozenset[Variable]:
        """All variables of the rule."""
        result = set(self.head.variables)
        for atom in self.body:
            result |= atom.variables
        return frozenset(result)

    def is_unit_rule(self) -> bool:
        """Whether the body consists of a single IDB-eligible atom.

        The paper's Theorem 6.5 singles out *unit rules*: rules whose body is
        a single atom.  (Whether that atom is actually an IDB atom depends on
        the program; :meth:`Program.unit_rules` applies that refinement.)
        """
        return len(self.body) == 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash(("Rule", self.head, self.body))

    def __repr__(self) -> str:
        return f"Rule({self})"

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}"


class Program:
    """A datalog program: a finite list of rules plus an output predicate.

    The output predicate defaults to the head predicate of the first rule.
    EDB predicates are those that never occur in a rule head.
    """

    def __init__(self, rules: Iterable[Rule], *, output: str | None = None):
        self.rules = tuple(rules)
        if not self.rules:
            raise DatalogError("a datalog program needs at least one rule")
        self.output = output or self.rules[0].head.relation
        if self.output not in self.idb_predicates:
            raise DatalogError(
                f"output predicate {self.output!r} is not defined by any rule"
            )
        self._check_arities()

    @classmethod
    def parse(cls, text: str, *, output: str | None = None) -> "Program":
        """Parse a multi-line rule listing (``%`` starts a comment)."""
        rules = []
        for raw_line in text.splitlines():
            line = raw_line.split("%", 1)[0].strip()
            if not line:
                continue
            rules.append(Rule.parse(line))
        if not rules:
            raise ParseError("no rules found in program text")
        return cls(rules, output=output)

    # -- structure ------------------------------------------------------------
    @property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by some rule head (intensional relations)."""
        return frozenset(rule.head.relation for rule in self.rules)

    @property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates that only occur in rule bodies (extensional relations)."""
        used = frozenset(
            atom.relation for rule in self.rules for atom in rule.body
        )
        return used - self.idb_predicates

    @property
    def predicates(self) -> frozenset[str]:
        """All predicates mentioned by the program."""
        return self.idb_predicates | self.edb_predicates

    def arity(self, predicate: str) -> int:
        """Arity of a predicate as used by the program."""
        return self._arities()[predicate]

    def _arities(self) -> Dict[str, int]:
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                arities.setdefault(atom.relation, atom.arity)
        return arities

    def _check_arities(self) -> None:
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                existing = arities.setdefault(atom.relation, atom.arity)
                if existing != atom.arity:
                    raise DatalogError(
                        f"predicate {atom.relation} used with arities {existing} and {atom.arity}"
                    )

    def head_attributes(self, predicate: str) -> tuple[str, ...] | None:
        """Attribute names for an IDB predicate, taken from a rule head.

        When some rule for ``predicate`` has a head consisting of distinct
        variables (e.g. ``Q(x, y)``), those variable names make natural
        column names for the materialized result; otherwise ``None`` is
        returned and callers fall back to generated names.
        """
        for rule in self.rules_for(predicate):
            names = [term.name for term in rule.head.terms if isinstance(term, Variable)]
            if len(names) == rule.head.arity and len(set(names)) == len(names):
                return tuple(names)
        return None

    def rules_for(self, predicate: str) -> list[Rule]:
        """The rules whose head predicate is ``predicate``."""
        return [rule for rule in self.rules if rule.head.relation == predicate]

    def unit_rules(self) -> list[Rule]:
        """Rules whose body is a single IDB atom (Theorem 6.5's unit rules)."""
        return [
            rule
            for rule in self.rules
            if len(rule.body) == 1 and rule.body[0].relation in self.idb_predicates
        ]

    def is_recursive(self) -> bool:
        """Whether some IDB predicate (transitively) depends on itself."""
        dependencies: Dict[str, set[str]] = {p: set() for p in self.idb_predicates}
        for rule in self.rules:
            for atom in rule.body:
                if atom.relation in self.idb_predicates:
                    dependencies[rule.head.relation].add(atom.relation)
        # simple reachability check per predicate
        for start in dependencies:
            seen: set[str] = set()
            frontier = list(dependencies[start])
            while frontier:
                current = frontier.pop()
                if current == start:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                frontier.extend(dependencies.get(current, ()))
        return False

    def constants(self) -> frozenset:
        """All constants mentioned by the program's rules."""
        values = set()
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                for term in atom.terms:
                    if isinstance(term, Constant):
                        values.add(term.value)
        return frozenset(values)

    # -- protocol --------------------------------------------------------------
    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules, output={self.output!r})"

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def _split_top_level_commas(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]
