"""Datalog provenance in the power-series semiring ``N-inf[[X]]`` (Section 6).

For every derivable output tuple the provenance is:

* an **exact polynomial** when the tuple has finitely many derivation trees
  (All-Trees' positive case);
* otherwise a **formal power series**, reported as a truncation that is exact
  for every monomial of total degree up to a chosen bound, with coefficients
  that are provably infinite marked ``infinity`` (Theorem 6.5 / the
  Monomial-Coefficient algorithm govern when that happens).

The truncated series are computed by Kleene iteration in the truncated
power-series semiring.  The iteration is exact because round ``r`` of the
fixpoint accounts for every derivation tree of height at most ``r``, and a
monomial of total degree ``d`` with a *finite* coefficient only receives
contributions from trees of height at most ``(d + 1) * (number of IDB atoms
+ 1)``: any taller tree must repeat an IDB atom along a leaf-free (unit-rule)
chain, which by Theorem 6.5 forces the coefficient to be infinite.  So after
that many rounds every still-changing coefficient is infinite and is marked
as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.errors import DatalogError
from repro.datalog.all_trees import all_trees, default_edb_ids
from repro.datalog.finiteness import ProvenanceClass, classify_provenance
from repro.datalog.grounding import GroundAtom, GroundProgram, ground_program
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.semirings.base import Semiring
from repro.semirings.numeric import INFINITY, NatInf
from repro.semirings.polynomial import Monomial, Polynomial
from repro.semirings.power_series import FormalPowerSeries, PowerSeriesSemiring

__all__ = [
    "DatalogProvenance",
    "DatalogCircuitProvenance",
    "datalog_provenance",
    "datalog_circuit_provenance",
]


@dataclass
class DatalogProvenance:
    """Provenance series for every derivable IDB atom of a datalog query.

    ``series`` maps each atom to a :class:`FormalPowerSeries`: exact
    (``truncation_degree is None``) for atoms with polynomial provenance,
    truncated otherwise.  ``classification`` records which provenance
    semiring each atom needs (Theorem 6.5's trichotomy).
    """

    ground: GroundProgram
    edb_ids: Dict[GroundAtom, str]
    series: Dict[GroundAtom, FormalPowerSeries]
    classification: Dict[GroundAtom, ProvenanceClass]
    truncation_degree: int

    def provenance(self, atom: GroundAtom | tuple) -> FormalPowerSeries:
        """The provenance series of an output/IDB atom (tuples name output atoms)."""
        if not isinstance(atom, GroundAtom):
            atom = GroundAtom(self.ground.program.output, tuple(atom))
        try:
            return self.series[atom]
        except KeyError:
            raise DatalogError(f"{atom} is not a derivable IDB atom") from None

    def coefficient(self, atom: GroundAtom | tuple, monomial: Monomial | str) -> NatInf:
        """Exact coefficient of ``monomial`` via the Monomial-Coefficient algorithm.

        Unlike reading the truncated series, this works for monomials of any
        degree.
        """
        from repro.datalog.monomial_coefficient import monomial_coefficient

        if not isinstance(atom, GroundAtom):
            atom = GroundAtom(self.ground.program.output, tuple(atom))
        result = monomial_coefficient(
            self.ground.program, self.ground.database, atom, monomial, edb_ids=self.edb_ids
        )
        return result.coefficient

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, object]) -> Dict[GroundAtom, object]:
        """Evaluate the *exact* (polynomial) provenance in an ω-continuous semiring.

        Only atoms whose provenance is an exact polynomial are evaluated;
        this is the datalog factorization theorem (Theorem 6.4) restricted to
        the polynomial case, which is what can be done without taking limits.
        The fixpoint engine evaluates the remaining atoms directly.
        """
        coerced = {k: semiring.coerce(v) for k, v in valuation.items()}
        values: Dict[GroundAtom, object] = {}
        for atom, series in self.series.items():
            if series.is_exact:
                values[atom] = series.to_polynomial().evaluate(semiring, coerced)
        return values

    def output_series(self) -> Dict[GroundAtom, FormalPowerSeries]:
        """Provenance series of the output predicate's atoms only."""
        output = self.ground.program.output
        return {atom: s for atom, s in self.series.items() if atom.relation == output}


@dataclass
class DatalogCircuitProvenance:
    """Hash-consed circuit provenance for the convergent IDB atoms of a query.

    The compact counterpart of :class:`DatalogProvenance`: every atom with
    finitely many derivation trees gets a circuit denoting exactly its
    ``N[X]`` provenance polynomial (compare with
    :func:`~repro.datalog.all_trees.all_trees`), built by running the
    *unchanged* fixpoint engine over the circuit semiring.  Atoms with
    infinitely many derivations cannot be represented by a finite circuit
    and are listed in ``divergent`` (use the series machinery of
    :func:`datalog_provenance` for those).
    """

    ground: GroundProgram
    edb_ids: Dict[GroundAtom, str]
    circuits: Dict[GroundAtom, Any]
    divergent: frozenset[GroundAtom]
    iterations: int

    def provenance(self, atom: GroundAtom | tuple) -> Any:
        """The provenance circuit of an output/IDB atom (tuples name output atoms)."""
        if not isinstance(atom, GroundAtom):
            atom = GroundAtom(self.ground.program.output, tuple(atom))
        try:
            return self.circuits[atom]
        except KeyError:
            if atom in self.divergent:
                raise DatalogError(
                    f"{atom} has infinitely many derivations; its provenance is a "
                    "proper power series, not a circuit (use datalog_provenance)"
                ) from None
            raise DatalogError(f"{atom} is not a derivable IDB atom") from None

    def output_circuits(self) -> Dict[GroundAtom, Any]:
        """Provenance circuits of the output predicate's atoms only."""
        output = self.ground.program.output
        return {a: c for a, c in self.circuits.items() if a.relation == output}

    def to_polynomials(self) -> Dict[GroundAtom, Polynomial]:
        """Expand every circuit into its ``N[X]`` polynomial (may be large)."""
        from repro.circuits.evaluate import to_polynomial

        return {atom: to_polynomial(c) for atom, c in self.circuits.items()}

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, object]) -> Dict[GroundAtom, object]:
        """Evaluate every circuit in ``semiring`` with one shared memo pass.

        The circuit form of the factorization theorem (Theorem 6.4 restricted
        to polynomial provenance): subcircuits shared between atoms are
        evaluated once.
        """
        from repro.circuits.evaluate import CircuitEvaluator

        evaluator = CircuitEvaluator(semiring, valuation)
        return {atom: evaluator(c) for atom, c in self.circuits.items()}

    # Alias mirroring the module-level ``specialize`` naming.
    specialize = evaluate


def datalog_circuit_provenance(
    program: Program | str,
    database: Database,
    *,
    edb_ids: Mapping[GroundAtom, str] | None = None,
    on_divergence: str = "skip",
    engine: str = "naive",
) -> DatalogCircuitProvenance:
    """Compute hash-consed circuit provenance by running datalog over ``Circ[X]``.

    The EDB facts are abstractly tagged with circuit variables (the same
    deterministic tuple ids as the series path, so results are directly
    comparable) and the ordinary Kleene engine of
    :mod:`repro.datalog.fixpoint` does the rest -- no provenance-specific
    evaluation code.  The program is grounded once; the engine then solves
    a re-annotated copy of that grounding directly.  ``on_divergence`` is
    forwarded to the engine: ``"skip"`` (default) records atoms with
    infinite provenance in ``divergent`` and keeps the exact circuits of
    the rest; ``"error"`` raises :class:`~repro.errors.DivergenceError`
    instead.  ``engine="seminaive"`` solves the re-annotated grounding in
    one topological pass (:func:`repro.datalog.seminaive.solve_ground_seminaive`)
    instead of Kleene rounds; the circuits are structurally identical.
    """
    from repro.circuits.semiring import CircuitSemiring
    from repro.datalog.fixpoint import _check_engine, solve_ground
    from repro.datalog.seminaive import solve_ground_seminaive

    _check_engine(engine)
    if isinstance(program, str):
        program = Program.parse(program)
    ground = ground_program(program, database)
    ids = dict(edb_ids) if edb_ids is not None else default_edb_ids(ground)

    circ = CircuitSemiring()
    circuit_ground = ground.reannotate(
        {atom: circ.var(ids[atom]) for atom in ground.edb_atoms}
    )

    solver = solve_ground_seminaive if engine == "seminaive" else solve_ground
    result = solver(circuit_ground, circ, on_divergence=on_divergence)
    circuits = {
        atom: circuit
        for atom, circuit in result.annotations.items()
        if not circ.is_zero(circuit)
    }
    return DatalogCircuitProvenance(
        ground=ground,
        edb_ids=ids,
        circuits=circuits,
        divergent=result.divergent_atoms,
        iterations=result.iterations,
    )


def datalog_provenance(
    program: Program | str,
    database: Database,
    *,
    truncation_degree: int = 6,
    edb_ids: Mapping[GroundAtom, str] | None = None,
    provenance: str = "series",
    engine: str = "naive",
) -> DatalogProvenance | DatalogCircuitProvenance:
    """Compute the ``N-inf[[X]]`` provenance of a datalog query (Definition 6.1).

    ``truncation_degree`` bounds the total degree up to which coefficients of
    *proper* (non-polynomial) series are reported; polynomial provenance is
    always exact regardless of the bound.

    ``provenance`` selects the representation: ``"series"`` (default) is the
    paper's expanded polynomial / truncated power-series form;
    ``"circuit"`` returns a :class:`DatalogCircuitProvenance` with
    hash-consed DAG annotations instead -- exact for every convergent atom
    and asymptotically smaller under deep fixpoints.

    ``engine`` selects how the exact polynomial provenance of the convergent
    atoms is computed: ``"naive"`` (default) uses All-Trees' memoized
    recursion, ``"seminaive"`` solves the grounding re-annotated over
    ``N[X]`` with :func:`repro.datalog.seminaive.solve_ground_seminaive`
    (Theorem 5.6 guarantees the two coincide).  For ``provenance="circuit"``
    the option is forwarded to :func:`datalog_circuit_provenance`.  The
    truncated power series of the divergent atoms are engine-independent.
    """
    if provenance == "circuit":
        return datalog_circuit_provenance(
            program, database, edb_ids=edb_ids, engine=engine
        )
    if provenance != "series":
        raise DatalogError(
            f"provenance must be 'series' or 'circuit', got {provenance!r}"
        )
    from repro.datalog.fixpoint import _check_engine

    _check_engine(engine)
    if isinstance(program, str):
        program = Program.parse(program)
    ground = ground_program(program, database)
    ids = dict(edb_ids) if edb_ids is not None else default_edb_ids(ground)

    report = classify_provenance(ground)
    if engine == "seminaive":
        polynomials, infinite_atoms = _seminaive_polynomials(ground, ids)
    else:
        finite_result = all_trees(program, database, edb_ids=ids)
        polynomials = finite_result.polynomials
        infinite_atoms = finite_result.infinite

    series: Dict[GroundAtom, FormalPowerSeries] = {}
    for atom, polynomial in polynomials.items():
        series[atom] = FormalPowerSeries.from_polynomial(polynomial)
    if infinite_atoms:
        truncated = _truncated_series_fixpoint(
            ground, ids, truncation_degree=truncation_degree
        )
        for atom in infinite_atoms:
            series[atom] = truncated[atom]

    return DatalogProvenance(
        ground=ground,
        edb_ids=ids,
        series=series,
        classification=dict(report.classification),
        truncation_degree=truncation_degree,
    )


def _seminaive_polynomials(
    ground: GroundProgram,
    ids: Mapping[GroundAtom, str],
) -> tuple[Dict[GroundAtom, Polynomial], frozenset[GroundAtom]]:
    """Exact ``N[X]`` provenance of the convergent atoms via the semi-naive solver.

    Re-annotates the shared grounding with polynomial variables and solves it
    with ``on_divergence="skip"``: the kept annotations are exactly All-Trees'
    polynomials (the least fixpoint restricted to the acyclic sub-program is
    the sum over derivation trees), and the skipped atoms are exactly the
    atoms All-Trees classifies infinite.
    """
    from repro.datalog.seminaive import solve_ground_seminaive
    from repro.semirings.polynomial import ProvenancePolynomialSemiring

    missing = ground.edb_atoms - set(ids)
    if missing:
        raise DatalogError(f"edb_ids is missing ids for {len(missing)} EDB fact(s)")
    polynomial_ground = ground.reannotate(
        {atom: Polynomial.var(ids[atom]) for atom in ground.edb_atoms}
    )
    result = solve_ground_seminaive(
        polynomial_ground, ProvenancePolynomialSemiring(), on_divergence="skip"
    )
    return result.annotations, result.divergent_atoms


def _truncated_series_fixpoint(
    ground: GroundProgram,
    ids: Mapping[GroundAtom, str],
    *,
    truncation_degree: int,
) -> Dict[GroundAtom, FormalPowerSeries]:
    """Kleene iteration in the degree-truncated power-series semiring.

    After the stabilization bound (see the module docstring) any coefficient
    that is still changing is marked ``infinity``.
    """
    semiring = PowerSeriesSemiring(truncation_degree=truncation_degree)
    idb_atoms = sorted(
        ground.idb_atoms, key=lambda a: (a.relation, tuple(map(str, a.values)))
    )
    edb_series = {
        atom: FormalPowerSeries.var(ids[atom], truncation_degree)
        for atom in ground.edb_atoms
    }
    values: Dict[GroundAtom, FormalPowerSeries] = {
        atom: semiring.zero() for atom in idb_atoms
    }

    bound = (truncation_degree + 1) * (len(idb_atoms) + 1) + 1

    def one_round(current: Dict[GroundAtom, FormalPowerSeries]) -> Dict[GroundAtom, FormalPowerSeries]:
        updated: Dict[GroundAtom, FormalPowerSeries] = {}
        for atom in idb_atoms:
            total = semiring.zero()
            for rule in ground.rules_with_head(atom):
                product = semiring.one()
                for body_atom in rule.body:
                    if ground.is_edb(body_atom):
                        factor = edb_series[body_atom]
                    else:
                        factor = current.get(body_atom, semiring.zero())
                    product = semiring.mul(product, factor)
                total = semiring.add(total, product)
            updated[atom] = total
        return updated

    for _ in range(bound):
        updated = one_round(values)
        if updated == values:
            return updated
        values = updated

    # One more round to discover which coefficients are still growing.
    final_round = one_round(values)
    stabilized: Dict[GroundAtom, FormalPowerSeries] = {}
    for atom in idb_atoms:
        before, after = values[atom], final_round[atom]
        terms: Dict[Monomial, NatInf] = {}
        monomials = {m for m, _ in before.terms} | {m for m, _ in after.terms}
        for monomial in monomials:
            coefficient_before = before.coefficient(monomial)
            coefficient_after = after.coefficient(monomial)
            if coefficient_before == coefficient_after:
                terms[monomial] = coefficient_after
            else:
                terms[monomial] = INFINITY
        stabilized[atom] = FormalPowerSeries(terms, truncation_degree)
    return stabilized
