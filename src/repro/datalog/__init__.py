"""Datalog on K-relations: fixpoint semantics, provenance series and the Section 7/8 algorithms."""

from repro.datalog.algebraic_system import AlgebraicSystem, build_algebraic_system
from repro.datalog.all_trees import AllTreesResult, all_trees, bag_multiplicities, default_edb_ids
from repro.datalog.derivations import (
    DerivationTree,
    count_derivation_trees,
    enumerate_derivation_trees,
)
from repro.datalog.finiteness import (
    FinitenessReport,
    ProvenanceClass,
    analyze_finiteness,
    classify_provenance,
)
from repro.datalog.fixpoint import (
    DatalogResult,
    evaluate,
    evaluate_program,
    immediate_consequence,
    solve_ground,
)
from repro.datalog.grounding import GroundAtom, GroundProgram, GroundRule, ground_program
from repro.datalog.lattice_eval import (
    LatticeDatalogResult,
    evaluate_on_lattice,
    lattice_condition_provenance,
)
from repro.datalog.monomial_coefficient import MonomialCoefficientResult, monomial_coefficient
from repro.datalog.seminaive import evaluate_program_seminaive, solve_ground_seminaive
from repro.datalog.provenance import (
    DatalogCircuitProvenance,
    DatalogProvenance,
    datalog_circuit_provenance,
    datalog_provenance,
)
from repro.datalog.syntax import Program, Rule
from repro.datalog.translate import cq_to_program, ucq_to_program

__all__ = [
    "Program",
    "Rule",
    "GroundAtom",
    "GroundRule",
    "GroundProgram",
    "ground_program",
    "DatalogResult",
    "evaluate",
    "evaluate_program",
    "immediate_consequence",
    "solve_ground",
    "evaluate_program_seminaive",
    "solve_ground_seminaive",
    "AlgebraicSystem",
    "build_algebraic_system",
    "DerivationTree",
    "enumerate_derivation_trees",
    "count_derivation_trees",
    "AllTreesResult",
    "all_trees",
    "bag_multiplicities",
    "default_edb_ids",
    "MonomialCoefficientResult",
    "monomial_coefficient",
    "FinitenessReport",
    "ProvenanceClass",
    "classify_provenance",
    "analyze_finiteness",
    "LatticeDatalogResult",
    "lattice_condition_provenance",
    "evaluate_on_lattice",
    "DatalogProvenance",
    "DatalogCircuitProvenance",
    "datalog_provenance",
    "datalog_circuit_provenance",
    "cq_to_program",
    "ucq_to_program",
]
