"""Semi-naive, delta-driven datalog evaluation (``engine="seminaive"``).

The naive engine of :mod:`repro.datalog.fixpoint` first *grounds* the whole
program (enumerating every rule instantiation from scratch in every round of
a Boolean pre-fixpoint) and then Kleene-iterates the immediate-consequence
operator over all ground rules until nothing changes.  Both steps redo work
proportional to everything derived so far.  This module evaluates rules
directly against :class:`~repro.relations.krelation.KRelation`s instead:

* every rule is compiled once into a set of **join plans** -- one *seed*
  plan for rules whose body is entirely extensional and one *delta variant*
  per intensional body occurrence -- with a fixed greedy atom order and, for
  each non-driver atom, the tuple of positions that are bound when the atom
  is matched;
* every predicate keeps **variable-binding hash indexes** on exactly the
  position sets its plans probe; indexes are built once and maintained
  incrementally as new tuples are derived, so they are reused across rounds;
* each round fires only the plan variants whose **driver** is a delta atom
  (a tuple whose annotation changed in the previous round), accumulating the
  new contributions into the stored relations via
  :meth:`~repro.relations.krelation.KRelation.merge_delta`.

Exactness
---------
For semirings with **idempotent addition** the accumulated values form a
monotone chain squeezed between the Kleene iterates and the least fixpoint,
so the engine converges to exactly the annotations of Definition 5.1 --
re-adding a contribution that was already absorbed is harmless when
``a + a = a``.

For **non-idempotent** semirings (``N``, ``N[X]``, circuits, power series)
accumulation would double-count, and exact values exist only for atoms with
finitely many derivation trees.  The engine therefore runs its delta-driven
machinery once in *collect* mode over the Boolean support -- deriving every
fact and recording every rule instantiation, which is the instantiation the
naive engine computes far more expensively -- then reuses the existing
cycle/finiteness analysis of :class:`~repro.datalog.grounding.GroundProgram`
(``atoms_with_infinite_derivations``, exactly as the naive engine and
All-Trees do) and evaluates the acyclic remainder in a **single topological
pass**.  Divergent atoms are handled identically to the naive engine:
``on_divergence="top"`` pins them to the semiring's top element (raising
:class:`~repro.errors.DivergenceError` when there is none), ``"error"``
always raises, and ``"skip"`` drops them while keeping the exact annotations
of the convergent atoms.

The result is a :class:`~repro.datalog.fixpoint.DatalogResult` that agrees
annotation-for-annotation with the naive engine (the differential
property-test suite in ``tests/datalog/test_seminaive_vs_naive.py`` checks
this on randomized programs over every shipped semiring).  For idempotent
semirings the result's ``ground`` carries the derivable atoms and EDB
annotations but **no rule instantiations** -- never materializing them is
where the speed comes from (see ``benchmarks/bench_seminaive.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.engine import vectorized as _vectorized
from repro.engine.kernels import combine_contributions
from repro.errors import DatalogError, DivergenceError
from repro.obs import trace as _trace
from repro.datalog.fixpoint import (
    DEFAULT_MAX_ITERATIONS,
    DatalogResult,
    classify_divergence,
    immediate_consequence,
)
from repro.datalog.grounding import (
    GroundAtom,
    GroundProgram,
    GroundRule,
    collect_edb_annotations,
)
from repro.datalog.syntax import Program, Rule
from repro.logic import Constant, Variable
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.storage import ColumnarRowStore
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring

__all__ = ["evaluate_program_seminaive", "solve_ground_seminaive"]

# Post-match opcodes: bind a slot / check against a slot / check a constant.
_BIND, _CHECK_SLOT, _CHECK_CONST = 0, 1, 2


class _AtomStep:
    """Compiled matcher for one body atom at a fixed point of a join plan.

    ``key_positions``/``key_parts`` describe the index probe (positions whose
    value is already determined when the atom is reached: constants and
    variables bound by earlier atoms); ``post`` lists what to do with the
    remaining positions of a candidate tuple.  The driver atom of a plan has
    an empty key -- it is iterated, not probed.
    """

    __slots__ = ("predicate", "orig_index", "key_positions", "key_parts", "post")

    def __init__(
        self,
        predicate: str,
        orig_index: int,
        key_positions: Tuple[int, ...],
        key_parts: Tuple[Tuple[bool, Any], ...],
        post: Tuple[Tuple[int, int, Any], ...],
    ):
        self.predicate = predicate
        self.orig_index = orig_index
        self.key_positions = key_positions
        self.key_parts = key_parts  # (is_slot, slot-or-constant) per key position
        self.post = post  # (position, opcode, slot-or-constant)

    def match(self, values: Sequence[Any], env: List[Any]) -> bool:
        """Bind/check the non-key positions of a candidate tuple."""
        for position, opcode, payload in self.post:
            value = values[position]
            if opcode == _BIND:
                env[payload] = value
            elif opcode == _CHECK_SLOT:
                if env[payload] != value:
                    return False
            elif payload != value:
                return False
        return True


class _Plan:
    """A compiled evaluation order for one rule with a designated driver atom."""

    __slots__ = ("rule_index", "driver", "steps", "head_relation", "head_parts", "n_slots", "body_predicates")

    def __init__(
        self,
        rule_index: int,
        driver: _AtomStep,
        steps: Tuple[_AtomStep, ...],
        head_relation: str,
        head_parts: Tuple[Tuple[bool, Any], ...],
        n_slots: int,
        body_predicates: Tuple[str, ...],
    ):
        self.rule_index = rule_index
        self.driver = driver
        self.steps = steps  # non-driver atoms, in join order
        self.head_relation = head_relation
        self.head_parts = head_parts  # (is_slot, slot-or-constant) per head position
        self.n_slots = n_slots
        self.body_predicates = body_predicates  # original body order


def _compile_plan(
    rule: Rule,
    rule_index: int,
    driver_index: int | None,
    sizes: Dict[str, int] | None = None,
) -> _Plan:
    """Compile ``rule`` with ``body[driver_index]`` as the iterated driver.

    ``driver_index=None`` compiles the **head-driven** variant used by the
    deletion rederive pass: no atom is iterated (``plan.driver`` is None),
    the head's variables are treated as already bound, and every body atom
    becomes an indexed probe step -- evaluating the plan for one bound head
    is one application of the rule's immediate-consequence operator
    restricted to that single atom.

    The remaining atoms are ordered greedily by estimated selectivity: first
    by how many of their positions are determined (constants + already-bound
    variables) so index probes are as selective as possible, then -- among
    equally-bound candidates -- by the EDB cardinalities in ``sizes``, so
    smaller relations are probed first and dead bindings are pruned before
    the large relations are touched (predicates without statistics, i.e.
    IDB stores whose eventual size is unknown, sort last).  The order, and
    with it every index key, is fixed at compile time and reused for every
    round of every evaluation.
    """
    sizes = sizes or {}

    def estimated_size(predicate: str) -> float:
        return float(sizes.get(predicate, float("inf")))
    slots: Dict[str, int] = {}
    for variable in sorted(rule.variables, key=lambda v: v.name):
        slots[variable.name] = len(slots)

    def build_step(index: int, bound: Set[str]) -> _AtomStep:
        atom = rule.body[index]
        key_positions: List[int] = []
        key_parts: List[Tuple[bool, Any]] = []
        post: List[Tuple[int, int, Any]] = []
        seen_here: Set[str] = set()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                key_positions.append(position)
                key_parts.append((False, term.value))
            elif term.name in bound:
                key_positions.append(position)
                key_parts.append((True, slots[term.name]))
            elif term.name in seen_here:
                post.append((position, _CHECK_SLOT, slots[term.name]))
            else:
                seen_here.add(term.name)
                post.append((position, _BIND, slots[term.name]))
        return _AtomStep(
            atom.relation, index, tuple(key_positions), tuple(key_parts), tuple(post)
        )

    def build_driver(index: int) -> _AtomStep:
        atom = rule.body[index]
        post: List[Tuple[int, int, Any]] = []
        seen_here: Set[str] = set()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                post.append((position, _CHECK_CONST, term.value))
            elif term.name in seen_here:
                post.append((position, _CHECK_SLOT, slots[term.name]))
            else:
                seen_here.add(term.name)
                post.append((position, _BIND, slots[term.name]))
        return _AtomStep(atom.relation, index, (), (), tuple(post))

    def determinable(index: int, bound: Set[str]) -> int:
        return sum(
            1
            for term in rule.body[index].terms
            if isinstance(term, Constant) or term.name in bound
        )

    if driver_index is None:
        driver = None
        bound = {v.name for v in rule.head.variables}
        remaining = list(range(len(rule.body)))
    else:
        driver = build_driver(driver_index)
        bound = {v.name for v in rule.body[driver_index].variables}
        remaining = [i for i in range(len(rule.body)) if i != driver_index]
    steps: List[_AtomStep] = []
    while remaining:
        best = max(
            remaining,
            key=lambda i: (
                determinable(i, bound),
                -estimated_size(rule.body[i].relation),
                -i,
            ),
        )
        remaining.remove(best)
        steps.append(build_step(best, bound))
        bound |= {v.name for v in rule.body[best].variables}

    head_parts: List[Tuple[bool, Any]] = []
    for term in rule.head.terms:
        if isinstance(term, Constant):
            head_parts.append((False, term.value))
        else:
            head_parts.append((True, slots[term.name]))

    return _Plan(
        rule_index,
        driver,
        tuple(steps),
        rule.head.relation,
        tuple(head_parts),
        len(slots),
        tuple(atom.relation for atom in rule.body),
    )


class _Store:
    """A predicate's facts: the backing KRelation plus positional-row indexes.

    ``rows`` caches each tuple's values in schema order; ``indexes`` maps a
    tuple of positions to a hash index over those positions.  Indexes are
    created once per (plan, atom) binding pattern and maintained
    incrementally -- annotation updates never touch them, only genuinely new
    tuples are inserted.
    """

    __slots__ = (
        "relation",
        "attributes",
        "rows",
        "indexes",
        "sorted_spec",
        "append_only",
        "_positions",
    )

    def __init__(self, relation: KRelation):
        self.relation = relation
        self.attributes = relation.schema.attributes
        self.rows: List[Tuple[tuple, Tup]] = [
            (tup.values_for(self.attributes), tup) for tup in relation
        ]
        self.indexes: Dict[Tuple[int, ...], Dict[tuple, list]] = {}
        #: ``(attribute, row position)`` pairs in sorted-attribute order:
        #: turns a positional row into a canonical Tup's sorted item list
        #: without re-sorting per tuple (see ``_SemiNaiveEngine._merge``).
        self.sorted_spec: Tuple[Tuple[str, int], ...] = tuple(
            sorted((a, i) for i, a in enumerate(self.attributes))
        )
        #: False once any row was removed: the row order then no longer
        #: mirrors the backing relation's insertion order, which disables
        #: the columnar zero-copy annotation path (``_build_annotations``).
        self.append_only = True
        # Lazy Tup -> position map, built on the first removal only so
        # insert-only runs pay nothing for deletion support.
        self._positions: Dict[Tup, int] | None = None

    def ensure_index(self, positions: Tuple[int, ...]) -> None:
        if positions in self.indexes:
            return
        index: Dict[tuple, list] = {}
        for values, tup in self.rows:
            key = tuple(values[p] for p in positions)
            index.setdefault(key, []).append((values, tup))
        self.indexes[positions] = index

    def insert(self, values: tuple, tup: Tup) -> None:
        if self._positions is not None:
            self._positions[tup] = len(self.rows)
        self.rows.append((values, tup))
        for positions, index in self.indexes.items():
            key = tuple(values[p] for p in positions)
            index.setdefault(key, []).append((values, tup))

    def remove(self, tup: Tup) -> tuple | None:
        """Drop ``tup``'s row (swap-with-last) and unhook it from every index.

        Returns the removed row's values, or ``None`` when the tuple is not
        stored.  The caller is responsible for the backing relation's
        annotation (see ``_SemiNaiveEngine._remove_rows``).
        """
        if self._positions is None:
            self._positions = {tup_: i for i, (_, tup_) in enumerate(self.rows)}
        position = self._positions.pop(tup, None)
        if position is None:
            return None
        values, _ = self.rows[position]
        last = len(self.rows) - 1
        if position != last:
            moved = self.rows[last]
            self.rows[position] = moved
            self._positions[moved[1]] = position
        self.rows.pop()
        self.append_only = False
        for positions, index in self.indexes.items():
            key = tuple(values[p] for p in positions)
            bucket = index.get(key)
            if bucket:
                for i, (_, candidate) in enumerate(bucket):
                    if candidate == tup:
                        bucket.pop(i)
                        break
                if not bucket:
                    del index[key]
        return values


def _idb_schema(program: Program, database: Database, predicate: str) -> Schema:
    """Schema for an IDB predicate's store (mirrors DatalogResult.relation)."""
    if predicate in database:
        return database.relation(predicate).schema
    names = program.head_attributes(predicate)
    return Schema(names or [f"c{i + 1}" for i in range(program.arity(predicate))])


class _SemiNaiveEngine:
    """The delta-driven evaluation loop shared by both annotation modes.

    ``collect=False`` accumulates semiring annotations (exact for idempotent
    addition); ``collect=True`` runs over the Boolean support and records
    every fired rule instantiation, producing the grounded program the
    non-idempotent solver feeds to the finiteness analysis.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        *,
        collect: bool,
        maintain_edb: bool = False,
        storage: Any = None,
    ):
        self.program = program
        self.database = database
        self.collect = collect
        self.maintain_edb = maintain_edb
        self.semiring: Semiring = BooleanSemiring() if collect else database.semiring
        self.edb_annotations = collect_edb_annotations(program, database)
        self.instantiations: Set[Tuple[int, GroundAtom, Tuple[GroundAtom, ...]]] = set()

        from repro.engine.compile import resolve_execution_storage

        #: Physical backend for the IDB stores (explicit > env > database).
        self.storage_kind = resolve_execution_storage(storage, database)
        # Whole-column round batching: with a columnar backend, a numpy
        # runtime and vector arithmetic for the semiring, single-step plans
        # (delta driver + one indexed atom, binds only) fire array-at-a-time
        # (:func:`repro.engine.vectorized.fire_linear_join`) instead of the
        # per-derivation descend loop.  Annotate mode only -- collect mode
        # must record individual instantiations.
        self._vector_ops = None
        if not collect and self.storage_kind == "columnar":
            self._vector_ops = _vectorized.vector_ops_for(self.semiring)
        self._vec_recipes: Dict[int, Any] = {}
        self._encoders: Dict[Tuple[str, int], "_vectorized.ColumnEncoder"] = {}
        self._ann_arrays: Dict[str, Tuple[Any, int, Any]] = {}

        idb = program.idb_predicates
        self.stores: Dict[str, _Store] = {}
        # EDB cardinalities feed the selectivity-ordered join plans; IDB
        # predicates are absent (their eventual size is unknown at compile
        # time) and therefore sort last among equally-bound probe candidates.
        sizes: Dict[str, int] = {}
        for predicate in program.edb_predicates:
            relation = database.relation(predicate)
            sizes[predicate] = len(relation)
            if collect:
                relation = relation.map_annotations(lambda _: True, self.semiring)
            self.stores[predicate] = _Store(relation)
        for predicate in idb:
            schema = _idb_schema(program, database, predicate)
            self.stores[predicate] = _Store(
                KRelation(self.semiring, schema, storage=self.storage_kind)
            )

        # With ``maintain_edb`` the engine additionally compiles a delta
        # variant per EDB body occurrence, so an EDB insertion can later be
        # treated exactly like a derived delta: fire only the plans driven by
        # the changed predicate and resume the loop from the maintained
        # stores and indexes (see repro.incremental.datalog).
        self.seed_plans: List[_Plan] = []
        self.delta_plans: Dict[str, List[_Plan]] = {
            predicate: [] for predicate in (program.predicates if maintain_edb else idb)
        }
        for rule_index, rule in enumerate(program.rules):
            idb_positions = [
                i for i, atom in enumerate(rule.body) if atom.relation in idb
            ]
            if not idb_positions:
                # Choose the seed driver greedily too: most constants first,
                # then the smallest relation (fewest outer iterations).
                driver = max(
                    range(len(rule.body)),
                    key=lambda i: (
                        sum(isinstance(t, Constant) for t in rule.body[i].terms),
                        -float(sizes.get(rule.body[i].relation, float("inf"))),
                        -i,
                    ),
                )
                self.seed_plans.append(_compile_plan(rule, rule_index, driver, sizes))
                delta_positions = range(len(rule.body)) if maintain_edb else ()
            else:
                delta_positions = (
                    range(len(rule.body)) if maintain_edb else idb_positions
                )
            for position in delta_positions:
                plan = _compile_plan(rule, rule_index, position, sizes)
                self.delta_plans[rule.body[position].relation].append(plan)
        for plan in self.seed_plans + [p for ps in self.delta_plans.values() for p in ps]:
            for step in plan.steps:
                self.stores[step.predicate].ensure_index(step.key_positions)
        # Head-driven plans for the deletion rederive pass, compiled lazily
        # on the first delete so insert-only maintenance pays nothing.
        self._sizes = sizes
        self._rederive_plans: Dict[str, List[_Plan]] | None = None
        # Optional per-update change tracking (see begin_changelog): callers
        # maintaining a cached result patch it from the changed tuples
        # instead of rescanning every store after each update.
        self.changelog: Dict[str, Set[Tup]] | None = None

    # -- change tracking --------------------------------------------------------
    def begin_changelog(self) -> Dict[str, Set[Tup]]:
        """Start recording which stored tuples the next updates touch.

        Every tuple whose stored annotation changes -- merged, re-derived or
        removed -- is added to the returned ``predicate -> tuples`` map until
        :meth:`end_changelog`.  A recorded tuple may end up unchanged on the
        net (removed then re-derived to the same value); readers must consult
        the store for the tuple's current state rather than assume a delta.
        """
        self.changelog = {}
        return self.changelog

    def end_changelog(self) -> None:
        self.changelog = None

    def _log_changes(self, predicate: str, tups: Iterable[Tup]) -> None:
        log = self.changelog
        if log is not None:
            log.setdefault(predicate, set()).update(tups)

    # -- whole-column plan firing ----------------------------------------------
    def _vector_recipe(self, plan: _Plan):
        """The ``(step predicate, key, head)`` wiring when ``plan`` is a
        vectorizable single-step plan, else ``None``.

        Vectorizable means: exactly one non-driver atom, driver and step
        bind fresh distinct variables only (no constants, no repeated
        variables -- those compile to ``_CHECK_*`` opcodes), the step's
        probe key references driver-bound slots only, and every head
        position is a bound variable.  This covers the linear recursion
        shapes (transitive closure, reachability, shortest path) that
        dominate the fixpoint rounds.
        """
        if len(plan.steps) != 1:
            return None
        driver, step = plan.driver, plan.steps[0]
        if any(opcode != _BIND for _, opcode, _ in driver.post):
            return None
        driver_positions = {payload: position for position, _, payload in driver.post}
        if any(opcode != _BIND for _, opcode, _ in step.post):
            return None
        step_positions = {payload: position for position, _, payload in step.post}
        key = []
        for position, (is_slot, payload) in zip(step.key_positions, step.key_parts):
            if not is_slot or payload not in driver_positions:
                return None
            key.append((driver_positions[payload], position))
        head = []
        for is_slot, payload in plan.head_parts:
            if not is_slot:
                return None
            if payload in driver_positions:
                head.append(("p", driver_positions[payload]))
            elif payload in step_positions:
                head.append(("b", step_positions[payload]))
            else:
                return None
        return step.predicate, key, head

    def _build_column(self, predicate: str, position: int):
        """The step relation's encoded column at ``position`` (incremental)."""
        encoder = self._encoders.get((predicate, position))
        rows = self.stores[predicate].rows
        if encoder is not None and len(encoder) > len(rows):
            # A removal shrank the store below the cached prefix: the encoder
            # no longer mirrors the row order, rebuild it from scratch.
            encoder = None
        if encoder is None:
            encoder = self._encoders[(predicate, position)] = _vectorized.ColumnEncoder()
        if len(encoder) < len(rows):
            encoder.extend(values[position] for values, _ in rows[len(encoder):])
        return encoder.column()

    def _build_annotations(self, predicate: str):
        """The step relation's lifted annotation array, cached by store version.

        EDB relations never mutate during a run, so their array is built
        once for the whole fixpoint; IDB arrays are rebuilt in rounds whose
        merge actually changed the predicate.
        """
        store = self.stores[predicate]
        relation_store = store.relation._store
        version = getattr(relation_store, "version", None)
        cached = self._ann_arrays.get(predicate)
        if cached is not None and cached[0] == version and cached[1] == len(store.rows):
            return cached[2]
        if (
            isinstance(relation_store, ColumnarRowStore)
            and store.append_only
            and len(relation_store.tuples) == len(store.rows)
        ):
            # Both sequences grew append-only from the same update stream
            # (``merge_delta`` appends, ``insert`` mirrors it), so equal
            # length means identical order and the columnar store's parallel
            # annotation list is already row-aligned.  A removal on either
            # side reorders them independently (both discard by swapping
            # with the last row), so any removed store (``append_only``
            # False) takes the per-row lookup path below instead.
            values = relation_store.annotations
        else:
            annotations = store.relation._annotations
            values = [annotations[tup] for _, tup in store.rows]
        array = self._vector_ops.to_array(values)
        if version is not None:
            self._ann_arrays[predicate] = (version, len(store.rows), array)
        return array

    def _fire_vectorized(
        self, plan: _Plan, recipe, driver_rows, out, driver_annotations=None
    ) -> bool:
        step_predicate, key, head = recipe
        ops = self._vector_ops
        if not self.stores[step_predicate].rows:
            return True
        try:
            probe_needed = {p for p, _ in key} | {k for side, k in head if side == "p"}
            probe_cols = {
                position: _vectorized._encode_column(
                    [values[position] for values, _ in driver_rows]
                )
                for position in probe_needed
            }
            if driver_annotations is None:
                driver_annotations = self.stores[
                    plan.driver.predicate
                ].relation._annotations
            probe_ann = ops.to_array(
                [driver_annotations[tup] for _, tup in driver_rows]
            )
            build_needed = {p for _, p in key} | {k for side, k in head if side == "b"}
            build_cols = {
                position: self._build_column(step_predicate, position)
                for position in build_needed
            }
            build_ann = self._build_annotations(step_predicate)
        except (TypeError, _vectorized._Fallback):
            return False  # unhashable / unliftable values: row path instead
        return _vectorized.fire_linear_join(
            ops,
            probe_cols,
            probe_ann,
            build_cols,
            build_ann,
            key,
            head,
            out[plan.head_relation],
        )

    # -- one plan, one batch of driver rows -----------------------------------
    def _fire(
        self,
        plan: _Plan,
        driver_rows: Sequence[Tuple[tuple, Tup]],
        out,
        driver_annotations=None,
    ) -> None:
        """Fire ``plan`` for ``driver_rows``, emitting contributions into ``out``.

        ``driver_annotations`` overrides the driver predicate's stored
        annotation map -- the partition-parallel workers ship delta rows
        together with their annotations instead of replicating the parent's
        IDB stores, so the rows may be absent from this engine's own store.
        """
        if self._vector_ops is not None and driver_rows:
            recipe = self._vec_recipes.get(id(plan), False)
            if recipe is False:
                recipe = self._vector_recipe(plan)
                self._vec_recipes[id(plan)] = recipe
            if recipe is not None and self._fire_vectorized(
                plan, recipe, driver_rows, out, driver_annotations
            ):
                return
        semiring = self.semiring
        mul = semiring.mul
        stores = self.stores
        steps = plan.steps
        depth = len(steps)
        env: List[Any] = [None] * plan.n_slots
        collect = self.collect
        body_values: List[tuple] = [()] * len(plan.body_predicates)
        driver = plan.driver
        if driver_annotations is None:
            driver_annotations = stores[driver.predicate].relation._annotations
        head_parts = plan.head_parts
        emit = out[plan.head_relation]

        def descend(level: int, annotation: Any) -> None:
            if level == depth:
                head = tuple(
                    env[payload] if is_slot else payload
                    for is_slot, payload in head_parts
                )
                if collect:
                    self.instantiations.add(
                        (
                            plan.rule_index,
                            GroundAtom(plan.head_relation, head),
                            tuple(
                                GroundAtom(predicate, body_values[i])
                                for i, predicate in enumerate(plan.body_predicates)
                            ),
                        )
                    )
                    emit[head] = True
                else:
                    # Batched accumulation (shared with the physical engine):
                    # contributions are collected per head tuple and combined
                    # with one +-chain in ``_merge``, instead of a semiring
                    # ``add`` per derivation here.
                    batch = emit.get(head)
                    if batch is None:
                        emit[head] = [annotation]
                    else:
                        batch.append(annotation)
                return
            step = steps[level]
            store = stores[step.predicate]
            key = tuple(
                env[payload] if is_slot else payload
                for is_slot, payload in step.key_parts
            )
            bucket = store.indexes[step.key_positions].get(key)
            if not bucket:
                return
            annotations = store.relation._annotations
            for values, tup in bucket:
                if step.match(values, env):
                    if collect:
                        body_values[step.orig_index] = values
                        descend(level + 1, annotation)
                    else:
                        descend(level + 1, mul(annotation, annotations[tup]))

        for values, tup in driver_rows:
            if driver.match(values, env):
                if collect:
                    body_values[driver.orig_index] = values
                    descend(0, True)
                else:
                    descend(0, driver_annotations[tup])

    # -- the delta loop ---------------------------------------------------------
    def run(self, max_iterations: int) -> int:
        """Seed, then fire delta variants until a round changes nothing.

        Returns the number of rounds executed (the seed round counts, and so
        does the final round that merges an empty delta).
        """
        with _trace.span(
            "datalog.seed",
            mode="collect" if self.collect else "annotate",
            plans=len(self.seed_plans),
        ) as sp:
            out = self._fresh()
            for plan in self.seed_plans:
                self._fire(plan, self.stores[plan.driver.predicate].rows, out)
            delta = self._merge(out)
            if _trace.enabled():
                sp.set(delta_rows=sum(len(rows) for rows in delta.values()))
        return self._drain(delta, max_iterations, iterations=1)

    def _fresh(self) -> Dict[str, Dict[tuple, Any]]:
        return {predicate: {} for predicate in self.program.idb_predicates}

    def _drain(
        self,
        delta: Dict[str, List[Tuple[tuple, Tup]]],
        max_iterations: int,
        *,
        iterations: int,
    ) -> int:
        """Fire delta variants until a round changes nothing; return the round count."""
        while any(delta.values()):
            if iterations >= max_iterations:
                raise DivergenceError(
                    f"datalog evaluation over {self.database.semiring.name} did not "
                    f"converge within {max_iterations} iterations"
                )
            iterations += 1
            with _trace.span("datalog.round", round=iterations) as sp:
                if _trace.enabled():
                    sp.set(
                        delta_rows=sum(len(rows) for rows in delta.values()),
                        delta_predicates=sum(1 for rows in delta.values() if rows),
                    )
                out = self._fresh()
                for predicate, rows in delta.items():
                    if not rows:
                        continue
                    for plan in self.delta_plans[predicate]:
                        self._fire(plan, rows, out)
                delta = self._merge(out)
        return iterations

    def apply_edb_delta(
        self,
        predicate: str,
        updates: List[Tuple[Tup, Any]],
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> int:
        """Merge EDB ``updates`` and resume the fixpoint from the stored state.

        ``updates`` are canonical ``(tup, value)`` pairs over ``predicate``'s
        schema; values combine into the stored annotations with the
        semiring's ``+`` (in collect mode the value is ignored -- support is
        all that matters).  Only the plans driven by the changed predicate
        fire, against the incrementally maintained stores and indexes, then
        the ordinary delta loop drains the consequences.  Requires
        ``maintain_edb=True``; returns the number of rounds executed.
        """
        if not self.maintain_edb:
            raise DatalogError(
                "engine was built without maintain_edb=True; "
                "EDB deltas cannot be applied incrementally"
            )
        store = self.stores[predicate]
        relation = store.relation
        if self.collect:
            updates = [(tup, True) for tup, _ in updates]
        known = relation._annotations
        new_tuples = {tup for tup, _ in updates if tup not in known}
        changed = relation.merge_delta(updates)
        self._log_changes(predicate, changed)
        rows: List[Tuple[tuple, Tup]] = []
        for tup in changed:
            values = tup.values_for(store.attributes)
            if tup in new_tuples:
                store.insert(values, tup)
            rows.append((values, tup))
        if not rows:
            return 0
        out = self._fresh()
        for plan in self.delta_plans.get(predicate, ()):
            self._fire(plan, rows, out)
        delta = self._merge(out)
        return self._drain(delta, max_iterations, iterations=1)

    # -- deletion (DRed) --------------------------------------------------------
    def _invalidate_vector_state(self, predicate: str) -> None:
        """Drop cached columns/annotation arrays after rows were removed."""
        self._ann_arrays.pop(predicate, None)
        for key in [k for k in self._encoders if k[0] == predicate]:
            del self._encoders[key]

    def _remove_rows(self, predicate: str, rows: Sequence[Tuple[tuple, Tup]]) -> None:
        """Remove rows from a predicate's store *and* its backing relation."""
        if not rows:
            return
        store = self.stores[predicate]
        annotations = store.relation._annotations
        for _, tup in rows:
            store.remove(tup)
            annotations.pop(tup, None)
        self._log_changes(predicate, (tup for _, tup in rows))
        self._invalidate_vector_state(predicate)

    @staticmethod
    def _tup_for(store: _Store, values: tuple) -> Tup:
        return Tup._from_sorted_items(
            tuple((a, values[i]) for a, i in store.sorted_spec)
        )

    def _fire_heads(
        self,
        plan: _Plan,
        driver_rows: Sequence[Tuple[tuple, Tup]],
        affected: Dict[str, Set[tuple]],
    ) -> None:
        """Collect the head tuples ``plan`` derives from ``driver_rows``.

        The over-deletion half of DRed only needs *which* heads a removed
        fact supports, not annotation products, so this is ``_fire`` without
        the semiring arithmetic (and without instantiation recording).
        """
        stores = self.stores
        steps = plan.steps
        depth = len(steps)
        env: List[Any] = [None] * plan.n_slots
        head_parts = plan.head_parts
        out = affected.setdefault(plan.head_relation, set())

        def descend(level: int) -> None:
            if level == depth:
                out.add(
                    tuple(
                        env[payload] if is_slot else payload
                        for is_slot, payload in head_parts
                    )
                )
                return
            step = steps[level]
            store = stores[step.predicate]
            key = tuple(
                env[payload] if is_slot else payload
                for is_slot, payload in step.key_parts
            )
            bucket = store.indexes[step.key_positions].get(key)
            if not bucket:
                return
            for values, _ in bucket:
                if step.match(values, env):
                    descend(level + 1)

        driver = plan.driver
        for values, _ in driver_rows:
            if driver.match(values, env):
                descend(0)

    def _ensure_rederive_plans(self) -> None:
        if self._rederive_plans is not None:
            return
        plans: Dict[str, List[_Plan]] = {}
        for rule_index, rule in enumerate(self.program.rules):
            plan = _compile_plan(rule, rule_index, None, self._sizes)
            plans.setdefault(rule.head.relation, []).append(plan)
            for step in plan.steps:
                self.stores[step.predicate].ensure_index(step.key_positions)
        self._rederive_plans = plans

    def _rederive_value(self, predicate: str, values: tuple) -> Any:
        """One immediate-consequence application restricted to a single atom.

        Evaluates every head-driven plan of ``predicate`` with the head bound
        to ``values`` against the *current* stores, returning the combined
        annotation -- or ``None`` when no rule body matches (the atom has no
        derivation left and stays deleted).
        """
        contributions: List[Any] = []
        mul = self.semiring.mul
        stores = self.stores
        for plan in self._rederive_plans.get(predicate, ()):
            env: List[Any] = [None] * plan.n_slots
            bound_slots: Set[int] = set()
            ok = True
            for position, (is_slot, payload) in enumerate(plan.head_parts):
                value = values[position]
                if is_slot:
                    if payload in bound_slots:
                        if env[payload] != value:
                            ok = False
                            break
                    else:
                        env[payload] = value
                        bound_slots.add(payload)
                elif payload != value:
                    ok = False
                    break
            if not ok:
                continue
            steps = plan.steps
            depth = len(steps)

            def descend(level: int, annotation: Any) -> None:
                if level == depth:
                    contributions.append(annotation)
                    return
                step = steps[level]
                store = stores[step.predicate]
                key = tuple(
                    env[payload] if is_slot else payload
                    for is_slot, payload in step.key_parts
                )
                bucket = store.indexes[step.key_positions].get(key)
                if not bucket:
                    return
                annotations = store.relation._annotations
                for row_values, tup in bucket:
                    if step.match(row_values, env):
                        descend(level + 1, mul(annotation, annotations[tup]))

            descend(0, self.semiring.one())
        if not contributions:
            return None
        return combine_contributions(self.semiring, contributions)

    def delete_edb(
        self,
        predicate: str,
        tuples: Sequence[Tup],
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> Tuple[int, int, int]:
        """DRed deletion of EDB facts in annotate (idempotent) mode.

        Over-deletes everything the removed facts transitively support --
        per round, the maintained delta plans fire with the round's doomed
        rows as drivers *before* those rows leave the stores, so derivations
        whose body contains several co-deleted atoms are still caught --
        then re-derives the survivors: each over-deleted atom is re-seeded
        by a head-driven immediate-consequence evaluation over the shrunk
        stores and the ordinary delta loop drains the consequences.  Exact
        for idempotent addition by the usual semi-naive argument (the
        surviving atoms' derivation sets are unchanged, and re-added
        contributions are absorbed).

        Returns ``(overdeleted, rederived, rounds)`` -- over-deleted and
        re-derived IDB row counts plus the total round count (over-delete
        rounds + rederive drain rounds).  Requires ``maintain_edb=True`` and
        annotate mode; collect mode deletes via :meth:`delete_support`.
        """
        if not self.maintain_edb:
            raise DatalogError(
                "engine was built without maintain_edb=True; "
                "EDB deletions cannot be applied incrementally"
            )
        if self.collect:
            raise DatalogError("delete_edb is annotate-mode only; use delete_support")
        store = self.stores[predicate]
        attributes = store.attributes
        known = store.relation._annotations
        rows = [
            (tup.values_for(attributes), tup) for tup in tuples if tup in known
        ]
        if not rows:
            return (0, 0, 0)
        for values, _ in rows:
            self.edb_annotations.pop(GroundAtom(predicate, values), None)

        # Phase 1: over-delete, one round per support layer.
        pending: Dict[str, List[Tuple[tuple, Tup]]] = {predicate: rows}
        removed: Dict[str, List[Tuple[tuple, Tup]]] = {}
        overdeleted = 0
        rounds = 0
        while pending:
            rounds += 1
            affected: Dict[str, Set[tuple]] = {}
            for pred, pending_rows in pending.items():
                for plan in self.delta_plans.get(pred, ()):
                    self._fire_heads(plan, pending_rows, affected)
            for pred, pending_rows in pending.items():
                self._remove_rows(pred, pending_rows)
            pending = {}
            for pred, heads in affected.items():
                head_store = self.stores[pred]
                head_known = head_store.relation._annotations
                next_rows = []
                for values in heads:
                    tup = self._tup_for(head_store, values)
                    if tup in head_known:
                        next_rows.append((values, tup))
                if next_rows:
                    pending[pred] = next_rows
                    removed.setdefault(pred, []).extend(next_rows)
                    overdeleted += len(next_rows)

        # Phase 2: re-derive survivors from their remaining derivations.
        self._ensure_rederive_plans()
        rederived = 0
        delta: Dict[str, List[Tuple[tuple, Tup]]] = {}
        for pred, removed_rows in removed.items():
            head_store = self.stores[pred]
            updates = []
            for values, tup in removed_rows:
                value = self._rederive_value(pred, values)
                if value is not None:
                    updates.append((tup, value))
            if not updates:
                continue
            changed = head_store.relation.merge_delta(updates)
            self._log_changes(pred, changed)
            new_rows = []
            for tup in changed:
                values = tup.values_for(head_store.attributes)
                head_store.insert(values, tup)
                new_rows.append((values, tup))
            rederived += len(new_rows)
            delta[pred] = new_rows
        if any(delta.values()):
            rounds = self._drain(delta, max_iterations, iterations=rounds)
        return (overdeleted, rederived, rounds)

    def delete_support(
        self, predicate: str, tuples: Sequence[Tup]
    ) -> Tuple[int, int, frozenset]:
        """DRed deletion on the instantiation graph, for collect mode.

        The maintained instantiation set records every fired rule
        application, so deletion never refires a join: over-deletion walks
        the instantiations that mention a removed atom in their body, and
        rederivation revives any over-deleted head that still has an
        instantiation whose body atoms are all alive -- classical
        delete/rederive, with the maintained grounding as the support graph.
        Exact because the shrunk database's instantiations are a subset of
        the fired ones.  Dead atoms leave the Boolean stores, the pruned
        instantiation set, and ``edb_annotations``; annotations re-solve
        lazily from the pruned grounding.

        Returns ``(overdeleted, rederived, dead_atoms)`` -- counts of IDB
        atoms over-deleted and revived, and the frozenset of ground atoms
        (deleted EDB facts plus dead IDB atoms) that left the support.
        """
        if not self.maintain_edb:
            raise DatalogError(
                "engine was built without maintain_edb=True; "
                "EDB deletions cannot be applied incrementally"
            )
        if not self.collect:
            raise DatalogError("delete_support is collect-mode only; use delete_edb")
        store = self.stores[predicate]
        attributes = store.attributes
        known = store.relation._annotations
        deleted_atoms: Set[GroundAtom] = set()
        for tup in tuples:
            if tup in known:
                atom = GroundAtom(predicate, tup.values_for(attributes))
                deleted_atoms.add(atom)
                self.edb_annotations.pop(atom, None)
        if not deleted_atoms:
            return (0, 0, frozenset())

        by_body: Dict[GroundAtom, List[Any]] = {}
        by_head: Dict[GroundAtom, List[Any]] = {}
        for inst in self.instantiations:
            by_head.setdefault(inst[1], []).append(inst)
            for atom in inst[2]:
                by_body.setdefault(atom, []).append(inst)

        # Over-delete: anything a removed atom (transitively) supports.
        removed: Set[GroundAtom] = set(deleted_atoms)
        overdeleted: Set[GroundAtom] = set()
        worklist = list(deleted_atoms)
        while worklist:
            atom = worklist.pop()
            for inst in by_body.get(atom, ()):
                head = inst[1]
                if head not in removed:
                    removed.add(head)
                    overdeleted.add(head)
                    worklist.append(head)

        # Re-derive: revive heads with a fully-alive instantiation left.
        def alive(inst) -> bool:
            return all(atom not in removed for atom in inst[2])

        rederived: Set[GroundAtom] = set()
        queue = [
            head
            for head in overdeleted
            if any(alive(inst) for inst in by_head.get(head, ()))
        ]
        while queue:
            head = queue.pop()
            if head not in removed:
                continue
            removed.discard(head)
            rederived.add(head)
            for inst in by_body.get(head, ()):
                candidate = inst[1]
                if (
                    candidate in removed
                    and candidate not in deleted_atoms
                    and alive(inst)
                ):
                    queue.append(candidate)

        # Prune the maintained grounding and the Boolean stores.
        self.instantiations = {
            inst
            for inst in self.instantiations
            if inst[1] not in removed and all(atom not in removed for atom in inst[2])
        }
        by_predicate: Dict[str, List[GroundAtom]] = {}
        for atom in removed:
            by_predicate.setdefault(atom.relation, []).append(atom)
        for pred, atoms in by_predicate.items():
            dead_store = self.stores[pred]
            dead_known = dead_store.relation._annotations
            rows = []
            for atom in atoms:
                tup = self._tup_for(dead_store, atom.values)
                if tup in dead_known:
                    rows.append((atom.values, tup))
            self._remove_rows(pred, rows)
        return (len(overdeleted), len(rederived), frozenset(removed))

    def _merge(self, out: Dict[str, Dict[tuple, Any]]) -> Dict[str, List[Tuple[tuple, Tup]]]:
        """Accumulate a round's contributions; return the delta rows per predicate.

        In annotation mode each head tuple's contribution batch is combined
        with one ``+``-chain (:func:`repro.engine.kernels.combine_contributions`)
        before it is merged into the store -- the same batched-accumulation
        kernel the physical engine's pipeline breaker uses.
        """
        semiring = self.semiring
        collect = self.collect
        delta: Dict[str, List[Tuple[tuple, Tup]]] = {}
        for predicate, contributions in out.items():
            store = self.stores[predicate]
            if not contributions:
                delta[predicate] = []
                continue
            relation = store.relation
            sorted_spec = store.sorted_spec
            from_sorted = Tup._from_sorted_items
            by_tup = {
                from_sorted(tuple((a, values[i]) for a, i in sorted_spec)): values
                for values in contributions
            }
            known = relation._annotations
            new_tuples = {tup for tup in by_tup if tup not in known}
            if collect:
                updates = ((tup, contributions[by_tup[tup]]) for tup in by_tup)
            else:
                updates = (
                    (tup, combine_contributions(semiring, contributions[by_tup[tup]]))
                    for tup in by_tup
                )
            changed = relation.merge_delta(updates)
            self._log_changes(predicate, changed)
            rows: List[Tuple[tuple, Tup]] = []
            for tup in changed:
                values = by_tup[tup]
                if tup in new_tuples:
                    store.insert(values, tup)
                rows.append((values, tup))
            delta[predicate] = rows
        return delta

    # -- results ----------------------------------------------------------------
    def derivable_atoms(self) -> Set[GroundAtom]:
        known = set(self.edb_annotations)
        for predicate in self.program.idb_predicates:
            for values, _ in self.stores[predicate].rows:
                known.add(GroundAtom(predicate, values))
        return known

    def annotations(self) -> Dict[GroundAtom, Any]:
        values: Dict[GroundAtom, Any] = {}
        for predicate in self.program.idb_predicates:
            store = self.stores[predicate]
            annotations = store.relation._annotations
            for row_values, tup in store.rows:
                values[GroundAtom(predicate, row_values)] = annotations[tup]
        return values

    def ground_program(self) -> GroundProgram:
        """The instantiation recorded by a collect-mode run.

        Equivalent to :func:`repro.datalog.grounding.ground_program` -- every
        instantiation is fired at least once by the variant driven by its
        last-derived body atom -- but computed by indexed semi-naive joins
        instead of re-enumerating all matches in every Boolean round.
        """
        rules = [
            GroundRule(head, body, rule_index)
            for rule_index, head, body in sorted(
                self.instantiations,
                key=lambda entry: (
                    entry[0],
                    entry[1].relation,
                    tuple(map(str, entry[1].values)),
                    tuple(str(atom) for atom in entry[2]),
                ),
            )
        ]
        return GroundProgram(
            self.program,
            self.database,
            rules,
            self.edb_annotations,
            self.derivable_atoms(),
        )


def _run_engine(engine: "_SemiNaiveEngine", max_iterations: int, parallel: Any) -> int:
    """Run the fixpoint, partition-parallel when requested and possible.

    The parallel coordinator mutates the same engine through the same
    ``_merge`` discipline, so the stores end up identical either way; it
    returns ``None`` to decline (collect mode, a semiring outside the
    parallel whitelist, no remote-safe plan), in which case the ordinary
    serial loop runs on the still-untouched engine.
    """
    import os

    if parallel is not None or os.environ.get("REPRO_PARALLEL"):
        from repro.parallel import resolve_parallel

        resolved = resolve_parallel(parallel)
        if resolved:
            from repro.parallel.datalog import run_engine_parallel

            iterations = run_engine_parallel(
                engine, max_iterations=max_iterations, parallel=resolved
            )
            if iterations is not None:
                return iterations
    return engine.run(max_iterations)


def evaluate_program_seminaive(
    program: Program | str,
    database: Database,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    on_divergence: str = "top",
    storage: Any = None,
    parallel: Any = None,
) -> DatalogResult:
    """Semi-naive counterpart of :func:`repro.datalog.fixpoint.evaluate_program`.

    Same contract and same results; see the module docstring for how the two
    semiring regimes are handled.  Callers normally reach this through
    ``evaluate_program(..., engine="seminaive")``.

    ``parallel`` (an integer worker count, ``True``, an executor, or
    ``None`` deferring to ``REPRO_PARALLEL``) runs the annotate-mode rounds
    partition-parallel (:mod:`repro.parallel.datalog`); collect-mode runs
    and semirings without a canonical picklable carrier decline to the
    serial loop and the result is identical either way.
    """
    if on_divergence not in ("top", "error", "skip"):
        raise ValueError(
            f"on_divergence must be 'top', 'error' or 'skip', got {on_divergence!r}"
        )
    if isinstance(program, str):
        program = Program.parse(program)
    semiring = database.semiring

    if semiring.idempotent_add:
        engine = _SemiNaiveEngine(program, database, collect=False, storage=storage)
        iterations = _run_engine(engine, max_iterations, parallel)
        # The grounded instantiation was never materialized -- that is the
        # point -- so the result's ``ground`` carries no rule list.
        ground = GroundProgram(
            program,
            database,
            [],
            engine.edb_annotations,
            engine.derivable_atoms(),
        )
        return DatalogResult(
            annotations=engine.annotations(),
            iterations=iterations,
            divergent_atoms=frozenset(),
            ground=ground,
        )

    engine = _SemiNaiveEngine(program, database, collect=True, storage=storage)
    # The Boolean support fixpoint always terminates (finitely many ground
    # atoms), so the caller's iteration budget -- meant for the value
    # iteration -- does not apply here, matching the naive engine whose
    # grounding pre-pass is equally uncapped.  Collect mode records rule
    # instantiations and therefore always declines the parallel path.
    engine.run(max(max_iterations, DEFAULT_MAX_ITERATIONS))
    ground = engine.ground_program()
    return solve_ground_seminaive(
        ground,
        semiring,
        max_iterations=max_iterations,
        on_divergence=on_divergence,
    )


def solve_ground_seminaive(
    ground: GroundProgram,
    semiring: Semiring,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    on_divergence: str = "top",
) -> DatalogResult:
    """Semi-naive solver for an already-grounded program.

    The counterpart of :func:`repro.datalog.fixpoint.solve_ground`, used by
    the provenance paths (which re-annotate a shared grounding with circuit
    or polynomial variables).  Non-idempotent semirings are solved by one
    topological pass over the convergent (acyclic) atoms after the usual
    divergence analysis; idempotent semirings by rounds of a dependency-aware
    worklist that only recomputes atoms whose rule bodies changed.
    """
    divergent, finite = classify_divergence(ground, semiring, on_divergence)
    zero = semiring.zero()

    def recompute(atom: GroundAtom, values: Dict[GroundAtom, Any]) -> Any:
        # One application of T_q restricted to a single atom -- the same
        # operator (and code) the naive engine iterates over all atoms.
        return immediate_consequence(ground, semiring, values, atoms=(atom,))[atom]

    values: Dict[GroundAtom, Any] = {}
    if divergent and on_divergence == "top":
        top = semiring.top()
        for atom in divergent:
            values[atom] = top

    if not semiring.idempotent_add:
        # One pass in dependency order: every rule body of a convergent atom
        # only mentions EDB facts and convergent atoms evaluated earlier.
        for atom in _topological_order(ground, finite):
            values[atom] = recompute(atom, values)
        iterations = 1
    else:
        values.update({atom: zero for atom in finite})
        dependents: Dict[GroundAtom, Set[GroundAtom]] = {}
        for rule in ground.ground_rules:
            for body_atom in rule.body:
                if body_atom in finite:
                    dependents.setdefault(body_atom, set()).add(rule.head)
        dirty: Set[GroundAtom] = set(finite)
        iterations = 0
        while dirty:
            if iterations >= max_iterations:
                raise DivergenceError(
                    f"datalog evaluation over {semiring.name} did not converge within "
                    f"{max_iterations} iterations"
                )
            iterations += 1
            next_dirty: Set[GroundAtom] = set()
            for atom in dirty:
                updated = recompute(atom, values)
                if updated != values[atom]:
                    values[atom] = updated
                    next_dirty |= dependents.get(atom, set())
            dirty = next_dirty & finite

    return DatalogResult(
        annotations=values,
        iterations=iterations,
        divergent_atoms=divergent,
        ground=ground,
    )


def _topological_order(
    ground: GroundProgram, finite: Set[GroundAtom]
) -> List[GroundAtom]:
    """Kahn order of the finite IDB atoms under the grounded dependency graph."""
    dependents: Dict[GroundAtom, List[GroundAtom]] = {}
    in_degree: Dict[GroundAtom, int] = {atom: 0 for atom in finite}
    for atom in finite:
        seen: Set[GroundAtom] = set()
        for rule in ground.rules_with_head(atom):
            for body_atom in rule.body:
                if body_atom in finite and body_atom not in seen:
                    seen.add(body_atom)
                    dependents.setdefault(body_atom, []).append(atom)
                    in_degree[atom] += 1
    queue = [atom for atom, degree in in_degree.items() if degree == 0]
    order: List[GroundAtom] = []
    while queue:
        atom = queue.pop()
        order.append(atom)
        for dependent in dependents.get(atom, ()):
            in_degree[dependent] -= 1
            if in_degree[dependent] == 0:
                queue.append(dependent)
    if len(order) != len(finite):  # pragma: no cover - guarded by divergence analysis
        raise DivergenceError(
            "internal error: cycle among atoms classified as convergent"
        )
    return order
