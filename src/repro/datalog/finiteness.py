"""Finiteness analysis of datalog provenance series (Theorems 6.5 and the
classification used by Section 7's algorithms).

Given a grounded program, every derivable output tuple ``t`` falls into one
of three classes:

* ``POLYNOMIAL`` -- finitely many derivation trees; the provenance is a
  polynomial of ``N[X]`` (All-Trees answers "yes" and computes it);
* ``SERIES_FINITE_COEFFICIENTS`` -- infinitely many derivation trees but
  every monomial has a finite coefficient; the provenance lies in ``N[[X]]``
  (Theorem 6.5: no cycle of unit rules through the tuple);
* ``SERIES_INFINITE_COEFFICIENTS`` -- some monomial has coefficient
  ``infinity``; the provenance needs all of ``N-inf[[X]]`` (a unit-rule cycle
  feeds the tuple).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

from repro.datalog.grounding import GroundAtom, GroundProgram, ground_program
from repro.datalog.syntax import Program
from repro.relations.database import Database

__all__ = ["ProvenanceClass", "FinitenessReport", "classify_provenance", "analyze_finiteness"]


class ProvenanceClass(Enum):
    """Which provenance semiring is needed to express a tuple's annotation."""

    POLYNOMIAL = "N[X]"
    SERIES_FINITE_COEFFICIENTS = "N[[X]]"
    SERIES_INFINITE_COEFFICIENTS = "N∞[[X]]"


@dataclass
class FinitenessReport:
    """Per-atom provenance classification for a grounded program."""

    ground: GroundProgram
    classification: Dict[GroundAtom, ProvenanceClass]

    def provenance_class(self, atom: GroundAtom) -> ProvenanceClass:
        """Classification of a derivable IDB atom."""
        return self.classification[atom]

    def is_polynomial(self, atom: GroundAtom) -> bool:
        """Whether the atom's provenance series is a polynomial (All-Trees' question)."""
        return self.classification[atom] is ProvenanceClass.POLYNOMIAL

    def has_finite_coefficients(self, atom: GroundAtom) -> bool:
        """Theorem 6.5: whether every coefficient of the series is finite."""
        return self.classification[atom] is not ProvenanceClass.SERIES_INFINITE_COEFFICIENTS

    def atoms_in_class(self, provenance_class: ProvenanceClass) -> frozenset[GroundAtom]:
        """All atoms with the given classification."""
        return frozenset(
            atom
            for atom, cls in self.classification.items()
            if cls is provenance_class
        )

    def summary(self) -> Dict[str, int]:
        """Counts per class, keyed by the class's semiring name."""
        counts = {cls.value: 0 for cls in ProvenanceClass}
        for cls in self.classification.values():
            counts[cls.value] += 1
        return counts


def classify_provenance(ground: GroundProgram) -> FinitenessReport:
    """Classify every derivable IDB atom of a grounded program.

    The classification combines two reachability analyses on the grounded
    dependency graph: atoms downstream of *any* cycle have infinitely many
    derivation trees (their provenance is a proper series); among those, the
    atoms downstream of a cycle of grounded *unit rules* additionally have an
    infinite coefficient (Theorem 6.5).
    """
    infinite_trees = ground.atoms_with_infinite_derivations()
    infinite_coefficients = ground.atoms_with_unit_rule_cycles()
    classification: Dict[GroundAtom, ProvenanceClass] = {}
    for atom in ground.idb_atoms:
        if atom in infinite_coefficients:
            classification[atom] = ProvenanceClass.SERIES_INFINITE_COEFFICIENTS
        elif atom in infinite_trees:
            classification[atom] = ProvenanceClass.SERIES_FINITE_COEFFICIENTS
        else:
            classification[atom] = ProvenanceClass.POLYNOMIAL
    return FinitenessReport(ground=ground, classification=classification)


def analyze_finiteness(program: Program | str, database: Database) -> FinitenessReport:
    """Ground ``program`` over ``database`` and classify every output tuple."""
    if isinstance(program, str):
        program = Program.parse(program)
    return classify_provenance(ground_program(program, database))
