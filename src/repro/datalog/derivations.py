"""Derivation trees for grounded datalog programs (Definition 5.1).

A derivation tree for a ground atom ``t`` is built by picking a grounded rule
with head ``t`` and, recursively, derivation trees for every IDB body atom;
EDB body atoms are leaves.  The proof-theoretic datalog semantics annotates
``t`` with the sum, over all derivation trees, of the product of the leaf
annotations, and the provenance series counts trees per *fringe* (the bag of
leaf tuple ids).

This module enumerates derivation trees explicitly.  Enumeration is only
possible for atoms with finitely many trees (or up to a depth bound), but it
is invaluable for testing: the test suite cross-checks the fixpoint engine
and the provenance algorithms against brute-force tree enumeration on small
instances, which is the most direct reading of Definition 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import DatalogError
from repro.datalog.grounding import GroundAtom, GroundProgram
from repro.semirings.base import Semiring
from repro.semirings.polynomial import Monomial

__all__ = ["DerivationTree", "enumerate_derivation_trees", "count_derivation_trees"]


@dataclass(frozen=True)
class DerivationTree:
    """A derivation tree: a root atom, the grounded rule applied, and subtrees.

    EDB leaves are represented as trees with ``rule_index = None`` and no
    children.
    """

    root: GroundAtom
    rule_index: int | None
    children: Tuple["DerivationTree", ...] = ()

    @property
    def is_leaf(self) -> bool:
        """Whether this node is an EDB leaf."""
        return self.rule_index is None

    def leaves(self) -> Iterator[GroundAtom]:
        """Iterate over the EDB leaf atoms, left to right (with repetitions)."""
        if self.is_leaf:
            yield self.root
            return
        for child in self.children:
            yield from child.leaves()

    def fringe(self, edb_ids: Dict[GroundAtom, str]) -> Monomial:
        """The fringe as a monomial over the leaf tuple ids (a bag of labels)."""
        return Monomial.from_bag(edb_ids[leaf] for leaf in self.leaves())

    def leaf_product(self, semiring: Semiring, annotations: Dict[GroundAtom, object]) -> object:
        """The product of the leaf annotations in ``semiring`` (Definition 5.1)."""
        return semiring.product(annotations[leaf] for leaf in self.leaves())

    def depth(self) -> int:
        """Height of the tree (leaves have depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Number of nodes."""
        return 1 + sum(child.size() for child in self.children)

    def __str__(self) -> str:
        if self.is_leaf:
            return str(self.root)
        inner = ", ".join(str(child) for child in self.children)
        return f"{self.root} ⇐ [{inner}]"


def enumerate_derivation_trees(
    ground: GroundProgram,
    atom: GroundAtom,
    *,
    max_depth: int | None = None,
    max_trees: int | None = None,
) -> List[DerivationTree]:
    """Enumerate derivation trees for ``atom``.

    Without ``max_depth`` the atom must have finitely many trees (i.e. it
    must not lie downstream of a cycle of the grounded dependency graph);
    otherwise a :class:`DatalogError` is raised.  With ``max_depth`` the
    enumeration is truncated at that height, which is how the tests sample
    the infinite-tree cases of Figure 7.  ``max_trees`` caps the total number
    of trees returned.
    """
    if max_depth is None:
        infinite = ground.atoms_with_infinite_derivations()
        if atom in infinite:
            raise DatalogError(
                f"{atom} has infinitely many derivation trees; pass max_depth to sample them"
            )

    budget = [max_trees if max_trees is not None else float("inf")]

    def build(current: GroundAtom, remaining_depth: int | None) -> List[DerivationTree]:
        if ground.is_edb(current):
            return [DerivationTree(current, None)]
        if remaining_depth is not None and remaining_depth <= 1:
            return []
        trees: List[DerivationTree] = []
        next_depth = None if remaining_depth is None else remaining_depth - 1
        for rule in ground.rules_with_head(current):
            child_options = [build(body_atom, next_depth) for body_atom in rule.body]
            if any(not options for options in child_options):
                continue
            for combination in _cartesian(child_options):
                if budget[0] <= 0:
                    return trees
                trees.append(DerivationTree(current, rule.rule_index, tuple(combination)))
                budget[0] -= 1
        return trees

    if atom not in ground.derivable:
        return []
    return build(atom, max_depth)


def count_derivation_trees(
    ground: GroundProgram, atom: GroundAtom, *, max_depth: int
) -> int:
    """Count derivation trees of height at most ``max_depth`` (dynamic program).

    Used by tests to check the coefficients of truncated provenance series
    (e.g. the Catalan numbers of Figure 7) without materializing the trees.
    """
    cache: Dict[tuple[GroundAtom, int], int] = {}

    def count(current: GroundAtom, depth: int) -> int:
        if ground.is_edb(current):
            return 1
        if depth <= 1:
            return 0
        key = (current, depth)
        if key in cache:
            return cache[key]
        total = 0
        for rule in ground.rules_with_head(current):
            product = 1
            for body_atom in rule.body:
                product *= count(body_atom, depth - 1)
                if product == 0:
                    break
            total += product
        cache[key] = total
        return total

    return count(atom, max_depth)


def _cartesian(option_lists: List[List[DerivationTree]]) -> Iterator[tuple]:
    if not option_lists:
        yield ()
        return
    head, *tail = option_lists
    for choice in head:
        for rest in _cartesian(tail):
            yield (choice, *rest)
