"""Translation between positive relational algebra and (non-recursive) datalog.

Proposition 5.3 of the paper is the expected sanity check: an ``RA+`` query
whose selections only test attribute equality and its standard translation
into a non-recursive datalog program produce the same K-relation on every
K-database.  Proposition 6.2 is the analogous statement for provenance
(modulo the embedding of ``N[X]`` into ``N-inf[[X]]``).

This module implements the translation in the direction the propositions
need: unions of conjunctive queries -- the named fragment the paper evaluates
by sums of products -- become single-IDB datalog programs.  The tests
evaluate both sides over multiple semirings to check the propositions.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.syntax import Program, Rule
from repro.logic import Atom

__all__ = ["ucq_to_program", "cq_to_program"]


def cq_to_program(query: ConjunctiveQuery, *, output: str | None = None) -> Program:
    """Translate a single conjunctive query into a one-rule datalog program."""
    head = Atom(output or query.name, query.head_terms)
    return Program([Rule(head, query.body)], output=head.relation)


def ucq_to_program(
    query: UnionOfConjunctiveQueries | Sequence[ConjunctiveQuery],
    *,
    output: str | None = None,
) -> Program:
    """Translate a union of conjunctive queries into a non-recursive program.

    Every disjunct becomes one rule with a shared head predicate, so the
    datalog semantics (sum over derivation trees) coincides with the UCQ
    semantics (sum over disjuncts of sums over valuations).
    """
    if isinstance(query, UnionOfConjunctiveQueries):
        disjuncts = list(query.disjuncts)
        name = output or query.name
    else:
        disjuncts = list(query)
        name = output or (disjuncts[0].name if disjuncts else "Q")
    rules = [Rule(Atom(name, cq.head_terms), cq.body) for cq in disjuncts]
    return Program(rules, output=name)
