"""Datalog over finite distributive lattices (Section 8 of the paper).

When the annotation semiring ``K`` is a finite distributive lattice --
``B``, ``PosBool(B)``, the event sets ``P(Omega)``, the fuzzy semiring over a
finite value set -- datalog evaluation always terminates, even for tuples
with infinitely many derivation trees.  The paper obtains this by modifying
All-Trees to keep, per tuple, only the derivation trees whose fringe is
*minimal*; absorption (``a + a·b = a``) makes every non-minimal fringe
redundant, and by Dickson's lemma there are only finitely many minimal
fringes.

Operationally, keeping minimal fringes is the same as computing the tuple's
provenance in ``PosBool(X)`` (the free distributive lattice over the tuple
ids): multiplication idempotence flattens exponents and absorption removes
dominated monomials.  This module therefore evaluates the program once in
``PosBool(X)`` over the abstractly tagged EDB -- producing a boolean c-table,
the "datalog on c-tables" semantics the paper notes is new for incomplete
databases -- and then specializes the result to any distributive lattice via
the ``Eval_v`` homomorphism (Theorem 6.4 restricted to lattices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.errors import DatalogError
from repro.datalog.all_trees import default_edb_ids
from repro.datalog.fixpoint import evaluate_program
from repro.datalog.grounding import GroundAtom, collect_edb_annotations
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring
from repro.semirings.posbool import BoolExpr, PosBoolSemiring

__all__ = ["LatticeDatalogResult", "lattice_condition_provenance", "evaluate_on_lattice"]


@dataclass
class LatticeDatalogResult:
    """Datalog-on-c-tables output: a condition (PosBool expression) per tuple."""

    edb_ids: Dict[GroundAtom, str]
    conditions: Dict[GroundAtom, BoolExpr]
    program: Program
    _compiled: Dict[GroundAtom, Any] | None = field(default=None, init=False, repr=False)

    def condition(self, atom: GroundAtom) -> BoolExpr:
        """The minimal-fringe condition of a derivable IDB atom."""
        try:
            return self.conditions[atom]
        except KeyError:
            raise DatalogError(f"{atom} is not a derivable IDB atom") from None

    def compile(self, *, compiler: Any = None) -> Dict[GroundAtom, Any]:
        """Knowledge-compile every condition to an ordered decision diagram.

        One :class:`~repro.circuits.compile.CircuitCompiler` (passed in or
        created here) serves all atoms, so conditions that share clauses --
        the normal case after a fixpoint -- share the compile cache and the
        variable order.  Returns atom ->
        :class:`~repro.circuits.compile.CompiledCircuit`.
        """
        from repro.circuits.compile import CircuitCompiler

        if compiler is None:
            if self._compiled is not None:
                return self._compiled
            compiler = CircuitCompiler()
        compiled = {
            atom: compiler.compile(cond) for atom, cond in self.conditions.items()
        }
        self._compiled = compiled
        return compiled

    def wmc(self, weights: Mapping[str, float]) -> Dict[GroundAtom, float]:
        """Exact probability of every atom under independent tuple marginals.

        Compiles each condition and weighted-model-counts it -- the
        probabilistic-datalog reading of Section 8 without constructing any
        world space.
        """
        return {
            atom: compiled.wmc(weights) for atom, compiled in self.compile().items()
        }

    def evaluate(
        self,
        lattice: Semiring,
        valuation: Mapping[str, Any],
        *,
        method: str = "expand",
    ) -> Dict[GroundAtom, Any]:
        """Specialize every condition to a distributive lattice ``K``.

        ``valuation`` maps tuple ids to lattice elements; with the default
        ``method="expand"`` each condition's minimal monomials are mapped to
        meets and joined, which is exactly evaluating the minimal-fringe
        polynomial of the paper's modified All-Trees in ``K``.

        ``method="compile"`` routes through the knowledge compiler instead:
        conditions are compiled once and the decision diagrams are evaluated
        in ``K``.  This needs a ``complement`` operation on the lattice
        (i.e. a Boolean algebra, like ``P(Omega)``); the two methods agree
        because lattice evaluation is pointwise Boolean under the Birkhoff
        representation.
        """
        if not lattice.is_distributive_lattice:
            raise DatalogError(
                f"Section 8 evaluation needs a distributive lattice, got {lattice.name}"
            )
        if method not in ("expand", "compile"):
            raise DatalogError(f"unknown method {method!r} (use 'expand' or 'compile')")
        coerced = {k: lattice.coerce(v) for k, v in valuation.items()}
        if method == "compile":
            complement = getattr(lattice, "complement", None)
            if complement is None:
                raise DatalogError(
                    f"method='compile' needs a complemented lattice; {lattice.name} "
                    "has no complement operation"
                )
            from repro.circuits.evaluate import CircuitEvaluator

            evaluator = CircuitEvaluator(lattice, coerced, complement=complement)
            return {
                atom: evaluator(compiled.root)
                for atom, compiled in self.compile().items()
            }
        results: Dict[GroundAtom, Any] = {}
        for atom, condition in self.conditions.items():
            value = lattice.zero()
            for clause in condition.clauses:
                meet = lattice.one()
                for variable in clause:
                    meet = lattice.mul(meet, coerced[variable])
                value = lattice.add(value, meet)
            results[atom] = value
        return results


def lattice_condition_provenance(
    program: Program | str,
    database: Database,
    *,
    edb_ids: Mapping[GroundAtom, str] | None = None,
    engine: str = "naive",
    storage: str | None = None,
) -> LatticeDatalogResult:
    """Compute the PosBool(X) ("minimal fringe") provenance of a datalog query.

    The database may be annotated in any semiring; only the support matters
    here, since each EDB fact is re-tagged with its own Boolean variable.
    (``edb_ids`` need not be injective: mapping two facts to one variable
    declares them perfectly correlated, which is how the probabilistic layer
    encodes shared events.)  ``engine`` selects the evaluation strategy of
    the underlying PosBool(X) fixpoint (``"naive"`` or ``"seminaive"``, see
    :func:`repro.datalog.fixpoint.evaluate_program`) and ``storage`` its
    backend; the conditions are identical either way.
    """
    if isinstance(program, str):
        program = Program.parse(program)
    if edb_ids is not None:
        ids = dict(edb_ids)
    else:
        ids = default_edb_ids(collect_edb_annotations(program, database))

    posbool = PosBoolSemiring()
    tagged = Database(posbool)
    for predicate in program.edb_predicates:
        source = database.relation(predicate)
        relation = KRelation(posbool, source.schema)
        for tup, _annotation in source.items():
            atom = GroundAtom(predicate, tup.values_for(source.schema.attributes))
            relation.set(tup, BoolExpr.var(ids[atom]))
        tagged.register(predicate, relation)

    result = evaluate_program(program, tagged, engine=engine, storage=storage)
    conditions = {
        atom: value
        for atom, value in result.annotations.items()
        if not posbool.is_zero(value)
    }
    return LatticeDatalogResult(edb_ids=ids, conditions=conditions, program=program)


def evaluate_on_lattice(
    program: Program | str,
    database: Database,
    *,
    output_only: bool = True,
    engine: str = "naive",
    method: str = "expand",
    storage: str | None = None,
) -> KRelation:
    """Terminating datalog evaluation when the database's semiring is a lattice.

    This is the end-to-end Section 8 pipeline: compute the PosBool(X)
    conditions, then evaluate them under the valuation sending each tuple id
    to the fact's own annotation.  The sanity checks of the paper hold by
    construction: for ``K = B`` every derivable tuple gets ``true``; for
    ``K = PosBool(B)`` the result is the c-table datalog semantics; for
    ``K = P(Omega)`` it generalizes probabilistic datalog.

    ``engine="seminaive"`` runs the underlying PosBool(X) fixpoint through
    the PR 2 delta-driven engine; the result is identical.
    ``method="compile"`` specializes the conditions through the knowledge
    compiler (requires a complemented lattice, e.g. ``P(Omega)``); again the
    result is identical -- the probabilistic layer uses it for differential
    checks.
    """
    if isinstance(program, str):
        program = Program.parse(program)
    semiring = database.semiring
    if not semiring.is_distributive_lattice:
        raise DatalogError(
            f"evaluate_on_lattice requires a distributive-lattice semiring, got {semiring.name}"
        )
    # One EDB scan serves both the tuple ids and the valuation.
    edb_annotations = collect_edb_annotations(program, database)
    ids = default_edb_ids(edb_annotations)
    provenance = lattice_condition_provenance(
        program, database, edb_ids=ids, engine=engine, storage=storage
    )
    valuation = {
        ids[atom]: annotation for atom, annotation in edb_annotations.items()
    }
    values = provenance.evaluate(semiring, valuation, method=method)

    predicate = program.output
    arity = program.arity(predicate)
    if predicate in database:
        schema = database.relation(predicate).schema
    else:
        head_names = program.head_attributes(predicate)
        schema = Schema(head_names or [f"c{i + 1}" for i in range(arity)])
    relation = KRelation(semiring, schema)
    for atom, value in values.items():
        if atom.relation != predicate or semiring.is_zero(value):
            continue
        if not output_only or atom.relation == predicate:
            relation.set(Tup.from_values(schema.attributes, atom.values), value)
    return relation
