"""Algorithm All-Trees (Figure 8 of the paper).

All-Trees decides, for every output tuple of a datalog query, whether its
provenance series is actually a *polynomial* of ``N[X]`` and computes that
polynomial when the answer is positive; tuples with infinitely many
derivation trees are reported with provenance ``infinity`` (the paper writes
``P(t) <- infinity``).

The paper's pseudo-code iterates a set ``T`` of derivation trees, moving a
tuple into ``T-infinity`` as soon as some tree repeats a tuple along a root
path or uses a ``T-infinity`` tuple.  The set of tuples classified infinite
by that process is exactly the set of derivable tuples reachable from a
cycle of the grounded dependency graph, and for the remaining tuples the sum
``Σ_τ Π_{l ∈ fringe(τ)} l`` can be computed by structural recursion because
their dependency sub-graph is acyclic.  This implementation therefore runs
the cycle analysis first (on the grounded program) and then evaluates the
finite tuples by memoized recursion -- the same output as the literal
tree-set iteration, without materializing exponentially many trees.  The
test-suite cross-checks the result against brute-force tree enumeration
(:mod:`repro.datalog.derivations`) on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.errors import DatalogError
from repro.datalog.grounding import GroundAtom, GroundProgram, ground_program
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.semirings.base import Semiring
from repro.semirings.numeric import INFINITY, NatInf
from repro.semirings.polynomial import Polynomial

__all__ = ["AllTreesResult", "all_trees", "default_edb_ids"]


@dataclass
class AllTreesResult:
    """Output of the All-Trees algorithm.

    ``polynomials`` maps each derivable IDB atom with finite provenance to
    its provenance polynomial over the EDB tuple ids; ``infinite`` collects
    the atoms whose provenance is not a polynomial (``P(t) = infinity`` in the
    paper's notation).
    """

    ground: GroundProgram
    edb_ids: Dict[GroundAtom, str]
    polynomials: Dict[GroundAtom, Polynomial]
    infinite: frozenset[GroundAtom]

    def provenance(self, atom: GroundAtom) -> Polynomial | None:
        """The provenance polynomial of ``atom``, or ``None`` when infinite."""
        if atom in self.infinite:
            return None
        try:
            return self.polynomials[atom]
        except KeyError:
            raise DatalogError(f"{atom} is not a derivable IDB atom") from None

    def is_polynomial(self, atom: GroundAtom) -> bool:
        """Whether the atom's provenance series is a polynomial."""
        return atom not in self.infinite and atom in self.polynomials

    def output_provenance(self) -> Dict[GroundAtom, Polynomial | None]:
        """Provenance of the output predicate's atoms (``None`` marks infinity)."""
        output = self.ground.program.output
        result: Dict[GroundAtom, Polynomial | None] = {}
        for atom in self.ground.output_atoms():
            result[atom] = None if atom in self.infinite else self.polynomials[atom]
        return result

    def evaluate(self, semiring: Semiring, valuation: Mapping[str, object]) -> Dict[GroundAtom, object]:
        """Evaluate every finite provenance polynomial in ``semiring``.

        Atoms with infinite provenance evaluate to the semiring's top element
        when one exists (matching the N-inf behaviour of Figure 7(b)); they
        are skipped otherwise.
        """
        coerced = {k: semiring.coerce(v) for k, v in valuation.items()}
        values: Dict[GroundAtom, object] = {}
        for atom, polynomial in self.polynomials.items():
            values[atom] = polynomial.evaluate(semiring, coerced)
        if semiring.has_top:
            for atom in self.infinite:
                values[atom] = semiring.top()
        return values


def default_edb_ids(
    ground: "GroundProgram | Iterable[GroundAtom]", prefix: str = "t"
) -> Dict[GroundAtom, str]:
    """Assign a deterministic tuple-id variable to every EDB fact.

    Accepts a :class:`GroundProgram` or any iterable of EDB atoms (e.g. the
    keys of :func:`repro.datalog.grounding.collect_edb_annotations`, which
    lets callers skip the grounding pass entirely); the id convention --
    sort by relation then stringified values, number from 1 -- is identical
    either way.
    """
    atoms = ground.edb_atoms if isinstance(ground, GroundProgram) else ground
    ids: Dict[GroundAtom, str] = {}
    for index, atom in enumerate(
        sorted(atoms, key=lambda a: (a.relation, tuple(map(str, a.values)))),
        start=1,
    ):
        ids[atom] = f"{prefix}{index}"
    return ids


def all_trees(
    program: Program | str,
    database: Database,
    *,
    edb_ids: Mapping[GroundAtom, str] | None = None,
) -> AllTreesResult:
    """Run All-Trees: classify every derivable IDB atom and compute finite provenance.

    ``edb_ids`` assigns tuple-id variable names to the EDB facts (defaults to
    ``t1, t2, ...`` in a deterministic order); the provenance polynomials are
    over these variables.
    """
    if isinstance(program, str):
        program = Program.parse(program)
    ground = ground_program(program, database)
    ids = dict(edb_ids) if edb_ids is not None else default_edb_ids(ground)
    missing = ground.edb_atoms - set(ids)
    if missing:
        raise DatalogError(f"edb_ids is missing ids for {len(missing)} EDB fact(s)")

    infinite = ground.atoms_with_infinite_derivations() & ground.idb_atoms
    polynomials: Dict[GroundAtom, Polynomial] = {}
    cache: Dict[GroundAtom, Polynomial] = {}

    def provenance_of(atom: GroundAtom) -> Polynomial:
        if ground.is_edb(atom):
            return Polynomial.var(ids[atom])
        if atom in cache:
            return cache[atom]
        total = Polynomial.zero()
        for rule in ground.rules_with_head(atom):
            product = Polynomial.one()
            for body_atom in rule.body:
                product = product * provenance_of(body_atom)
            total = total + product
        cache[atom] = total
        return total

    for atom in ground.idb_atoms:
        if atom in infinite:
            continue
        polynomials[atom] = provenance_of(atom)

    return AllTreesResult(
        ground=ground,
        edb_ids=ids,
        polynomials=polynomials,
        infinite=frozenset(infinite),
    )


def bag_multiplicities(
    program: Program | str, database: Database
) -> Dict[GroundAtom, NatInf]:
    """Datalog under bag semantics via All-Trees (the paper's Section 7 remark).

    Every finite provenance polynomial is evaluated with all variables set to
    the corresponding tuple multiplicity; infinite tuples get multiplicity
    ``infinity``.  (Mumick-Shmueli-style evaluation as a corollary of
    Theorem 6.4.)
    """
    result = all_trees(program, database)
    valuation = {
        result.edb_ids[atom]: NatInf.of(result.ground.edb_annotation(atom))
        for atom in result.ground.edb_atoms
    }
    from repro.semirings.numeric import CompletedNaturalsSemiring

    semiring = CompletedNaturalsSemiring()
    multiplicities: Dict[GroundAtom, NatInf] = {}
    for atom, polynomial in result.polynomials.items():
        multiplicities[atom] = polynomial.evaluate(semiring, valuation)
    for atom in result.infinite:
        multiplicities[atom] = INFINITY
    return multiplicities
