"""Algebraic systems of polynomial fixpoint equations (Definition 5.5).

For a datalog program ``q`` and an EDB K-relation ``R``, the paper associates
to every derivable output tuple a variable and equates it with the polynomial
computed by the immediate-consequence operator ``T_q`` on the abstractly
tagged output ``Q-bar``:  ``Q-bar = T_q(R, Q-bar)``.  The least solution of
this system, taken in any commutative omega-continuous semiring, equals the
proof-theoretic annotation of Definition 5.1 (Theorem 5.6).

This module builds that system explicitly.  Every derivable IDB ground atom
gets a variable, every EDB fact gets a variable too (its tuple id), and each
equation is a plain ``N``-polynomial over both variable kinds -- exactly the
shape of Figure 7(f)::

    x = m + y·z        u = r + u·v
    y = n              v = s + v^2
    z = p              w = x·u + w·v

Solving the system in a semiring ``K`` amounts to Kleene iteration of the
polynomial functions under a valuation of the EDB variables into ``K``
(Definition 5.5's least fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping

from repro.errors import DatalogError, DivergenceError
from repro.datalog.grounding import GroundAtom, GroundProgram, ground_program
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.semirings.base import Semiring
from repro.semirings.polynomial import Polynomial

__all__ = ["AlgebraicSystem", "build_algebraic_system"]

#: Safety cap for Kleene iteration over idempotent semirings.
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass
class AlgebraicSystem:
    """A system ``x_i = P_i(x_1, ..., x_n)`` of polynomial equations over variables.

    Attributes
    ----------
    ground:
        The grounded program the system was built from.
    idb_variables:
        Maps each derivable IDB ground atom to its equation variable.
    edb_variables:
        Maps each EDB fact to its tuple-id variable.
    equations:
        Maps each IDB variable to its right-hand-side polynomial (an element
        of ``N[edb variables ∪ idb variables]``).
    edb_valuation:
        Maps each EDB variable to the fact's original annotation in the
        source database's semiring.
    """

    ground: GroundProgram
    idb_variables: Dict[GroundAtom, str]
    edb_variables: Dict[GroundAtom, str]
    equations: Dict[str, Polynomial]
    edb_valuation: Dict[str, Any]

    # -- inspection ------------------------------------------------------------
    @property
    def variables(self) -> list[str]:
        """The IDB equation variables, in deterministic order."""
        return [self.idb_variables[atom] for atom in self._ordered_idb_atoms()]

    def _ordered_idb_atoms(self) -> list[GroundAtom]:
        return sorted(self.idb_variables, key=lambda a: (a.relation, tuple(map(str, a.values))))

    def variable_for(self, atom: GroundAtom) -> str:
        """The equation variable of a derivable IDB ground atom."""
        try:
            return self.idb_variables[atom]
        except KeyError:
            raise DatalogError(f"{atom} is not a derivable IDB atom of the system") from None

    def atom_for(self, variable: str) -> GroundAtom:
        """The ground atom an equation variable stands for."""
        for atom, name in self.idb_variables.items():
            if name == variable:
                return atom
        for atom, name in self.edb_variables.items():
            if name == variable:
                return atom
        raise DatalogError(f"unknown system variable {variable!r}")

    def equation(self, variable: str) -> Polynomial:
        """The right-hand-side polynomial of ``variable``."""
        try:
            return self.equations[variable]
        except KeyError:
            raise DatalogError(f"no equation for variable {variable!r}") from None

    def __str__(self) -> str:
        lines = []
        for atom in self._ordered_idb_atoms():
            variable = self.idb_variables[atom]
            lines.append(f"{variable} = {self.equations[variable]}")
        return "\n".join(lines)

    # -- solving -----------------------------------------------------------------
    def solve(
        self,
        semiring: Semiring,
        valuation: Mapping[str, Any] | None = None,
        *,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        on_divergence: str = "top",
        engine: str = "naive",
    ) -> Dict[GroundAtom, Any]:
        """Least solution of the system in ``semiring`` (Definition 5.5).

        ``valuation`` maps EDB variables into the target semiring; it defaults
        to coercing the original EDB annotations.  Divergent components (atoms
        with infinitely many derivations) are handled as in
        :mod:`repro.datalog.fixpoint`: ``"top"`` assigns the semiring's top
        element (an error when the semiring has none), ``"error"`` always
        raises, and ``"skip"`` drops the divergent components from the
        solution while keeping the exact values of the convergent ones.

        ``engine="seminaive"`` replaces the round-robin Kleene iteration with
        a dependency-aware worklist: after each round only the equations whose
        right-hand side mentions a changed variable are re-evaluated.  The
        least solution is the same (the worklist performs chaotic iteration
        of the same monotone operator).
        """
        if on_divergence not in ("top", "error", "skip"):
            raise ValueError(
                f"on_divergence must be 'top', 'error' or 'skip', got {on_divergence!r}"
            )
        from repro.datalog.fixpoint import _check_engine

        _check_engine(engine)
        if valuation is None:
            valuation = {
                variable: semiring.coerce(value)
                for variable, value in self.edb_valuation.items()
            }
        else:
            valuation = {v: semiring.coerce(x) for v, x in valuation.items()}

        idb_atoms = list(self.idb_variables)
        if semiring.idempotent_add:
            divergent: frozenset[GroundAtom] = frozenset()
        else:
            # The structural divergence analysis must respect the valuation: an
            # EDB fact evaluated to 0 disables every ground rule that uses it,
            # which can break cycles (e.g. setting r = 0 in Figure 7 makes u
            # finite again).
            zero_edb = {
                atom
                for atom, variable in self.edb_variables.items()
                if semiring.is_zero(valuation.get(variable, semiring.zero()))
            }
            divergent = self._divergent_atoms(zero_edb) & set(idb_atoms)
            if divergent and (
                on_divergence == "error"
                or (on_divergence == "top" and not semiring.has_top)
            ):
                raise DivergenceError(
                    f"{len(divergent)} equation(s) diverge in {semiring.name}"
                )

        values: Dict[str, Any] = {
            self.idb_variables[atom]: semiring.zero() for atom in idb_atoms
        }
        # Under "skip" the divergent variables stay at zero during iteration:
        # every rule of a *convergent* head that mentions a divergent atom is
        # necessarily killed by a zero-valued EDB factor (otherwise the head
        # would inherit infinitely many derivations), so the value substituted
        # for the divergent variable never reaches a kept result.
        if on_divergence == "top":
            for atom in divergent:
                values[self.idb_variables[atom]] = semiring.top()
        finite_variables = [
            self.idb_variables[atom] for atom in idb_atoms if atom not in divergent
        ]

        rounds = max_iterations
        if not semiring.idempotent_add:
            rounds = min(rounds, len(finite_variables) + 1)

        if engine == "seminaive":
            self._solve_worklist(semiring, valuation, values, finite_variables, rounds)
        else:
            for _ in range(rounds):
                assignment = {**valuation, **values}
                changed = False
                for variable in finite_variables:
                    new_value = self.equations[variable].evaluate(semiring, assignment)
                    if new_value != values[variable]:
                        values[variable] = new_value
                        changed = True
                if not changed:
                    break
            else:
                if semiring.idempotent_add:
                    raise DivergenceError(
                        f"algebraic system did not converge within {max_iterations} iterations"
                    )

        if on_divergence == "skip":
            return {
                atom: values[self.idb_variables[atom]]
                for atom in idb_atoms
                if atom not in divergent
            }
        return {atom: values[self.idb_variables[atom]] for atom in idb_atoms}

    def _solve_worklist(
        self,
        semiring: Semiring,
        valuation: Mapping[str, Any],
        values: Dict[str, Any],
        finite_variables: list[str],
        rounds: int,
    ) -> None:
        """Rounds of chaotic iteration re-evaluating only affected equations."""
        finite = set(finite_variables)
        dependents: Dict[str, set[str]] = {}
        for variable in finite_variables:
            for dependency in self.equations[variable].variables & finite:
                dependents.setdefault(dependency, set()).add(variable)

        dirty = set(finite_variables)
        performed = 0
        while dirty:
            if performed >= rounds:
                if semiring.idempotent_add:
                    raise DivergenceError(
                        f"algebraic system did not converge within {rounds} iterations"
                    )
                break
            performed += 1
            assignment = {**valuation, **values}
            next_dirty: set[str] = set()
            for variable in dirty:
                new_value = self.equations[variable].evaluate(semiring, assignment)
                if new_value != values[variable]:
                    values[variable] = new_value
                    next_dirty |= dependents.get(variable, set())
            dirty = next_dirty

    def _divergent_atoms(self, zero_edb: set[GroundAtom]) -> frozenset[GroundAtom]:
        """Atoms with infinitely many derivations, ignoring rules killed by zero EDB facts."""
        if not zero_edb:
            return self.ground.atoms_with_infinite_derivations()
        active_rules = [
            rule
            for rule in self.ground.ground_rules
            if not any(body in zero_edb for body in rule.body)
        ]
        # Derivable atoms under the restricted rule set.
        derivable: set[GroundAtom] = set(self.ground.edb_atoms) - zero_edb
        changed = True
        while changed:
            changed = False
            for rule in active_rules:
                if rule.head in derivable:
                    continue
                if all(body in derivable for body in rule.body):
                    derivable.add(rule.head)
                    changed = True
        # Dependency edges among derivable atoms; cycle atoms and their forward closure.
        forward: Dict[GroundAtom, set[GroundAtom]] = {}
        for rule in active_rules:
            if rule.head not in derivable:
                continue
            if not all(body in derivable for body in rule.body):
                continue
            for body in rule.body:
                forward.setdefault(body, set()).add(rule.head)
        cyclic: set[GroundAtom] = set()
        for start in list(forward):
            # is `start` reachable from itself?
            frontier, seen = list(forward.get(start, ())), set()
            while frontier:
                node = frontier.pop()
                if node == start:
                    cyclic.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(forward.get(node, ()))
        reachable: set[GroundAtom] = set()
        frontier = list(cyclic)
        while frontier:
            node = frontier.pop()
            if node in reachable:
                continue
            reachable.add(node)
            frontier.extend(forward.get(node, ()))
        return frozenset(reachable & derivable)

    def solve_output(
        self,
        semiring: Semiring,
        valuation: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> Dict[GroundAtom, Any]:
        """Solve and keep only the output predicate's components."""
        solution = self.solve(semiring, valuation, **kwargs)
        output = self.ground.program.output
        return {atom: value for atom, value in solution.items() if atom.relation == output}


def build_algebraic_system(
    program: Program | str,
    database: Database,
    *,
    idb_ids: Mapping[GroundAtom, str] | None = None,
    edb_ids: Mapping[GroundAtom, str] | None = None,
) -> AlgebraicSystem:
    """Construct the algebraic system ``Q-bar = T_q(R, Q-bar)`` (Theorem 5.6).

    ``idb_ids`` / ``edb_ids`` optionally pin variable names to specific ground
    atoms (as the paper does with ``x, y, z, u, v, w`` and ``m, n, p, r, s``
    in Figure 7); unnamed atoms get generated names.
    """
    if isinstance(program, str):
        program = Program.parse(program)
    ground = ground_program(program, database)

    edb_variables: Dict[GroundAtom, str] = {}
    edb_valuation: Dict[str, Any] = {}
    used_names: set[str] = set(dict(edb_ids or {}).values()) | set(dict(idb_ids or {}).values())
    counter = 1
    for atom in sorted(ground.edb_atoms, key=lambda a: (a.relation, tuple(map(str, a.values)))):
        name = (edb_ids or {}).get(atom)
        if name is None:
            name, counter = _fresh_name("t", counter, used_names)
        edb_variables[atom] = name
        edb_valuation[name] = ground.edb_annotation(atom)

    idb_variables: Dict[GroundAtom, str] = {}
    counter = 1
    for atom in sorted(ground.idb_atoms, key=lambda a: (a.relation, tuple(map(str, a.values)))):
        name = (idb_ids or {}).get(atom)
        if name is None:
            name, counter = _fresh_name("q", counter, used_names)
        idb_variables[atom] = name

    overlap = set(edb_variables.values()) & set(idb_variables.values())
    if overlap:
        raise DatalogError(f"variable names used for both EDB and IDB atoms: {sorted(overlap)}")

    equations: Dict[str, Polynomial] = {}
    for atom in ground.idb_atoms:
        total = Polynomial.zero()
        for rule in ground.rules_with_head(atom):
            product = Polynomial.one()
            for body_atom in rule.body:
                if ground.is_edb(body_atom):
                    product = product * Polynomial.var(edb_variables[body_atom])
                else:
                    product = product * Polynomial.var(idb_variables[body_atom])
            total = total + product
        equations[idb_variables[atom]] = total

    return AlgebraicSystem(
        ground=ground,
        idb_variables=idb_variables,
        edb_variables=edb_variables,
        equations=equations,
        edb_valuation=edb_valuation,
    )


def _fresh_name(prefix: str, counter: int, used: set[str]) -> tuple[str, int]:
    while f"{prefix}{counter}" in used:
        counter += 1
    name = f"{prefix}{counter}"
    used.add(name)
    return name, counter + 1
