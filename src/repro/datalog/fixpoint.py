"""Fixpoint evaluation of datalog on K-relations (Section 5).

Definition 5.1 gives the proof-theoretic semantics -- the annotation of an
output tuple is the (possibly infinite) sum, over all its derivation trees,
of the product of the leaf annotations -- and Theorem 5.6 shows it coincides
with the least solution of the algebraic system ``Q-bar = T_q(R, Q-bar)``.
This module computes that least fixpoint directly by Kleene iteration of the
immediate-consequence operator on the grounded program.

Termination strategy
--------------------
* For semirings with **idempotent addition** (all the lattices, tropical,
  fuzzy, Viterbi, why-provenance) the iteration is monotone in the natural
  order and reaches the fixpoint after finitely many rounds; a configurable
  ``max_iterations`` guards against pathological cases.
* For semirings with **non-idempotent addition** (``N``, ``N-inf``,
  ``N[X]``, power series) the annotation of a tuple converges iff the tuple
  has finitely many derivation trees.  The engine first identifies the atoms
  with infinitely many derivations (reachability from a cycle of the grounded
  dependency graph -- the same analysis All-Trees relies on); the remaining
  atoms form an acyclic sub-program whose values converge within one round
  per atom.  Atoms with infinitely many derivations get the semiring's top
  element (``infinity`` in ``N-inf``, reproducing Figure 7(b)); if the
  semiring has no top the evaluation raises :class:`DivergenceError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping

from repro.errors import DivergenceError
from repro.datalog.grounding import GroundAtom, GroundProgram, ground_program
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.base import Semiring

__all__ = [
    "DatalogResult",
    "evaluate_program",
    "evaluate",
    "immediate_consequence",
    "solve_ground",
]

#: Hard ceiling on Kleene rounds for idempotent semirings (safety net only).
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass
class DatalogResult:
    """Result of a datalog evaluation.

    Attributes
    ----------
    annotations:
        Final annotation of every derivable IDB ground atom.
    iterations:
        Number of Kleene rounds performed.
    divergent_atoms:
        Atoms whose annotation was set to the semiring's top element because
        they have infinitely many derivation trees (empty for idempotent
        semirings).
    ground:
        The grounded program the evaluation ran on (useful for inspecting the
        instantiation, e.g. in tests of Theorem 6.5).  Caveat: for idempotent
        semirings the semi-naive engine never materializes the instantiation
        (that is where its speed comes from), so its result's ``ground``
        carries the derivable atoms and EDB annotations but an **empty rule
        list**; use ``engine="naive"`` (or
        :func:`~repro.datalog.grounding.ground_program`) when the ground
        rules themselves are needed.
    """

    annotations: Dict[GroundAtom, Any]
    iterations: int
    divergent_atoms: frozenset[GroundAtom]
    ground: GroundProgram
    _relations: Dict[str, KRelation] = field(default_factory=dict, repr=False)

    def relation(self, predicate: str, database: Database) -> KRelation:
        """Materialize the annotations of ``predicate`` as a K-relation."""
        if predicate in self._relations:
            return self._relations[predicate]
        semiring = database.semiring
        arity = self.ground.program.arity(predicate)
        if predicate in database:
            schema = database.relation(predicate).schema
        else:
            head_names = self.ground.program.head_attributes(predicate)
            schema = Schema(head_names or [f"c{i + 1}" for i in range(arity)])
        relation = KRelation(semiring, schema)
        for atom, annotation in self.annotations.items():
            if atom.relation != predicate or semiring.is_zero(annotation):
                continue
            relation.set(Tup.from_values(schema.attributes, atom.values), annotation)
        self._relations[predicate] = relation
        return relation

    def output_relation(self, database: Database) -> KRelation:
        """The K-relation of the program's output predicate."""
        return self.relation(self.ground.program.output, database)


def immediate_consequence(
    ground: GroundProgram,
    semiring: Semiring,
    current: Mapping[GroundAtom, Any],
    *,
    atoms: Iterable[GroundAtom] | None = None,
) -> Dict[GroundAtom, Any]:
    """One application of the annotated immediate-consequence operator ``T_q``.

    For every (selected) derivable IDB atom, the new annotation is the sum
    over its grounded rules of the product of the body annotations, where EDB
    atoms contribute their database annotation and IDB atoms contribute their
    ``current`` value.  This is exactly how the paper turns ``T_q`` into the
    right-hand sides of the algebraic system (Definition 5.5).
    """
    zero = semiring.zero()
    selected = ground.idb_atoms if atoms is None else atoms
    updated: Dict[GroundAtom, Any] = {}
    for atom in selected:
        total = zero
        for rule in ground.rules_with_head(atom):
            product = semiring.one()
            for body_atom in rule.body:
                if ground.is_edb(body_atom):
                    value = ground.edb_annotations.get(body_atom, zero)
                else:
                    value = current.get(body_atom, zero)
                product = semiring.mul(product, value)
                if semiring.is_zero(product):
                    break
            total = semiring.add(total, product)
        updated[atom] = total
    return updated


def evaluate_program(
    program: Program | str,
    database: Database,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    on_divergence: str = "top",
    engine: str = "naive",
    storage: Any = None,
    parallel: Any = None,
) -> DatalogResult:
    """Evaluate ``program`` over ``database`` in the database's semiring.

    ``on_divergence`` controls what happens to atoms with infinitely many
    derivation trees when the semiring's addition is not idempotent:

    * ``"top"`` (default) -- assign the semiring's top element (requires one);
    * ``"error"`` -- raise :class:`DivergenceError`;
    * ``"skip"`` -- drop the divergent atoms from the result, keeping the
      (exact) annotations of the acyclic remainder.  Useful for provenance
      representations such as ``N[X]`` polynomials or circuits that have no
      top element: a finite atom never depends on a divergent one (any
      derivation of it through a divergent atom would itself be one of
      infinitely many), so the kept annotations are unaffected.  The skipped
      atoms are reported in ``DatalogResult.divergent_atoms``.

    ``engine`` selects the evaluation strategy: ``"naive"`` (default) grounds
    the program and Kleene-iterates the immediate-consequence operator --
    the reference implementation, closest to the paper's Definition 5.5;
    ``"seminaive"`` runs the delta-driven engine of
    :mod:`repro.datalog.seminaive`, which produces identical annotations and
    is asymptotically faster on recursive programs.  The engines differ in
    one inspection detail: for idempotent semirings the semi-naive result's
    ``ground`` carries no rule instantiations (see
    :attr:`DatalogResult.ground`).

    ``storage`` selects the physical backend of the semi-naive engine's
    per-predicate stores (``"row"`` or ``"columnar"``; ``None`` defers to
    ``REPRO_STORAGE``, then to the database's own backend).  A columnar
    backend additionally engages whole-column round batching for linear
    recursions over vectorizable semirings.  The naive engine ignores it.

    ``parallel`` (semi-naive engine only) runs the annotate-mode fixpoint
    rounds over a pool of shared-nothing worker processes
    (:mod:`repro.parallel`): an integer worker count, ``True`` for the cpu
    count, or ``None`` to defer to ``REPRO_PARALLEL``.  Collect-mode runs
    (non-idempotent semirings) and semirings without a canonical picklable
    carrier decline to the serial loop; results are identical either way.
    The naive engine ignores it.
    """
    _check_engine(engine)
    if isinstance(program, str):
        program = Program.parse(program)
    if engine == "seminaive":
        from repro.datalog.seminaive import evaluate_program_seminaive

        return evaluate_program_seminaive(
            program,
            database,
            max_iterations=max_iterations,
            on_divergence=on_divergence,
            storage=storage,
            parallel=parallel,
        )
    semiring = database.semiring
    ground = ground_program(program, database)
    return solve_ground(
        ground,
        semiring,
        max_iterations=max_iterations,
        on_divergence=on_divergence,
    )


def _check_engine(engine: str) -> None:
    if engine not in ("naive", "seminaive"):
        raise ValueError(
            f"engine must be 'naive' or 'seminaive', got {engine!r}"
        )


def classify_divergence(
    ground: GroundProgram, semiring: Semiring, on_divergence: str
) -> tuple[frozenset[GroundAtom], set[GroundAtom]]:
    """Split the derivable IDB atoms into ``(divergent, finite)`` sets.

    The single place both engines apply the divergence policy: validates
    ``on_divergence``, classifies nothing as divergent under idempotent
    addition, and otherwise raises :class:`DivergenceError` when divergent
    atoms exist but the policy (or the semiring's lack of a top element)
    cannot absorb them.
    """
    if on_divergence not in ("top", "error", "skip"):
        raise ValueError(
            f"on_divergence must be 'top', 'error' or 'skip', got {on_divergence!r}"
        )
    idb_atoms = ground.idb_atoms
    if semiring.idempotent_add:
        return frozenset(), set(idb_atoms)
    divergent = ground.atoms_with_infinite_derivations() & idb_atoms
    finite = set(idb_atoms) - divergent
    if divergent:
        if on_divergence == "error" or (
            on_divergence == "top" and not semiring.has_top
        ):
            raise DivergenceError(
                f"{len(divergent)} tuple(s) have infinitely many derivations and "
                f"{semiring.name} cannot represent the infinite sum "
                "(use an ω-continuous semiring with a top element, e.g. N∞, "
                "or on_divergence='skip' to keep only the convergent atoms)"
            )
    return divergent, finite


def solve_ground(
    ground: GroundProgram,
    semiring: Semiring,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    on_divergence: str = "top",
) -> DatalogResult:
    """Kleene-solve an already-grounded program in ``semiring``.

    The engine core behind :func:`evaluate_program`, exposed so callers that
    already hold a :class:`~repro.datalog.grounding.GroundProgram` (or a
    re-annotated copy of one, as the circuit provenance path builds) can
    solve it without grounding a second time.  ``ground.edb_annotations``
    must already be elements of ``semiring``.
    """
    divergent, finite_atoms = classify_divergence(ground, semiring, on_divergence)

    values: Dict[GroundAtom, Any] = {atom: semiring.zero() for atom in finite_atoms}
    # Under "top", divergent atoms are pinned to top from the start so that
    # finite atoms depending on them (impossible by construction, but
    # harmless) see the correct value; under "skip" they are absent and read
    # as zero, which finite atoms never observe for the same reason.
    if divergent and on_divergence == "top":
        top = semiring.top()
        for atom in divergent:
            values[atom] = top

    iterations = 0
    # For non-idempotent semirings the finite sub-program is acyclic, so
    # |finite atoms| + 1 rounds always suffice; idempotent semirings iterate
    # until stability.
    if not semiring.idempotent_add:
        max_iterations = min(max_iterations, len(finite_atoms) + 1)

    while iterations < max_iterations:
        iterations += 1
        updated = immediate_consequence(ground, semiring, values, atoms=finite_atoms)
        changed = False
        for atom, value in updated.items():
            if value != values[atom]:
                values[atom] = value
                changed = True
        if not changed:
            break
    else:
        if semiring.idempotent_add:
            raise DivergenceError(
                f"datalog evaluation over {semiring.name} did not converge within "
                f"{max_iterations} iterations"
            )

    return DatalogResult(
        annotations=values,
        iterations=iterations,
        divergent_atoms=divergent,
        ground=ground,
    )


def evaluate(
    program: Program | str,
    database: Database,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    on_divergence: str = "top",
    engine: str = "naive",
) -> KRelation:
    """Convenience wrapper: evaluate and return the output predicate's K-relation."""
    if isinstance(program, str):
        program = Program.parse(program)
    result = evaluate_program(
        program,
        database,
        max_iterations=max_iterations,
        on_divergence=on_divergence,
        engine=engine,
    )
    return result.output_relation(database)
