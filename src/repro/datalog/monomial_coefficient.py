"""Algorithm Monomial-Coefficient (Figure 9 of the paper).

Given a datalog query ``q``, an instance ``I``, an output tuple ``t`` and a
monomial ``mu`` over the tuple ids of ``I``, the algorithm computes the
coefficient of ``mu`` in the provenance power series ``q(I)(t)`` -- even when
the series itself is infinite, and even when that particular coefficient is
``infinity``.

The coefficient of ``mu`` is the number of derivation trees of ``t`` whose
fringe (bag of leaf tuple ids) is exactly ``mu``.  The implementation builds
a *bag-indexed* grounded program whose nodes are pairs ``(atom, bag)`` with
``bag`` a sub-monomial of ``mu``: a pair has one "rule" per way of splitting
its bag among the body atoms of a grounded rule for ``atom``.  Counting
derivations of ``(t, mu)`` in this finite graph is then the familiar
problem solved for All-Trees: pairs reachable from a cycle (necessarily a
cycle of unit rules, since any sibling of a cyclic split would have to
consume an empty bag and hence contributes nothing) have infinitely many
derivations, i.e. coefficient ``infinity``; the rest are counted exactly by
memoized recursion.  This matches the termination argument given for
Figure 9 in the paper (cycles of unit rules are the only source of ∞).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

from repro.errors import DatalogError
from repro.datalog.all_trees import default_edb_ids
from repro.datalog.grounding import GroundAtom, GroundProgram, ground_program
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.semirings.numeric import INFINITY, NatInf
from repro.semirings.polynomial import Monomial

__all__ = ["monomial_coefficient", "MonomialCoefficientResult"]

_Bag = Tuple[Tuple[str, int], ...]  # canonical monomial representation


@dataclass
class MonomialCoefficientResult:
    """The computed coefficient together with the ingredients used to compute it."""

    atom: GroundAtom
    monomial: Monomial
    coefficient: NatInf
    edb_ids: Dict[GroundAtom, str]

    @property
    def is_infinite(self) -> bool:
        """Whether the coefficient is ``infinity``."""
        return self.coefficient.is_infinite


def monomial_coefficient(
    program: Program | str,
    database: Database,
    atom: GroundAtom | tuple,
    monomial: Monomial | str,
    *,
    edb_ids: Mapping[GroundAtom, str] | None = None,
) -> MonomialCoefficientResult:
    """Coefficient of ``monomial`` in the provenance series of ``atom``.

    ``atom`` may be a :class:`GroundAtom` of the output predicate or a plain
    tuple of values (interpreted over the output predicate).  ``monomial``
    may be a :class:`Monomial` or a string such as ``"r·n·p·s^3"`` /
    ``"r*n*p*s^3"``.
    """
    if isinstance(program, str):
        program = Program.parse(program)
    ground = ground_program(program, database)
    ids = dict(edb_ids) if edb_ids is not None else default_edb_ids(ground)

    if not isinstance(atom, GroundAtom):
        atom = GroundAtom(program.output, tuple(atom))
    if isinstance(monomial, str):
        from repro.semirings.polynomial import Polynomial

        parsed = Polynomial.parse(monomial)
        if len(parsed.terms) != 1 or parsed.terms[0][1] != 1:
            raise DatalogError(f"{monomial!r} does not denote a single monomial")
        monomial = parsed.terms[0][0]

    known_ids = set(ids.values())
    unknown = monomial.variables - known_ids
    if unknown:
        raise DatalogError(f"monomial mentions unknown tuple ids {sorted(unknown)}")

    if atom not in ground.derivable:
        return MonomialCoefficientResult(atom, monomial, NatInf(0), ids)

    coefficient = _count_trees_with_fringe(ground, ids, atom, monomial)
    return MonomialCoefficientResult(atom, monomial, coefficient, ids)


def _count_trees_with_fringe(
    ground: GroundProgram,
    ids: Mapping[GroundAtom, str],
    root: GroundAtom,
    monomial: Monomial,
) -> NatInf:
    """Count derivation trees of ``root`` with fringe exactly ``monomial``."""
    target: _Bag = monomial.powers

    # ------------------------------------------------------------------
    # Step 1: build the bag-indexed dependency graph restricted to nodes
    # reachable (downward) from (root, target).
    # ------------------------------------------------------------------
    edges: Dict[tuple[GroundAtom, _Bag], List[List[tuple[GroundAtom, _Bag]]]] = {}
    leaf_nodes: set[tuple[GroundAtom, _Bag]] = set()
    stack = [(root, target)]
    visited: set[tuple[GroundAtom, _Bag]] = set()
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        atom, bag = node
        if ground.is_edb(atom):
            if _bag_is_single(bag, ids[atom]):
                leaf_nodes.add(node)
            continue
        alternatives: List[List[tuple[GroundAtom, _Bag]]] = []
        for rule in ground.rules_with_head(atom):
            for split in _splits(bag, len(rule.body)):
                children = list(zip(rule.body, split))
                alternatives.append(children)
                for child in children:
                    if child not in visited:
                        stack.append(child)
        edges[node] = alternatives

    # ------------------------------------------------------------------
    # Step 2: which nodes have at least one derivation? (bottom-up)
    # ------------------------------------------------------------------
    derivable: set[tuple[GroundAtom, _Bag]] = set(leaf_nodes)
    changed = True
    while changed:
        changed = False
        for node, alternatives in edges.items():
            if node in derivable:
                continue
            for children in alternatives:
                if all(child in derivable for child in children):
                    derivable.add(node)
                    changed = True
                    break
    if (root, target) not in derivable:
        return NatInf(0)

    # ------------------------------------------------------------------
    # Step 3: nodes on (or downstream of) a derivable cycle have coefficient
    # infinity; the rest are counted by memoized recursion over an acyclic
    # sub-graph.
    # ------------------------------------------------------------------
    dependency: Dict[tuple[GroundAtom, _Bag], set[tuple[GroundAtom, _Bag]]] = {}
    for node, alternatives in edges.items():
        if node not in derivable:
            continue
        for children in alternatives:
            if all(child in derivable for child in children):
                for child in children:
                    dependency.setdefault(child, set()).add(node)
    cyclic = _nodes_on_cycles(dependency)
    infinite: set[tuple[GroundAtom, _Bag]] = set()
    frontier = list(cyclic)
    while frontier:
        node = frontier.pop()
        if node in infinite:
            continue
        infinite.add(node)
        frontier.extend(dependency.get(node, ()))

    if (root, target) in infinite:
        return INFINITY

    cache: Dict[tuple[GroundAtom, _Bag], int] = {}

    def count(node: tuple[GroundAtom, _Bag]) -> int:
        if node in leaf_nodes:
            return 1
        atom, _bag = node
        if ground.is_edb(atom):
            return 0
        if node in cache:
            return cache[node]
        total = 0
        for children in edges.get(node, ()):
            # Only fully derivable alternatives can contribute trees; skipping
            # the others *before* recursing keeps the recursion inside the
            # acyclic sub-graph (a cycle of derivable alternatives would have
            # classified the root as infinite already).
            if any(child not in derivable for child in children):
                continue
            product = 1
            for child in children:
                product *= count(child)
                if product == 0:
                    break
            total += product
        cache[node] = total
        return total

    return NatInf(count((root, target)))


# ----------------------------------------------------------------------
# Bag (monomial) helpers
# ----------------------------------------------------------------------

def _bag_is_single(bag: _Bag, variable: str) -> bool:
    return len(bag) == 1 and bag[0] == (variable, 1)


def _splits(bag: _Bag, parts: int) -> Iterator[tuple[_Bag, ...]]:
    """Enumerate all ordered splits of a bag into ``parts`` sub-bags."""
    if parts == 1:
        yield (bag,)
        return
    for first, rest in _sub_bags(bag):
        for remainder in _splits(rest, parts - 1):
            yield (first, *remainder)


def _sub_bags(bag: _Bag) -> Iterator[tuple[_Bag, _Bag]]:
    """Enumerate (sub-bag, complement) pairs of a bag of variable powers."""
    variables = [v for v, _ in bag]
    exponents = [e for _, e in bag]

    def recurse(index: int, chosen: list[int]) -> Iterator[tuple[_Bag, _Bag]]:
        if index == len(variables):
            sub = tuple(
                (v, c) for v, c in zip(variables, chosen) if c > 0
            )
            complement = tuple(
                (v, e - c)
                for v, e, c in zip(variables, exponents, chosen)
                if e - c > 0
            )
            yield sub, complement
            return
        for count in range(exponents[index] + 1):
            yield from recurse(index + 1, chosen + [count])

    yield from recurse(0, [])


def _nodes_on_cycles(
    dependency: Mapping[tuple, set],
) -> set:
    """Nodes lying on a directed cycle of the (child -> parent) dependency graph."""
    # Iterative DFS-based detection via strongly connected components.
    index_counter = 0
    indices: Dict[tuple, int] = {}
    lowlink: Dict[tuple, int] = {}
    on_stack: set = set()
    stack: list = []
    cyclic: set = set()
    nodes = set(dependency)
    for targets in dependency.values():
        nodes |= targets

    for start in nodes:
        if start in indices:
            continue
        work = [(start, iter(dependency.get(start, ())))]
        indices[start] = lowlink[start] = index_counter
        index_counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(dependency.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic |= component
                else:
                    (only,) = component
                    if only in dependency.get(only, ()):
                        cyclic.add(only)
    return cyclic
