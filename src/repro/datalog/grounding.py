"""Grounding (instantiation) of datalog programs over a database.

The *instantiation* of a datalog query (the paper uses the term in
Theorem 6.5) is the set of ground rules obtained by substituting constants
for variables in all ways that make every body atom derivable.  The grounded
program is the common substrate for all the evaluation algorithms in this
package: the fixpoint engine, the algebraic-system construction
(Definition 5.5), derivation-tree enumeration, All-Trees (Figure 8),
Monomial-Coefficient (Figure 9), and the finiteness analysis (Theorem 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.errors import GroundingError
from repro.datalog.syntax import Program, Rule
from repro.logic import Atom, Constant, Variable, unify_ground
from repro.relations.database import Database
from repro.relations.tuples import Tup

__all__ = [
    "GroundAtom",
    "GroundRule",
    "GroundProgram",
    "ground_program",
    "collect_edb_annotations",
]


@dataclass(frozen=True)
class GroundAtom:
    """A ground relational atom: a relation name and a tuple of constant values."""

    relation: str
    values: Tuple[Any, ...]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(map(str, self.values))})"


@dataclass(frozen=True)
class GroundRule:
    """A fully instantiated rule: ground head, ground body, originating rule index.

    The body is an ordered tuple (the same atom may appear twice, e.g. when
    ``Q(x,y) :- Q(x,z), Q(z,y)`` is instantiated with ``x = z = y``), which is
    essential for counting derivations correctly under bag semantics.
    """

    head: GroundAtom
    body: Tuple[GroundAtom, ...]
    rule_index: int

    def is_unit(self, idb_predicates: FrozenSet[str]) -> bool:
        """Whether this is a grounded *unit rule*: single IDB body atom."""
        return len(self.body) == 1 and self.body[0].relation in idb_predicates

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}"


class GroundProgram:
    """The instantiation of a program over a database, plus analysis helpers."""

    def __init__(
        self,
        program: Program,
        database: Database,
        ground_rules: List[GroundRule],
        edb_annotations: Dict[GroundAtom, Any],
        derivable: Set[GroundAtom],
    ):
        self.program = program
        self.database = database
        self.ground_rules = tuple(ground_rules)
        self.edb_annotations = dict(edb_annotations)
        self.derivable = frozenset(derivable)
        self._rules_by_head: Dict[GroundAtom, list[GroundRule]] = {}
        for rule in self.ground_rules:
            self._rules_by_head.setdefault(rule.head, []).append(rule)

    # -- basic accessors --------------------------------------------------------
    @property
    def idb_atoms(self) -> frozenset[GroundAtom]:
        """Derivable ground atoms of IDB predicates."""
        idb = self.program.idb_predicates
        return frozenset(a for a in self.derivable if a.relation in idb)

    @property
    def edb_atoms(self) -> frozenset[GroundAtom]:
        """Ground atoms backed by database facts (non-zero annotation)."""
        return frozenset(self.edb_annotations)

    def rules_with_head(self, atom: GroundAtom) -> list[GroundRule]:
        """Grounded rules whose head is ``atom``."""
        return self._rules_by_head.get(atom, [])

    def output_atoms(self) -> frozenset[GroundAtom]:
        """Derivable atoms of the program's output predicate."""
        return frozenset(
            a for a in self.derivable if a.relation == self.program.output
        )

    def is_edb(self, atom: GroundAtom) -> bool:
        """Whether the atom belongs to an extensional predicate."""
        return atom.relation in self.program.edb_predicates

    def edb_annotation(self, atom: GroundAtom) -> Any:
        """The database annotation of an EDB ground atom."""
        try:
            return self.edb_annotations[atom]
        except KeyError:
            raise GroundingError(f"{atom} is not a known EDB fact") from None

    # -- dependency analysis -------------------------------------------------------
    def dependency_edges(self) -> Iterator[tuple[GroundAtom, GroundAtom]]:
        """Edges ``body atom -> head atom`` of the grounded dependency graph."""
        for rule in self.ground_rules:
            for body_atom in rule.body:
                yield body_atom, rule.head

    def atoms_on_cycles(self, *, unit_rules_only: bool = False) -> frozenset[GroundAtom]:
        """IDB atoms lying on a cycle of the grounded dependency graph.

        With ``unit_rules_only`` the graph is restricted to grounded unit
        rules (single IDB body atom), which is the analysis of Theorem 6.5;
        otherwise all grounded rules contribute edges, which characterizes the
        atoms with infinitely many derivation trees.
        """
        idb = self.program.idb_predicates
        edges: Dict[GroundAtom, set[GroundAtom]] = {}
        for rule in self.ground_rules:
            if unit_rules_only and not rule.is_unit(idb):
                continue
            for body_atom in rule.body:
                if body_atom.relation in idb:
                    edges.setdefault(body_atom, set()).add(rule.head)
        components = _strongly_connected_components(edges)
        cyclic: set[GroundAtom] = set()
        for component in components:
            if len(component) > 1:
                cyclic.update(component)
            else:
                (atom,) = component
                if atom in edges.get(atom, ()):
                    cyclic.add(atom)
        return frozenset(cyclic)

    def atoms_with_infinite_derivations(self) -> frozenset[GroundAtom]:
        """Derivable atoms possessing infinitely many derivation trees.

        An atom has infinitely many derivation trees exactly when it is
        (transitively) derivable *from* an atom that lies on a cycle of the
        grounded dependency graph (all of whose rules only use derivable
        atoms).  This is the structural fact behind the termination argument
        of All-Trees and behind the ∞ entries in Figure 7(b).
        """
        cyclic = self.atoms_on_cycles()
        if not cyclic:
            return frozenset()
        forward: Dict[GroundAtom, set[GroundAtom]] = {}
        for source, target in self.dependency_edges():
            forward.setdefault(source, set()).add(target)
        reachable: set[GroundAtom] = set()
        frontier = list(cyclic)
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            frontier.extend(forward.get(current, ()))
        return frozenset(reachable & self.derivable)

    def reannotate(self, edb_annotations: Mapping[GroundAtom, Any]) -> "GroundProgram":
        """A copy of this grounding with the EDB facts annotated differently.

        The provenance paths use this to re-run the same instantiation under
        an abstract tagging (circuit variables, polynomial variables, ...)
        without grounding a second time.  ``edb_annotations`` must cover every
        EDB fact of this grounding.
        """
        missing = self.edb_atoms - set(edb_annotations)
        if missing:
            raise GroundingError(
                f"reannotation is missing values for {len(missing)} EDB fact(s)"
            )
        return GroundProgram(
            self.program,
            self.database,
            list(self.ground_rules),
            {atom: edb_annotations[atom] for atom in self.edb_atoms},
            set(self.derivable),
        )

    def atoms_with_unit_rule_cycles(self) -> frozenset[GroundAtom]:
        """Atoms involved in (or reachable from) a cycle of grounded unit rules.

        Theorem 6.5: the provenance series of an output tuple stays in
        ``N[[X]]`` (all coefficients finite) iff the tuple is not part of such
        a cycle's downstream.
        """
        cyclic = self.atoms_on_cycles(unit_rules_only=True)
        if not cyclic:
            return frozenset()
        forward: Dict[GroundAtom, set[GroundAtom]] = {}
        for source, target in self.dependency_edges():
            forward.setdefault(source, set()).add(target)
        reachable: set[GroundAtom] = set()
        frontier = list(cyclic)
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            frontier.extend(forward.get(current, ()))
        return frozenset(reachable & self.derivable)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"GroundProgram({len(self.ground_rules)} ground rules, "
            f"{len(self.derivable)} derivable atoms)"
        )


def ground_program(program: Program, database: Database) -> GroundProgram:
    """Instantiate ``program`` over ``database``.

    The EDB facts are the support tuples of the database relations named by
    the program's EDB predicates.  Derivable IDB atoms are computed by a
    Boolean bottom-up fixpoint (Proposition 5.4 guarantees this is the right
    support for every omega-continuous semiring); the ground rules are then
    all rule instantiations whose body atoms are derivable.
    """
    edb_annotations = collect_edb_annotations(program, database)

    # Boolean bottom-up fixpoint for the derivable atoms.
    known: Set[GroundAtom] = set(edb_annotations)
    by_relation: Dict[str, set[Tuple[Any, ...]]] = {}
    for atom in known:
        by_relation.setdefault(atom.relation, set()).add(atom.values)

    changed = True
    while changed:
        changed = False
        new_atoms: Set[GroundAtom] = set()
        for rule in program.rules:
            for assignment in _match_body(rule, by_relation):
                head_values = _instantiate(rule.head, assignment)
                head_atom = GroundAtom(rule.head.relation, head_values)
                if head_atom not in known and head_atom not in new_atoms:
                    new_atoms.add(head_atom)
        if new_atoms:
            changed = True
            for head_atom in new_atoms:
                known.add(head_atom)
                by_relation.setdefault(head_atom.relation, set()).add(head_atom.values)

    # Final pass: collect every grounded rule over the derivable atoms.
    ground_rules: List[GroundRule] = []
    seen: Set[tuple] = set()
    for index, rule in enumerate(program.rules):
        for assignment in _match_body(rule, by_relation):
            head_atom = GroundAtom(rule.head.relation, _instantiate(rule.head, assignment))
            body_atoms = tuple(
                GroundAtom(atom.relation, _instantiate(atom, assignment))
                for atom in rule.body
            )
            key = (index, head_atom, body_atoms)
            if key in seen:
                continue
            seen.add(key)
            ground_rules.append(GroundRule(head_atom, body_atoms, index))

    return GroundProgram(program, database, ground_rules, edb_annotations, known)


def collect_edb_annotations(program: Program, database: Database) -> Dict[GroundAtom, Any]:
    """Read the program's EDB facts out of ``database`` as annotated ground atoms.

    Validates that every EDB predicate names a database relation of the right
    arity -- the shared input contract of the naive and semi-naive engines.
    """
    edb_annotations: Dict[GroundAtom, Any] = {}
    for predicate in program.edb_predicates:
        if predicate not in database:
            raise GroundingError(
                f"program uses EDB predicate {predicate!r} but the database has no such relation"
            )
        relation = database.relation(predicate)
        if len(relation.schema) != program.arity(predicate):
            raise GroundingError(
                f"relation {predicate!r} has arity {len(relation.schema)}, "
                f"program expects {program.arity(predicate)}"
            )
        attributes = relation.schema.attributes
        for tup, annotation in relation.items():
            atom = GroundAtom(predicate, tup.values_for(attributes))
            edb_annotations[atom] = annotation
    return edb_annotations


def _instantiate(atom: Atom, assignment: Mapping[Variable, Any]) -> Tuple[Any, ...]:
    values = []
    for term in atom.terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            values.append(assignment[term])
    return tuple(values)


def _match_body(
    rule: Rule, by_relation: Mapping[str, set[Tuple[Any, ...]]]
) -> Iterator[Dict[Variable, Any]]:
    """Enumerate variable assignments matching every body atom against known facts."""

    def extend(assignment: Dict[Variable, Any], index: int) -> Iterator[Dict[Variable, Any]]:
        if index == len(rule.body):
            yield assignment
            return
        atom = rule.body[index]
        for values in by_relation.get(atom.relation, ()):
            extended = unify_ground(atom, values, assignment)
            if extended is not None:
                yield from extend(extended, index + 1)

    yield from extend({}, 0)


def _strongly_connected_components(
    edges: Mapping[GroundAtom, set[GroundAtom]]
) -> list[set[GroundAtom]]:
    """Iterative Tarjan SCC over the (small) grounded dependency graph."""
    index_counter = 0
    indices: Dict[GroundAtom, int] = {}
    lowlink: Dict[GroundAtom, int] = {}
    on_stack: Set[GroundAtom] = set()
    stack: List[GroundAtom] = []
    components: list[set[GroundAtom]] = []
    nodes = set(edges)
    for targets in edges.values():
        nodes |= targets

    for root in nodes:
        if root in indices:
            continue
        work: List[tuple[GroundAtom, Iterator[GroundAtom]]] = [
            (root, iter(edges.get(root, ())))
        ]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(edges.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component: set[GroundAtom] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components
