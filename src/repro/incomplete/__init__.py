"""Incomplete databases: maybe-tables, Boolean c-tables and possible worlds (Figures 1-2)."""

from repro.incomplete.ctables import CTable, ctable_database
from repro.incomplete.maybe_tables import MaybeTable
from repro.incomplete.possible_worlds import (
    answer_world_set,
    certain_answers,
    possible_answers,
    query_possible_worlds,
)

__all__ = [
    "MaybeTable",
    "CTable",
    "ctable_database",
    "query_possible_worlds",
    "answer_world_set",
    "certain_answers",
    "possible_answers",
]
