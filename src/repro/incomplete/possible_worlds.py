"""Possible-worlds semantics and representability checks (Figure 1).

Query answering over an incomplete database is defined world-by-world: the
answer to ``q`` over a representation ``T`` is the set of instances
``{q(W) : W a world of T}``.  This module provides that reference semantics
(used to validate the c-table algorithm against brute force) and the
representability check that demonstrates the paper's Figure 1 point: the
answer of the example query cannot be represented by a maybe-table.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator

from repro.algebra.ast import Query
from repro.incomplete.ctables import CTable
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup
from repro.semirings.boolean import BooleanSemiring

__all__ = [
    "query_possible_worlds",
    "answer_world_set",
    "certain_answers",
    "possible_answers",
]


def query_possible_worlds(
    query: Query,
    table: CTable,
    relation_name: str = "R",
    *,
    variables: Iterable[str] | None = None,
) -> Iterator[tuple[Dict[str, bool], frozenset[Tup]]]:
    """Evaluate ``query`` in every possible world of a single c-table.

    Yields (assignment, answer-world) pairs: for each truth assignment of the
    table's variables, the query is evaluated over the corresponding ordinary
    relation with set semantics.  This is the *definition* of query answering
    on incomplete databases, against which the Imielinski-Lipski/PosBool
    computation is checked (they must produce the same world set).
    """
    boolean = BooleanSemiring()
    for assignment, world in table.possible_worlds(variables):
        database = Database(boolean)
        relation = KRelation(boolean, table.schema)
        for tup in world:
            relation.set(tup, True)
        database.register(relation_name, relation)
        answer = query.evaluate(database)
        yield assignment, frozenset(answer.support)


def answer_world_set(
    query: Query,
    table: CTable,
    relation_name: str = "R",
    *,
    variables: Iterable[str] | None = None,
) -> frozenset[frozenset[Tup]]:
    """The set of distinct answer worlds of ``query`` over the c-table."""
    return frozenset(
        answer
        for _, answer in query_possible_worlds(
            query, table, relation_name, variables=variables
        )
    )


def certain_answers(
    query: Query, table: CTable, relation_name: str = "R"
) -> frozenset[Tup]:
    """Tuples present in the answer of every possible world."""
    worlds = list(answer_world_set(query, table, relation_name))
    if not worlds:
        return frozenset()
    return frozenset.intersection(*worlds)


def possible_answers(
    query: Query, table: CTable, relation_name: str = "R"
) -> frozenset[Tup]:
    """Tuples present in the answer of at least one possible world."""
    worlds = answer_world_set(query, table, relation_name)
    result: set[Tup] = set()
    for world in worlds:
        result |= world
    return frozenset(result)
