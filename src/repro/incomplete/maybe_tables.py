"""Maybe-tables: the simple incomplete-database representation of Figure 1.

A *maybe-table* annotates each tuple as either certain or optional ("?").
It represents the set of possible worlds obtained by independently keeping or
dropping every optional tuple.  Maybe-tables are a weak representation
system: they are not closed under relational queries (the paper's Figure 1
example), which is what motivates c-tables and, ultimately, K-relations.

A maybe-table is faithfully encoded as a ``PosBool(B)``-relation in which
every optional tuple carries its own Boolean variable and certain tuples
carry ``true`` -- exactly the translation of Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.posbool import BoolExpr, PosBoolSemiring

__all__ = ["MaybeTable"]


@dataclass
class _MaybeRow:
    tup: Tup
    optional: bool
    variable: str | None


class MaybeTable:
    """A relation whose tuples are either certain or optional ("maybe") tuples."""

    def __init__(self, schema: Schema | Iterable[str]):
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._rows: List[_MaybeRow] = []
        self._variable_counter = 0

    # -- construction -----------------------------------------------------------
    def add_certain(self, row: Any) -> Tup:
        """Add a tuple that is present in every possible world."""
        tup = self._coerce(row)
        self._rows.append(_MaybeRow(tup, optional=False, variable=None))
        return tup

    def add_maybe(self, row: Any, *, variable: str | None = None) -> Tup:
        """Add an optional ("?") tuple, optionally naming its Boolean variable."""
        tup = self._coerce(row)
        if variable is None:
            self._variable_counter += 1
            variable = f"b{self._variable_counter}"
        self._rows.append(_MaybeRow(tup, optional=True, variable=variable))
        return tup

    def _coerce(self, row: Any) -> Tup:
        if isinstance(row, Tup):
            tup = row
        elif isinstance(row, dict):
            tup = Tup(row)
        else:
            tup = Tup.from_values(self.schema.attributes, row)
        if tup.attributes != self.schema.attribute_set:
            raise SchemaError(f"{tup} does not match schema {self.schema}")
        return tup

    # -- structure ---------------------------------------------------------------
    @property
    def certain_tuples(self) -> Tuple[Tup, ...]:
        """Tuples present in every world."""
        return tuple(r.tup for r in self._rows if not r.optional)

    @property
    def optional_tuples(self) -> Tuple[Tup, ...]:
        """Tuples present only in some worlds."""
        return tuple(r.tup for r in self._rows if r.optional)

    @property
    def variables(self) -> Tuple[str, ...]:
        """Boolean variables of the optional tuples, in insertion order."""
        return tuple(r.variable for r in self._rows if r.optional)  # type: ignore[misc]

    def __len__(self) -> int:
        return len(self._rows)

    # -- semantics ----------------------------------------------------------------
    def possible_worlds(self) -> Iterator[frozenset[Tup]]:
        """Enumerate the represented worlds (sets of tuples).

        Every subset of the optional tuples, together with all certain
        tuples, is one world; worlds that coincide as sets are yielded once.
        """
        optional = [r for r in self._rows if r.optional]
        certain = frozenset(r.tup for r in self._rows if not r.optional)
        seen: set[frozenset[Tup]] = set()
        for mask in range(2 ** len(optional)):
            world = set(certain)
            for bit, row in enumerate(optional):
                if mask >> bit & 1:
                    world.add(row.tup)
            frozen = frozenset(world)
            if frozen not in seen:
                seen.add(frozen)
                yield frozen

    def to_posbool_relation(self) -> KRelation:
        """Encode as a ``PosBool(B)``-relation (the c-table of Figure 1(b))."""
        semiring = PosBoolSemiring()
        relation = KRelation(semiring, self.schema)
        for row in self._rows:
            condition = BoolExpr.true() if not row.optional else BoolExpr.var(row.variable)
            relation.set(row.tup, semiring.add(relation.annotation(row.tup), condition))
        return relation

    def to_boolean_relation(self, world: Iterable[Tup]) -> KRelation:
        """Materialize one possible world as an ordinary (Boolean) relation."""
        semiring = BooleanSemiring()
        relation = KRelation(semiring, self.schema)
        for tup in world:
            relation.set(tup, True)
        return relation

    def assignment_for_world(self, world: Iterable[Tup]) -> Dict[str, bool]:
        """The Boolean assignment whose worlds contains exactly the given tuples."""
        world_set = set(world)
        assignment: Dict[str, bool] = {}
        for row in self._rows:
            if row.optional:
                assignment[row.variable] = row.tup in world_set  # type: ignore[index]
        return assignment

    @staticmethod
    def can_represent(worlds: Sequence[frozenset[Tup]]) -> bool:
        """Whether a set of possible worlds is representable by *some* maybe-table.

        A maybe-table's worlds are exactly: all sets ``C ∪ S`` with ``S`` any
        subset of the optional tuples, ``C`` the certain ones.  Equivalently
        the world set must be closed under union and intersection and contain
        every set between the intersection (certain tuples) and the union
        (all tuples).  The paper's Figure 1 result fails this closure, which
        is the motivation for c-tables.
        """
        if not worlds:
            return False
        world_list = [frozenset(w) for w in worlds]
        world_set = set(world_list)
        certain = frozenset.intersection(*world_list)
        everything = frozenset().union(*world_list)
        optional = everything - certain
        # The maybe-table over (certain, optional) represents 2^|optional| worlds;
        # representability means the given world set is exactly that family.
        if len(world_set) != 2 ** len(optional):
            return False
        for world in world_set:
            if not (certain <= world <= everything):
                return False
        return True
