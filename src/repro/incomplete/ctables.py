"""Boolean c-tables and the Imielinski-Lipski query-answering algorithm.

A (Boolean) c-table annotates every tuple with a *condition*: a positive
Boolean expression over a set of variables.  The table represents one
possible world per truth assignment of the variables -- the world containing
exactly the tuples whose condition evaluates to true.  Imielinski and Lipski
showed that c-tables are closed under relational algebra; the paper's central
observation (Section 3) is that their algorithm *is* the generic positive
algebra of Definition 3.2 instantiated at the semiring ``PosBool(B)``.

A :class:`CTable` is therefore a thin, domain-flavoured wrapper around a
``PosBool(B)``-annotated :class:`~repro.relations.krelation.KRelation`: it
adds possible-worlds semantics, world enumeration, and certain/possible
answer extraction, while query answering is literally
:mod:`repro.algebra.operators` on the underlying K-relation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.tuples import Tup
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.posbool import BoolExpr, PosBoolSemiring

__all__ = ["CTable", "ctable_database"]


class CTable:
    """A Boolean c-table: tuples annotated with positive Boolean conditions."""

    def __init__(self, schema: Schema | Iterable[str], rows: Iterable[Any] = ()):
        self.semiring = PosBoolSemiring()
        self.relation = KRelation(self.semiring, schema)
        for entry in rows:
            if isinstance(entry, tuple) and len(entry) == 2 and not isinstance(entry[0], str):
                row, condition = entry
            else:
                row, condition = entry, True
            self.add(row, condition)

    @classmethod
    def from_relation(cls, relation: KRelation) -> "CTable":
        """Wrap an existing ``PosBool(B)``-relation as a c-table."""
        if not isinstance(relation.semiring, PosBoolSemiring):
            raise SchemaError("CTable.from_relation expects a PosBool(B)-relation")
        table = cls(relation.schema)
        for tup, condition in relation.items():
            table.relation.set(tup, condition)
        return table

    # -- construction -----------------------------------------------------------
    def add(self, row: Any, condition: BoolExpr | str | bool = True) -> Tup:
        """Add a tuple under a condition (conditions of equal tuples are OR-ed)."""
        return self.relation.add(row, BoolExpr.of(condition))

    @property
    def schema(self) -> Schema:
        """The attribute schema."""
        return self.relation.schema

    @property
    def variables(self) -> frozenset[str]:
        """All condition variables used by the table."""
        result: set[str] = set()
        for condition in self.relation.annotations():
            result |= condition.variables
        return frozenset(result)

    def condition(self, row: Any) -> BoolExpr:
        """The condition annotating ``row`` (false when absent)."""
        return self.relation.annotation(row)

    def __len__(self) -> int:
        return len(self.relation)

    def __iter__(self) -> Iterator[Tup]:
        return iter(self.relation)

    # -- possible-worlds semantics ------------------------------------------------
    def world(self, assignment: Mapping[str, bool]) -> KRelation:
        """The possible world selected by a truth assignment (a Boolean relation)."""
        boolean = BooleanSemiring()
        result = KRelation(boolean, self.schema)
        for tup, condition in self.relation.items():
            if condition.evaluate(assignment):
                result.set(tup, True)
        return result

    def possible_worlds(
        self, variables: Iterable[str] | None = None
    ) -> Iterator[tuple[Dict[str, bool], frozenset[Tup]]]:
        """Enumerate (assignment, world) pairs over the given variables.

        ``variables`` defaults to the variables mentioned by the table; a
        caller reproducing Figure 1(c) passes the input table's variables so
        that output worlds align with input assignments.
        """
        names = sorted(variables) if variables is not None else sorted(self.variables)
        for mask in range(2 ** len(names)):
            assignment = {
                name: bool(mask >> index & 1) for index, name in enumerate(names)
            }
            world = frozenset(self.world(assignment).support)
            yield assignment, world

    def world_set(self, variables: Iterable[str] | None = None) -> frozenset[frozenset[Tup]]:
        """The set of distinct possible worlds (the semantics of the c-table)."""
        return frozenset(world for _, world in self.possible_worlds(variables))

    # -- answers --------------------------------------------------------------------
    def certain_tuples(self) -> frozenset[Tup]:
        """Tuples present in every possible world (condition equivalent to true)."""
        return frozenset(
            tup for tup, condition in self.relation.items() if condition.is_true
        )

    def possible_tuples(self) -> frozenset[Tup]:
        """Tuples present in at least one possible world (satisfiable condition).

        Positive conditions are satisfiable exactly when they are not the
        constant false, so this is simply the support.
        """
        return frozenset(self.relation.support)

    def simplified(self) -> "CTable":
        """Return a copy (conditions are already kept in minimal DNF).

        Provided for symmetry with the paper's Figure 2(a) -> 2(b)
        simplification step; with the canonical ``PosBool`` representation
        the simplification has already happened, so this is a copy.
        """
        return CTable.from_relation(self.relation.copy())

    def __str__(self) -> str:
        return self.relation.to_table()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CTable({list(self.schema.attributes)}, {len(self)} tuples)"


def ctable_database(tables: Mapping[str, CTable]) -> Database:
    """Bundle several c-tables into a ``PosBool(B)`` database for querying."""
    database = Database(PosBoolSemiring())
    for name, table in tables.items():
        database.register(name, table.relation)
    return database
