"""Materialized views over K-relations, maintained by delta propagation.

A :class:`MaterializedView` compiles a positive-algebra query into a tree of
operator nodes, each owning the materialized K-relation of its subquery.
Applying an :class:`~repro.incremental.delta.UpdateBatch` propagates
change-valued deltas bottom-up through the tree:

* linear operators (union, projection, selection, renaming) pass the child
  delta through themselves;
* a join node uses the two-term rule ``Δ(L ⋈ R) = ΔL ⋈ R_old ∪ L_new ⋈ ΔR``
  against its children's *materialized* relations, so no subquery is ever
  re-evaluated -- the work per update is proportional to the deltas and the
  tuples they join with, not to the view size.

Subtrees whose base relations are untouched by a batch are skipped
entirely.  Deletions take one of three paths (``last_apply_mode`` records
which ran):

* **ring** semirings (``has_negation``, e.g. ``Z`` or ``Z[X]``): a deletion
  is the negated annotation delta ``-R(t)`` and propagates through the
  ordinary bilinear delta rules (``"incremental"``);
* plain semirings: a **delete/rederive pass** walks the node tree bottom-up
  recomputing only the *affected keys* of each materialization -- removed
  leaf tuples, the union/selection/rename images of changed child tuples,
  the projection groups they collapse into, and for joins the output keys
  reachable from a changed child tuple (found by probing the maintained
  children, each output recomputed in O(1) from the two child annotations)
  (``"delete_rederive"``);
* **bounded recomputation** -- re-evaluating the operator nodes whose
  subtree reads a touched base relation -- remains only as the last-resort
  fallback if the targeted pass fails (``"recompute"``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.algebra import operators
from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.errors import QueryError
from repro.obs import trace as _trace
from repro.incremental.delta import (
    UpdateBatch,
    apply_batch_to_database,
    apply_delta,
    batch_deltas,
)
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["MaterializedView"]


class _Node:
    """One operator of the compiled view: the query node, children, and the
    materialized K-relation of the subquery rooted here.

    Leaf (``RelationRef``) nodes hold a *private copy* of the base relation:
    each leaf occurrence advances from old to new state exactly when the
    propagation pass reaches it, which is what keeps the two-term join rule
    correct even when the same base relation feeds both sides of a join.
    """

    __slots__ = ("query", "children", "relation", "base_names")

    def __init__(self, query: Query, children: List["_Node"], relation: KRelation):
        self.query = query
        self.children = children
        self.relation = relation
        self.base_names = query.relation_names()


def _build(
    query: Query, database: Database, executor: str = "naive", storage: str = "row"
) -> _Node:
    """Compile ``query`` into a node tree, evaluating every subquery once."""
    if isinstance(query, RelationRef):
        return _Node(query, [], database.relation(query.name).with_storage(storage))
    if isinstance(query, EmptyRelation):
        return _Node(query, [], operators.empty(database.semiring, query.schema))
    children = [_build(child, database, executor, storage) for child in query.children()]
    relation = _evaluate_node(query, children, database, executor, storage)
    return _Node(query, children, relation)


def _join(left: KRelation, right: KRelation, executor: str) -> KRelation:
    """The join used by materialization and delta propagation.

    ``executor="pipelined"`` routes through the shared physical kernel
    (:func:`repro.engine.kernels.join_relations`): cost-driven build-side
    selection plus batched annotation accumulation.
    """
    if executor == "pipelined":
        from repro.engine.kernels import join_relations

        return join_relations(left, right)
    return operators.join(left, right)


def _project(relation: KRelation, attributes, executor: str) -> KRelation:
    if executor == "pipelined":
        from repro.engine.kernels import project_relation

        return project_relation(relation, attributes)
    return operators.project(relation, attributes)


def _evaluate_node(
    query: Query,
    children: List[_Node],
    database: Database,
    executor: str = "naive",
    storage: str = "row",
) -> KRelation:
    """Evaluate one operator from its children's materialized relations.

    The materialization is pinned to the view's ``storage`` backend so that
    every node the delta rules read from (leaf copies and operator results
    alike) stays on the backend the caller selected -- under the pipelined
    executor this is what lets the shared kernels keep taking the
    vectorized path across repeated ``apply`` calls.
    """
    if isinstance(query, Union):
        relation = operators.union(children[0].relation, children[1].relation)
    elif isinstance(query, Project):
        relation = _project(children[0].relation, query.attributes, executor)
    elif isinstance(query, Select):
        relation = operators.select(children[0].relation, query.predicate)
    elif isinstance(query, Rename):
        relation = operators.rename(children[0].relation, query.mapping)
    elif isinstance(query, Join):
        relation = _join(children[0].relation, children[1].relation, executor)
    else:
        raise QueryError(
            f"cannot materialize query node {type(query).__name__}; "
            "materialized views cover the positive algebra of Definition 3.2"
        )
    if relation.storage != storage:
        relation = relation.with_storage(storage)
    return relation


def _propagate(
    node: _Node,
    deltas: Mapping[str, KRelation],
    changed_out: Dict[Tup, Any] | None = None,
    executor: str = "naive",
) -> KRelation:
    """Advance ``node`` (and its subtree) to the post-update state.

    Returns the node's change-valued delta.  On entry the subtree holds the
    pre-update materializations; on exit the post-update ones.  When
    ``changed_out`` is given (the root call), it collects the tuples whose
    materialized annotation *actually* changed -- a delta entry that is
    absorbed without effect (idempotent re-insert) is not a change.
    """
    query = node.query
    if not (node.base_names & deltas.keys()):
        return node.relation.empty_like()
    if isinstance(query, RelationRef):
        delta = deltas[query.name]
        applied = apply_delta(node.relation, delta)
        if changed_out is not None:
            changed_out.update(applied)
        return delta
    if isinstance(query, Union):
        delta = operators.union(
            _propagate(node.children[0], deltas, executor=executor),
            _propagate(node.children[1], deltas, executor=executor),
        )
    elif isinstance(query, Project):
        delta = _project(
            _propagate(node.children[0], deltas, executor=executor),
            query.attributes,
            executor,
        )
    elif isinstance(query, Select):
        delta = operators.select(
            _propagate(node.children[0], deltas, executor=executor), query.predicate
        )
    elif isinstance(query, Rename):
        delta = operators.rename(
            _propagate(node.children[0], deltas, executor=executor), query.mapping
        )
    elif isinstance(query, Join):
        left, right = node.children
        # Two-term bilinear rule: the left child advances first, so the
        # first term joins ΔL with R's *old* relation and the second joins
        # L's *new* relation with ΔR (absorbing the ΔL ⋈ ΔR cross term).
        left_delta = _propagate(left, deltas, executor=executor)
        delta = _join(left_delta, right.relation, executor)
        right_delta = _propagate(right, deltas, executor=executor)
        delta = operators.union(delta, _join(left.relation, right_delta, executor))
    else:  # pragma: no cover - _build already rejected exotic nodes
        raise QueryError(f"no delta rule for {type(query).__name__}")
    applied = apply_delta(node.relation, delta)
    if changed_out is not None:
        changed_out.update(applied)
    return delta


def _refresh_value(relation: KRelation, tup: Tup, value: Any, semiring) -> bool:
    """Store ``value`` for ``tup`` (``None``/zero = remove); report a change."""
    annotations = relation._annotations
    current = annotations.get(tup)
    if value is None or semiring.is_zero(value):
        if current is None:
            return False
        del annotations[tup]
        return True
    if current is not None and current == value:
        return False
    annotations[tup] = value
    return True


def _delete_rederive(node: _Node, removed: Mapping[str, set], semiring) -> set:
    """Propagate base-relation deletions by recomputing only affected keys.

    ``removed`` maps base relation names to the sets of tuples deleted from
    them (already applied to the database).  Every operator recomputes just
    the keys a changed child tuple can reach: unions, selections and renames
    re-read the one child annotation, projections re-aggregate only the
    groups a changed child tuple collapses into (one scan of the child
    materialization), and joins probe the maintained children for the output
    keys reachable from a changed child tuple, recomputing each in O(1) as
    the product of the two child annotations.  No negation is needed --
    deletion works in every semiring because affected values are recomputed,
    not subtracted.  Returns the node tuples whose materialized annotation
    changed (removed or revalued).
    """
    if not (node.base_names & removed.keys()):
        return set()
    query = node.query
    relation = node.relation
    if isinstance(query, RelationRef):
        affected = set()
        annotations = relation._annotations
        for tup in removed.get(query.name, ()):
            if tup in annotations:
                del annotations[tup]
                affected.add(tup)
        return affected
    if isinstance(query, Union):
        left, right = node.children
        affected = _delete_rederive(left, removed, semiring) | _delete_rederive(
            right, removed, semiring
        )
        changed = set()
        for tup in affected:
            left_value = left.relation._annotations.get(tup)
            right_value = right.relation._annotations.get(tup)
            if left_value is None:
                value = right_value
            elif right_value is None:
                value = left_value
            else:
                value = semiring.add(left_value, right_value)
            if _refresh_value(relation, tup, value, semiring):
                changed.add(tup)
        return changed
    if isinstance(query, Project):
        child = node.children[0]
        child_changed = _delete_rederive(child, removed, semiring)
        if not child_changed:
            return set()
        attributes = tuple(query.attributes)
        keys = {tup.restrict(attributes) for tup in child_changed}
        totals: Dict[Tup, Any] = {}
        for tup, value in child.relation.items():
            key = tup.restrict(attributes)
            if key in keys:
                current = totals.get(key)
                totals[key] = value if current is None else semiring.add(current, value)
        return {
            key
            for key in keys
            if _refresh_value(relation, key, totals.get(key), semiring)
        }
    if isinstance(query, Select):
        child = node.children[0]
        changed = set()
        for tup in _delete_rederive(child, removed, semiring):
            value = child.relation._annotations.get(tup)
            if value is not None:
                value = semiring.mul(
                    value, operators.predicate_factor(semiring, query.predicate(tup))
                )
            if _refresh_value(relation, tup, value, semiring):
                changed.add(tup)
        return changed
    if isinstance(query, Rename):
        child = node.children[0]
        mapping = dict(query.mapping)
        changed = set()
        for tup in _delete_rederive(child, removed, semiring):
            image = tup.rename(mapping)
            value = child.relation._annotations.get(tup)
            if _refresh_value(relation, image, value, semiring):
                changed.add(image)
        return changed
    if isinstance(query, Join):
        left, right = node.children
        left_changed = _delete_rederive(left, removed, semiring)
        right_changed = _delete_rederive(right, removed, semiring)
        # Every output key whose value may have changed joins a changed
        # child tuple with the other side's old state.  Old supports are
        # covered by (new support) ∪ (changed keys) on each side, so three
        # probe joins against the *maintained* children find them all; the
        # probes carry annotation 1 so they only enumerate keys.
        one = semiring.one()
        probes: List[KRelation] = []
        temp_left = temp_right = None
        if left_changed:
            temp_left = KRelation(
                semiring,
                left.relation.schema,
                ((tup, one) for tup in left_changed),
            )
            probes.append(operators.join(temp_left, right.relation))
        if right_changed:
            temp_right = KRelation(
                semiring,
                right.relation.schema,
                ((tup, one) for tup in right_changed),
            )
            probes.append(operators.join(left.relation, temp_right))
        if temp_left is not None and temp_right is not None:
            probes.append(operators.join(temp_left, temp_right))
        affected = set()
        for probe in probes:
            affected.update(probe._annotations)
        left_attributes = left.relation.schema.attributes
        right_attributes = right.relation.schema.attributes
        left_annotations = left.relation._annotations
        right_annotations = right.relation._annotations
        changed = set()
        for tup in affected:
            left_value = left_annotations.get(tup.restrict(left_attributes))
            right_value = right_annotations.get(tup.restrict(right_attributes))
            value = (
                semiring.mul(left_value, right_value)
                if left_value is not None and right_value is not None
                else None
            )
            if _refresh_value(relation, tup, value, semiring):
                changed.add(tup)
        return changed
    raise QueryError(f"no deletion rule for {type(query).__name__}")


def _rebuild(
    node: _Node,
    database: Database,
    touched: frozenset[str],
    executor: str = "naive",
    storage: str = "row",
) -> None:
    """Bounded recomputation: re-evaluate only subtrees reading ``touched``."""
    if not (node.base_names & touched):
        return
    if isinstance(node.query, RelationRef):
        node.relation = database.relation(node.query.name).with_storage(storage)
        return
    for child in node.children:
        _rebuild(child, database, touched, executor, storage)
    node.relation = _evaluate_node(node.query, node.children, database, executor, storage)


class MaterializedView:
    """A query result kept up to date under base-relation update streams.

    Parameters
    ----------
    query:
        Any positive-algebra :class:`~repro.algebra.ast.Query`.
    database:
        The database the view reads; :meth:`apply` keeps its base relations
        and the view in sync.
    name:
        Optional label used in ``repr``.
    optimize:
        Run ``query`` through the semiring-aware planner
        (:func:`repro.planner.optimize`) before compiling the node tree.
        The maintained relation is identical annotation-for-annotation --
        the rewrites are exactly the Proposition 3.4 identities -- but both
        the initial materialization and every delta propagation walk the
        cheaper plan.  ``query`` keeps the original expression; the compiled
        plan is available as :attr:`plan`.
    executor:
        ``"naive"`` (default) evaluates operator nodes through
        :mod:`repro.algebra.operators`; ``"pipelined"`` routes the join and
        projection nodes -- both in the initial materialization and in every
        delta-propagation join -- through the shared physical kernels of
        :mod:`repro.engine.kernels` (cost-driven build side, batched
        annotation accumulation).  The maintained relation is identical.
    storage:
        Physical backend for every materialized relation in the node tree
        (``"row"`` or ``"columnar"``; ``None`` defers to ``REPRO_STORAGE``,
        then to the database's own backend).  With ``executor="pipelined"``
        a columnar view routes its join and projection nodes through the
        whole-column vectorized kernels on every delta propagation.  The
        maintained annotations are identical on either backend.

    Usage::

        view = MaterializedView(Q.relation("R").join(Q.relation("S")), db)
        changed = view.apply(UpdateBatch(insertions={"R": [((1, 2), 1)]}))
        view.relation          # the maintained K-relation

    ``apply`` returns the view tuples whose annotation changed, mapped to
    their new annotations (the semiring zero for tuples that left the
    support).
    """

    def __init__(
        self,
        query: Query,
        database: Database,
        *,
        name: str = "view",
        optimize: bool = False,
        executor: str = "naive",
        storage: Any = None,
    ):
        self.query = query
        self.database = database
        self.name = name
        if executor not in ("naive", "pipelined"):
            raise QueryError(
                f"unknown executor {executor!r}; expected 'naive' or 'pipelined'"
            )
        self.executor = executor
        from repro.engine.compile import resolve_execution_storage

        #: The resolved physical backend of every materialized node.
        self.storage = resolve_execution_storage(storage, database)
        if optimize:
            from repro.planner import optimize as _optimize

            #: The compiled plan (the optimized query when ``optimize=True``).
            self.plan = _optimize(query, database)
        else:
            self.plan = query
        with _trace.span("view.build", view=name, executor=executor) as sp:
            self._root = _build(self.plan, database, executor, self.storage)
            sp.set(rows=len(self._root.relation))
        #: ``"incremental"``, ``"delete_rederive"`` or ``"recompute"`` -- how
        #: the last :meth:`apply` ran (``None`` before the first apply).
        self.last_apply_mode: str | None = None

    # -- state ------------------------------------------------------------------
    @property
    def relation(self) -> KRelation:
        """The maintained view contents (do not mutate in place)."""
        return self._root.relation

    @property
    def semiring(self):
        """The annotation semiring of the view."""
        return self.database.semiring

    @property
    def supports_deletions(self) -> bool:
        """Whether deletions propagate incrementally (ring annotations)."""
        return self.database.semiring.has_negation

    # -- maintenance -------------------------------------------------------------
    def apply(
        self, batch: UpdateBatch | Mapping[str, Any]
    ) -> Dict[Tup, Any]:
        """Apply an update batch to the base relations and the view.

        Insertions always propagate incrementally.  Batches containing
        deletions propagate as negated deltas when the semiring has negation,
        and through the targeted delete/rederive pass otherwise (bounded
        recomputation remains only as the last-resort fallback).  Returns the
        changed view tuples mapped to their new annotations (zero = removed).
        """
        batch = UpdateBatch.of(batch)
        if batch.is_empty():
            self.last_apply_mode = "incremental"
            return {}
        if batch.has_deletions and not self.supports_deletions:
            with _trace.span(
                "view.apply", view=self.name, mode="delete_rederive"
            ) as sp:
                changed = self._apply_by_delete_rederive(batch)
                sp.set(changed=len(changed), mode=self.last_apply_mode)
                return changed
        with _trace.span("view.apply", view=self.name, mode="incremental") as sp:
            deltas = batch_deltas(self.database, batch)
            apply_batch_to_database(self.database, batch)
            changed: Dict[Tup, Any] = {}
            _propagate(self._root, deltas, changed, executor=self.executor)
            self.last_apply_mode = "incremental"
            sp.set(changed=len(changed))
            return changed

    def _apply_by_delete_rederive(self, batch: UpdateBatch) -> Dict[Tup, Any]:
        """Targeted deletion pass for semirings without negation.

        Deletions apply first and propagate through :func:`_delete_rederive`
        (affected keys only); insertions then follow the ordinary
        delta-propagation path.  Falls back to bounded recomputation only if
        the targeted pass fails.
        """
        changed: Dict[Tup, Any] = {}
        zero = self.semiring.zero()
        removed: Dict[str, set] = {}
        for name, rows in batch.deletions.items():
            base = self.database.relation(name)
            tups = {
                tup
                for tup in (base._coerce_tuple(row) for row in rows)
                if tup in base._annotations
            }
            if tups:
                removed[name] = tups
        mode = "delete_rederive"
        if removed:
            apply_batch_to_database(
                self.database, UpdateBatch(deletions=batch.deletions)
            )
            old = dict(self._root.relation._annotations)
            try:
                affected = _delete_rederive(self._root, removed, self.semiring)
            except QueryError:
                # Last resort: the database already holds the post-delete
                # state, so bounded recomputation from it is always sound.
                touched = frozenset(removed)
                _rebuild(
                    self._root, self.database, touched, self.executor, self.storage
                )
                new = self._root.relation._annotations
                affected = {
                    tup
                    for tup in set(old) | set(new)
                    if old.get(tup) != new.get(tup)
                }
                mode = "recompute"
            annotations = self._root.relation._annotations
            for tup in affected:
                changed[tup] = annotations.get(tup, zero)
        if any(batch.insertions.values()):
            insertions = UpdateBatch(insertions=batch.insertions)
            deltas = batch_deltas(self.database, insertions)
            apply_batch_to_database(self.database, insertions)
            _propagate(self._root, deltas, changed, executor=self.executor)
        self.last_apply_mode = mode
        return changed

    def _apply_by_recompute(self, batch: UpdateBatch) -> Dict[Tup, Any]:
        touched = batch.touched_relations
        apply_batch_to_database(self.database, batch)
        old = dict(self._root.relation._annotations)
        _rebuild(self._root, self.database, touched, self.executor, self.storage)
        self.last_apply_mode = "recompute"
        new = self._root.relation._annotations
        zero = self.semiring.zero()
        changed = {tup: value for tup, value in new.items() if old.get(tup) != value}
        changed.update({tup: zero for tup in old if tup not in new})
        return changed

    def refresh(self) -> KRelation:
        """Rebuild the whole view from the database (full recomputation)."""
        self._root = _build(self.plan, self.database, self.executor, self.storage)
        return self._root.relation

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.name!r}, {self.semiring.name}, "
            f"{len(self._root.relation)} tuples)"
        )
