"""Materialized views over K-relations, maintained by delta propagation.

A :class:`MaterializedView` compiles a positive-algebra query into a tree of
operator nodes, each owning the materialized K-relation of its subquery.
Applying an :class:`~repro.incremental.delta.UpdateBatch` propagates
change-valued deltas bottom-up through the tree:

* linear operators (union, projection, selection, renaming) pass the child
  delta through themselves;
* a join node uses the two-term rule ``Δ(L ⋈ R) = ΔL ⋈ R_old ∪ L_new ⋈ ΔR``
  against its children's *materialized* relations, so no subquery is ever
  re-evaluated -- the work per update is proportional to the deltas and the
  tuples they join with, not to the view size.

Subtrees whose base relations are untouched by a batch are skipped
entirely.  Deletions are expressed as negated annotation deltas, which needs
the semiring's ring capability (``has_negation``, e.g. ``Z`` or ``Z[X]``);
over a plain semiring a batch containing deletions falls back to **bounded
recomputation** -- only the operator nodes whose subtree reads a touched
base relation are re-evaluated, untouched subtrees keep their
materializations (``last_apply_mode`` records which path ran).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.algebra import operators
from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.errors import QueryError
from repro.obs import trace as _trace
from repro.incremental.delta import (
    UpdateBatch,
    apply_batch_to_database,
    apply_delta,
    batch_deltas,
)
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["MaterializedView"]


class _Node:
    """One operator of the compiled view: the query node, children, and the
    materialized K-relation of the subquery rooted here.

    Leaf (``RelationRef``) nodes hold a *private copy* of the base relation:
    each leaf occurrence advances from old to new state exactly when the
    propagation pass reaches it, which is what keeps the two-term join rule
    correct even when the same base relation feeds both sides of a join.
    """

    __slots__ = ("query", "children", "relation", "base_names")

    def __init__(self, query: Query, children: List["_Node"], relation: KRelation):
        self.query = query
        self.children = children
        self.relation = relation
        self.base_names = query.relation_names()


def _build(
    query: Query, database: Database, executor: str = "naive", storage: str = "row"
) -> _Node:
    """Compile ``query`` into a node tree, evaluating every subquery once."""
    if isinstance(query, RelationRef):
        return _Node(query, [], database.relation(query.name).with_storage(storage))
    if isinstance(query, EmptyRelation):
        return _Node(query, [], operators.empty(database.semiring, query.schema))
    children = [_build(child, database, executor, storage) for child in query.children()]
    relation = _evaluate_node(query, children, database, executor, storage)
    return _Node(query, children, relation)


def _join(left: KRelation, right: KRelation, executor: str) -> KRelation:
    """The join used by materialization and delta propagation.

    ``executor="pipelined"`` routes through the shared physical kernel
    (:func:`repro.engine.kernels.join_relations`): cost-driven build-side
    selection plus batched annotation accumulation.
    """
    if executor == "pipelined":
        from repro.engine.kernels import join_relations

        return join_relations(left, right)
    return operators.join(left, right)


def _project(relation: KRelation, attributes, executor: str) -> KRelation:
    if executor == "pipelined":
        from repro.engine.kernels import project_relation

        return project_relation(relation, attributes)
    return operators.project(relation, attributes)


def _evaluate_node(
    query: Query,
    children: List[_Node],
    database: Database,
    executor: str = "naive",
    storage: str = "row",
) -> KRelation:
    """Evaluate one operator from its children's materialized relations.

    The materialization is pinned to the view's ``storage`` backend so that
    every node the delta rules read from (leaf copies and operator results
    alike) stays on the backend the caller selected -- under the pipelined
    executor this is what lets the shared kernels keep taking the
    vectorized path across repeated ``apply`` calls.
    """
    if isinstance(query, Union):
        relation = operators.union(children[0].relation, children[1].relation)
    elif isinstance(query, Project):
        relation = _project(children[0].relation, query.attributes, executor)
    elif isinstance(query, Select):
        relation = operators.select(children[0].relation, query.predicate)
    elif isinstance(query, Rename):
        relation = operators.rename(children[0].relation, query.mapping)
    elif isinstance(query, Join):
        relation = _join(children[0].relation, children[1].relation, executor)
    else:
        raise QueryError(
            f"cannot materialize query node {type(query).__name__}; "
            "materialized views cover the positive algebra of Definition 3.2"
        )
    if relation.storage != storage:
        relation = relation.with_storage(storage)
    return relation


def _propagate(
    node: _Node,
    deltas: Mapping[str, KRelation],
    changed_out: Dict[Tup, Any] | None = None,
    executor: str = "naive",
) -> KRelation:
    """Advance ``node`` (and its subtree) to the post-update state.

    Returns the node's change-valued delta.  On entry the subtree holds the
    pre-update materializations; on exit the post-update ones.  When
    ``changed_out`` is given (the root call), it collects the tuples whose
    materialized annotation *actually* changed -- a delta entry that is
    absorbed without effect (idempotent re-insert) is not a change.
    """
    query = node.query
    if not (node.base_names & deltas.keys()):
        return node.relation.empty_like()
    if isinstance(query, RelationRef):
        delta = deltas[query.name]
        applied = apply_delta(node.relation, delta)
        if changed_out is not None:
            changed_out.update(applied)
        return delta
    if isinstance(query, Union):
        delta = operators.union(
            _propagate(node.children[0], deltas, executor=executor),
            _propagate(node.children[1], deltas, executor=executor),
        )
    elif isinstance(query, Project):
        delta = _project(
            _propagate(node.children[0], deltas, executor=executor),
            query.attributes,
            executor,
        )
    elif isinstance(query, Select):
        delta = operators.select(
            _propagate(node.children[0], deltas, executor=executor), query.predicate
        )
    elif isinstance(query, Rename):
        delta = operators.rename(
            _propagate(node.children[0], deltas, executor=executor), query.mapping
        )
    elif isinstance(query, Join):
        left, right = node.children
        # Two-term bilinear rule: the left child advances first, so the
        # first term joins ΔL with R's *old* relation and the second joins
        # L's *new* relation with ΔR (absorbing the ΔL ⋈ ΔR cross term).
        left_delta = _propagate(left, deltas, executor=executor)
        delta = _join(left_delta, right.relation, executor)
        right_delta = _propagate(right, deltas, executor=executor)
        delta = operators.union(delta, _join(left.relation, right_delta, executor))
    else:  # pragma: no cover - _build already rejected exotic nodes
        raise QueryError(f"no delta rule for {type(query).__name__}")
    applied = apply_delta(node.relation, delta)
    if changed_out is not None:
        changed_out.update(applied)
    return delta


def _rebuild(
    node: _Node,
    database: Database,
    touched: frozenset[str],
    executor: str = "naive",
    storage: str = "row",
) -> None:
    """Bounded recomputation: re-evaluate only subtrees reading ``touched``."""
    if not (node.base_names & touched):
        return
    if isinstance(node.query, RelationRef):
        node.relation = database.relation(node.query.name).with_storage(storage)
        return
    for child in node.children:
        _rebuild(child, database, touched, executor, storage)
    node.relation = _evaluate_node(node.query, node.children, database, executor, storage)


class MaterializedView:
    """A query result kept up to date under base-relation update streams.

    Parameters
    ----------
    query:
        Any positive-algebra :class:`~repro.algebra.ast.Query`.
    database:
        The database the view reads; :meth:`apply` keeps its base relations
        and the view in sync.
    name:
        Optional label used in ``repr``.
    optimize:
        Run ``query`` through the semiring-aware planner
        (:func:`repro.planner.optimize`) before compiling the node tree.
        The maintained relation is identical annotation-for-annotation --
        the rewrites are exactly the Proposition 3.4 identities -- but both
        the initial materialization and every delta propagation walk the
        cheaper plan.  ``query`` keeps the original expression; the compiled
        plan is available as :attr:`plan`.
    executor:
        ``"naive"`` (default) evaluates operator nodes through
        :mod:`repro.algebra.operators`; ``"pipelined"`` routes the join and
        projection nodes -- both in the initial materialization and in every
        delta-propagation join -- through the shared physical kernels of
        :mod:`repro.engine.kernels` (cost-driven build side, batched
        annotation accumulation).  The maintained relation is identical.
    storage:
        Physical backend for every materialized relation in the node tree
        (``"row"`` or ``"columnar"``; ``None`` defers to ``REPRO_STORAGE``,
        then to the database's own backend).  With ``executor="pipelined"``
        a columnar view routes its join and projection nodes through the
        whole-column vectorized kernels on every delta propagation.  The
        maintained annotations are identical on either backend.

    Usage::

        view = MaterializedView(Q.relation("R").join(Q.relation("S")), db)
        changed = view.apply(UpdateBatch(insertions={"R": [((1, 2), 1)]}))
        view.relation          # the maintained K-relation

    ``apply`` returns the view tuples whose annotation changed, mapped to
    their new annotations (the semiring zero for tuples that left the
    support).
    """

    def __init__(
        self,
        query: Query,
        database: Database,
        *,
        name: str = "view",
        optimize: bool = False,
        executor: str = "naive",
        storage: Any = None,
    ):
        self.query = query
        self.database = database
        self.name = name
        if executor not in ("naive", "pipelined"):
            raise QueryError(
                f"unknown executor {executor!r}; expected 'naive' or 'pipelined'"
            )
        self.executor = executor
        from repro.engine.compile import resolve_execution_storage

        #: The resolved physical backend of every materialized node.
        self.storage = resolve_execution_storage(storage, database)
        if optimize:
            from repro.planner import optimize as _optimize

            #: The compiled plan (the optimized query when ``optimize=True``).
            self.plan = _optimize(query, database)
        else:
            self.plan = query
        with _trace.span("view.build", view=name, executor=executor) as sp:
            self._root = _build(self.plan, database, executor, self.storage)
            sp.set(rows=len(self._root.relation))
        #: ``"incremental"`` or ``"recompute"`` -- how the last :meth:`apply`
        #: ran (``None`` before the first apply).
        self.last_apply_mode: str | None = None

    # -- state ------------------------------------------------------------------
    @property
    def relation(self) -> KRelation:
        """The maintained view contents (do not mutate in place)."""
        return self._root.relation

    @property
    def semiring(self):
        """The annotation semiring of the view."""
        return self.database.semiring

    @property
    def supports_deletions(self) -> bool:
        """Whether deletions propagate incrementally (ring annotations)."""
        return self.database.semiring.has_negation

    # -- maintenance -------------------------------------------------------------
    def apply(
        self, batch: UpdateBatch | Mapping[str, Any]
    ) -> Dict[Tup, Any]:
        """Apply an update batch to the base relations and the view.

        Insertions always propagate incrementally.  Batches containing
        deletions propagate incrementally when the semiring has negation and
        fall back to bounded recomputation otherwise.  Returns the changed
        view tuples mapped to their new annotations (zero = removed).
        """
        batch = UpdateBatch.of(batch)
        if batch.is_empty():
            self.last_apply_mode = "incremental"
            return {}
        if batch.has_deletions and not self.supports_deletions:
            with _trace.span(
                "view.apply", view=self.name, mode="recompute"
            ) as sp:
                changed = self._apply_by_recompute(batch)
                sp.set(changed=len(changed))
                return changed
        with _trace.span("view.apply", view=self.name, mode="incremental") as sp:
            deltas = batch_deltas(self.database, batch)
            apply_batch_to_database(self.database, batch)
            changed: Dict[Tup, Any] = {}
            _propagate(self._root, deltas, changed, executor=self.executor)
            self.last_apply_mode = "incremental"
            sp.set(changed=len(changed))
            return changed

    def _apply_by_recompute(self, batch: UpdateBatch) -> Dict[Tup, Any]:
        touched = batch.touched_relations
        apply_batch_to_database(self.database, batch)
        old = dict(self._root.relation._annotations)
        _rebuild(self._root, self.database, touched, self.executor, self.storage)
        self.last_apply_mode = "recompute"
        new = self._root.relation._annotations
        zero = self.semiring.zero()
        changed = {tup: value for tup, value in new.items() if old.get(tup) != value}
        changed.update({tup: zero for tup in old if tup not in new})
        return changed

    def refresh(self) -> KRelation:
        """Rebuild the whole view from the database (full recomputation)."""
        self._root = _build(self.plan, self.database, self.executor, self.storage)
        return self._root.relation

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.name!r}, {self.semiring.name}, "
            f"{len(self._root.relation)} tuples)"
        )
