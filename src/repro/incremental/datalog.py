"""Incremental datalog: maintaining a fixpoint under EDB update streams.

Datalog annotations are monotone in the EDB under the semiring's natural
order, so *insertions* (``+``-combining new annotations into EDB facts) can
resume the semi-naive fixpoint of :mod:`repro.datalog.seminaive` exactly
where it stopped: the engine keeps its per-predicate stores and
variable-binding indexes alive between updates, fires only the delta plan
variants driven by the changed EDB predicate, and drains the consequences --
no re-seeding, no re-grounding of what is already known.

Two regimes, mirroring the one-shot engine:

* **idempotent addition** (``B``, lattices, tropical, ...): the maintained
  annotations are exact at all times; an insertion costs work proportional
  to the new consequences only.
* **non-idempotent addition** (``N∞``, provenance): the engine's collect
  mode maintains the Boolean support and the set of fired rule
  instantiations incrementally (both grow monotonically under insertions),
  and the exact annotations are re-solved from the maintained grounding --
  the grounding, not the solving, is the expensive part the incremental
  path avoids redoing.

Deletions can shrink a fixpoint non-monotonically (derived facts may lose
all their derivations), which delta-plan firing cannot express; ``remove``
therefore falls back to recomputation from the updated database, as the
view layer does for semirings without negation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import DatalogError
from repro.obs import trace as _trace
from repro.datalog.fixpoint import DEFAULT_MAX_ITERATIONS, DatalogResult
from repro.datalog.grounding import GroundAtom, GroundProgram
from repro.datalog.seminaive import _SemiNaiveEngine, solve_ground_seminaive
from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["IncrementalDatalog"]


class IncrementalDatalog:
    """A datalog fixpoint kept up to date under EDB insertions.

    Usage::

        maintained = IncrementalDatalog("T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y)", db)
        maintained.insert("R", [(("a", "b"), 1)])
        maintained.result            # a DatalogResult, same contract as evaluate_program
        maintained.relation("T")     # the maintained IDB relation

    ``insert`` entries follow the :class:`~repro.relations.krelation.KRelation`
    row convention: ``(row, annotation)`` pairs or bare rows (annotation
    ``1``); annotations combine into existing EDB facts with the semiring's
    ``+``.  ``remove`` is the non-incremental escape hatch: it discards the
    rows and rebuilds the engine from the updated database.

    ``storage`` selects the physical backend of the maintained engine's
    per-predicate stores (``"row"`` or ``"columnar"``; ``None`` defers to
    ``REPRO_STORAGE``, then to the database's own backend), exactly as in
    :func:`repro.datalog.fixpoint.evaluate_program`.
    """

    def __init__(
        self,
        program: Program | str,
        database: Database,
        *,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        on_divergence: str = "top",
        storage: Any = None,
    ):
        if on_divergence not in ("top", "error", "skip"):
            raise ValueError(
                f"on_divergence must be 'top', 'error' or 'skip', got {on_divergence!r}"
            )
        if isinstance(program, str):
            program = Program.parse(program)
        self.program = program
        self.database = database
        self.semiring = database.semiring
        self.max_iterations = max_iterations
        self.on_divergence = on_divergence
        self.storage = storage
        self._idempotent = self.semiring.idempotent_add
        self._result: DatalogResult | None = None
        self._rounds = 0
        self._start_engine()

    # -- engine lifecycle -------------------------------------------------------
    def _start_engine(self) -> None:
        self._engine = _SemiNaiveEngine(
            self.program,
            self.database,
            collect=not self._idempotent,
            maintain_edb=True,
            storage=self.storage,
        )
        budget = (
            self.max_iterations
            if self._idempotent
            else max(self.max_iterations, DEFAULT_MAX_ITERATIONS)
        )
        self._rounds = self._engine.run(budget)
        self._result = None

    # -- results ----------------------------------------------------------------
    @property
    def result(self) -> DatalogResult:
        """The current fixpoint (recomputed lazily after updates)."""
        if self._result is None:
            self._result = self._compute_result()
        return self._result

    def _compute_result(self) -> DatalogResult:
        engine = self._engine
        if self._idempotent:
            ground = GroundProgram(
                self.program,
                self.database,
                [],
                engine.edb_annotations,
                engine.derivable_atoms(),
            )
            return DatalogResult(
                annotations=engine.annotations(),
                iterations=self._rounds,
                divergent_atoms=frozenset(),
                ground=ground,
            )
        return solve_ground_seminaive(
            engine.ground_program(),
            self.semiring,
            max_iterations=self.max_iterations,
            on_divergence=self.on_divergence,
        )

    def relation(self, predicate: str) -> KRelation:
        """The maintained K-relation of an IDB predicate."""
        return self.result.relation(predicate, self.database)

    def output_relation(self) -> KRelation:
        """The maintained K-relation of the program's output predicate."""
        return self.result.output_relation(self.database)

    # -- updates ----------------------------------------------------------------
    def _coerce_updates(
        self, predicate: str, rows: Iterable[Any]
    ) -> Tuple[KRelation, List[Tuple[Tup, Any]]]:
        if predicate not in self.program.edb_predicates:
            raise DatalogError(
                f"{predicate!r} is not an EDB predicate of the program "
                f"(EDB: {sorted(self.program.edb_predicates)})"
            )
        base = self.database.relation(predicate)
        semiring = self.semiring
        updates: List[Tuple[Tup, Any]] = []
        for entry in rows:
            row, annotation = base._split_entry(entry)
            updates.append((base._coerce_tuple(row), semiring.coerce(annotation)))
        return base, updates

    def insert(self, predicate: str, rows: Iterable[Any]) -> DatalogResult:
        """Insert EDB facts and resume the fixpoint incrementally.

        Returns the updated :attr:`result`.  Annotation *combination* is the
        semiring's ``+``, so over idempotent semirings re-inserting a known
        fact with a dominated annotation is a no-op and nothing re-fires.
        """
        base, updates = self._coerce_updates(predicate, rows)
        if not updates:
            return self.result
        with _trace.span(
            "incremental.insert", predicate=predicate, updates=len(updates)
        ) as sp:
            rounds_before = self._rounds
            result = self._insert(predicate, base, updates)
            sp.set(rounds=self._rounds - rounds_before)
            return result

    def _insert(
        self,
        predicate: str,
        base: KRelation,
        updates: List[Tuple[Tup, Any]],
    ) -> DatalogResult:
        if self._idempotent:
            # The engine's EDB store *is* the database relation, so the merge
            # inside apply_edb_delta updates both in one step.  (Idempotent
            # addition rules out cancellation: a + a = a with inverses would
            # force a = 0, so the support can only grow here.)
            self._rounds += self._engine.apply_edb_delta(
                predicate, updates, self.max_iterations
            )
        else:
            # Collect mode works on a booleanized copy: merge the real
            # annotations into the database, the support into the engine.
            present_before = {tup for tup, _ in updates if tup in base._annotations}
            changed = base.merge_delta(updates)
            if any(tup not in base._annotations for tup in present_before):
                # A negative insertion cancelled an EDB fact exactly: the
                # support shrank, which the maintained Boolean grounding
                # cannot un-derive -- rebuild, as remove() does.
                self._start_engine()
                return self.result
            # Only genuinely changed tuples reach the engine; in particular a
            # zero-valued insertion of an absent tuple must not create
            # support the database does not have.
            self._rounds += self._engine.apply_edb_delta(
                predicate,
                [(tup, value) for tup, value in changed.items()],
                max(self.max_iterations, DEFAULT_MAX_ITERATIONS),
            )
        self._refresh_edb_annotations(predicate, base, updates)
        self._result = None
        return self.result

    def _refresh_edb_annotations(
        self, predicate: str, base: KRelation, updates: List[Tuple[Tup, Any]]
    ) -> None:
        attributes = base.schema.attributes
        edb_annotations: Dict[GroundAtom, Any] = self._engine.edb_annotations
        for tup, _ in updates:
            atom = GroundAtom(predicate, tup.values_for(attributes))
            current = base._annotations.get(tup)
            if current is None:
                edb_annotations.pop(atom, None)
            else:
                edb_annotations[atom] = current

    def remove(self, predicate: str, rows: Iterable[Any]) -> DatalogResult:
        """Remove EDB facts (recompute fallback).

        Deletions shrink the fixpoint non-monotonically, so the maintained
        state cannot be patched by delta firing: the rows are discarded from
        the database and the engine is rebuilt from scratch.
        """
        base, updates = self._coerce_updates(predicate, rows)
        for tup, _ in updates:
            base.discard(tup)
        self._start_engine()
        return self.result
