"""Incremental datalog: maintaining a fixpoint under EDB update streams.

Datalog annotations are monotone in the EDB under the semiring's natural
order, so *insertions* (``+``-combining new annotations into EDB facts) can
resume the semi-naive fixpoint of :mod:`repro.datalog.seminaive` exactly
where it stopped: the engine keeps its per-predicate stores and
variable-binding indexes alive between updates, fires only the delta plan
variants driven by the changed EDB predicate, and drains the consequences --
no re-seeding, no re-grounding of what is already known.

Two regimes, mirroring the one-shot engine:

* **idempotent addition** (``B``, lattices, tropical, ...): the maintained
  annotations are exact at all times; an insertion costs work proportional
  to the new consequences only.
* **non-idempotent addition** (``N∞``, provenance): the engine's collect
  mode maintains the Boolean support and the set of fired rule
  instantiations incrementally (both grow monotonically under insertions),
  and the exact annotations are re-solved from the maintained grounding --
  the grounding, not the solving, is the expensive part the incremental
  path avoids redoing.

Deletions shrink a fixpoint non-monotonically (derived facts may lose all
their derivations), which plain delta-plan firing cannot express; ``remove``
therefore runs a **delete/rederive (DRed) pass** against the maintained
state instead of rebuilding it:

* **idempotent mode**: over-delete everything the removed facts transitively
  support (the maintained delta plans fire with the doomed rows as drivers),
  then re-derive the survivors head-first and drain the consequences with
  ordinary delta rounds (``mode="dred"``);
* **collect mode**: the recorded rule instantiations *are* the support
  graph, so over-delete/rederive walks them without refiring a single join,
  and the exact annotations re-solve lazily from the pruned grounding.
  Under rings (``Z``, ``Z[X]``) the database-side removal is a negative
  ``merge_delta`` that cancels exactly (``mode="ring"``); otherwise the
  support is discarded directly (``mode="dred"``);
* **provenance-assisted**: when every deleted fact is tagged with a fresh
  ``N[X]``/``Z[X]``/circuit variable no surviving EDB fact mentions, the
  cached result is patched by specializing those variables to zero
  (:meth:`Polynomial.drop_variables` / :func:`repro.circuits.restrict_vars`)
  -- exact new annotations without re-solving anything (``mode="provenance"``);
* a full engine rebuild remains only as the last-resort recovery when a
  rederive drain exhausts its iteration budget (``mode="rebuild"``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.errors import DatalogError, DivergenceError
from repro.obs import trace as _trace
from repro.datalog.fixpoint import DEFAULT_MAX_ITERATIONS, DatalogResult
from repro.datalog.grounding import GroundAtom, GroundProgram, collect_edb_annotations
from repro.datalog.seminaive import _SemiNaiveEngine, solve_ground_seminaive
from repro.datalog.syntax import Program
from repro.incremental.delta import UpdateBatch
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = ["IncrementalDatalog"]


class IncrementalDatalog:
    """A datalog fixpoint kept up to date under EDB insertions.

    Usage::

        maintained = IncrementalDatalog("T(x,y) :- R(x,y). T(x,y) :- R(x,z), T(z,y)", db)
        maintained.insert("R", [(("a", "b"), 1)])
        maintained.result            # a DatalogResult, same contract as evaluate_program
        maintained.relation("T")     # the maintained IDB relation

    ``insert`` entries follow the :class:`~repro.relations.krelation.KRelation`
    row convention: ``(row, annotation)`` pairs or bare rows (annotation
    ``1``); annotations combine into existing EDB facts with the semiring's
    ``+``.  ``remove`` deletes facts *incrementally* with a delete/rederive
    (DRed) pass over the maintained state; :attr:`last_delete_mode` records
    which strategy the last deletion used (``"dred"``, ``"ring"``,
    ``"provenance"``, ``"noop"`` or ``"rebuild"`` -- see the module
    docstring).  Removing an absent fact is a defined no-op, mirroring
    ``merge_delta``'s zero handling.

    ``storage`` selects the physical backend of the maintained engine's
    per-predicate stores (``"row"`` or ``"columnar"``; ``None`` defers to
    ``REPRO_STORAGE``, then to the database's own backend), exactly as in
    :func:`repro.datalog.fixpoint.evaluate_program`.

    ``parallel`` (a worker count, ``True``, an executor, or ``None``
    deferring to ``REPRO_PARALLEL``) runs the **initial** fixpoint's rounds
    partition-parallel (:mod:`repro.parallel.datalog`) when the semiring
    qualifies; maintenance after updates stays serial -- incremental deltas
    are small by design and the maintained stores live in this process.
    The maintained state and every result are identical either way.
    """

    def __init__(
        self,
        program: Program | str,
        database: Database,
        *,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        on_divergence: str = "top",
        storage: Any = None,
        parallel: Any = None,
    ):
        if on_divergence not in ("top", "error", "skip"):
            raise ValueError(
                f"on_divergence must be 'top', 'error' or 'skip', got {on_divergence!r}"
            )
        if isinstance(program, str):
            program = Program.parse(program)
        self.program = program
        self.database = database
        self.semiring = database.semiring
        self.max_iterations = max_iterations
        self.on_divergence = on_divergence
        self.storage = storage
        self.parallel = parallel
        self._idempotent = self.semiring.idempotent_add
        self._result: DatalogResult | None = None
        self._rounds = 0
        self.last_delete_mode: str | None = None
        self._start_engine()

    # -- engine lifecycle -------------------------------------------------------
    def _start_engine(self) -> None:
        self._engine = _SemiNaiveEngine(
            self.program,
            self.database,
            collect=not self._idempotent,
            maintain_edb=True,
            storage=self.storage,
        )
        budget = (
            self.max_iterations
            if self._idempotent
            else max(self.max_iterations, DEFAULT_MAX_ITERATIONS)
        )
        from repro.datalog.seminaive import _run_engine

        self._rounds = _run_engine(self._engine, budget, self.parallel)
        self._result = None

    # -- results ----------------------------------------------------------------
    @property
    def result(self) -> DatalogResult:
        """The current fixpoint (recomputed lazily after updates)."""
        if self._result is None:
            self._result = self._compute_result()
        return self._result

    def _compute_result(self) -> DatalogResult:
        engine = self._engine
        if self._idempotent:
            ground = GroundProgram(
                self.program,
                self.database,
                [],
                engine.edb_annotations,
                engine.derivable_atoms(),
            )
            return DatalogResult(
                annotations=engine.annotations(),
                iterations=self._rounds,
                divergent_atoms=frozenset(),
                ground=ground,
            )
        return solve_ground_seminaive(
            engine.ground_program(),
            self.semiring,
            max_iterations=self.max_iterations,
            on_divergence=self.on_divergence,
        )

    def _patch_result(self, changelog: Dict[str, Any]) -> None:
        """Update the cached result from an engine changelog (idempotent mode).

        A maintained update touches O(affected) atoms, so recomputing the
        result's annotation map from the stores -- an O(fixpoint) scan --
        would dominate small deltas.  Instead the changed tuples recorded by
        the engine are re-read from the stores and spliced into a copy of
        the cached maps.  With no cached result there is nothing to patch
        and the next :attr:`result` access rebuilds it lazily as before.
        """
        old = self._result
        if old is None:
            return
        engine = self._engine
        annotations = dict(old.annotations)
        derivable = set(old.ground.derivable)
        idb = self.program.idb_predicates
        for predicate, tups in changelog.items():
            store = engine.stores[predicate]
            known = store.relation._annotations
            attributes = store.attributes
            is_idb = predicate in idb
            for tup in tups:
                atom = GroundAtom(predicate, tup.values_for(attributes))
                value = known.get(tup)
                if value is None:
                    derivable.discard(atom)
                    if is_idb:
                        annotations.pop(atom, None)
                else:
                    derivable.add(atom)
                    if is_idb:
                        annotations[atom] = value
        self._result = DatalogResult(
            annotations=annotations,
            iterations=self._rounds,
            divergent_atoms=frozenset(),
            ground=GroundProgram(
                self.program, self.database, [], engine.edb_annotations, derivable
            ),
        )

    def relation(self, predicate: str) -> KRelation:
        """The maintained K-relation of an IDB predicate."""
        return self.result.relation(predicate, self.database)

    def output_relation(self) -> KRelation:
        """The maintained K-relation of the program's output predicate."""
        return self.result.output_relation(self.database)

    # -- updates ----------------------------------------------------------------
    def _coerce_updates(
        self, predicate: str, rows: Iterable[Any]
    ) -> Tuple[KRelation, List[Tuple[Tup, Any]]]:
        if predicate not in self.program.edb_predicates:
            raise DatalogError(
                f"{predicate!r} is not an EDB predicate of the program "
                f"(EDB: {sorted(self.program.edb_predicates)})"
            )
        base = self.database.relation(predicate)
        semiring = self.semiring
        updates: List[Tuple[Tup, Any]] = []
        for entry in rows:
            row, annotation = base._split_entry(entry)
            updates.append((base._coerce_tuple(row), semiring.coerce(annotation)))
        return base, updates

    def insert(self, predicate: str, rows: Iterable[Any]) -> DatalogResult:
        """Insert EDB facts and resume the fixpoint incrementally.

        Returns the updated :attr:`result`.  Annotation *combination* is the
        semiring's ``+``, so over idempotent semirings re-inserting a known
        fact with a dominated annotation is a no-op and nothing re-fires.
        """
        base, updates = self._coerce_updates(predicate, rows)
        if not updates:
            return self.result
        with _trace.span(
            "incremental.insert", predicate=predicate, updates=len(updates)
        ) as sp:
            rounds_before = self._rounds
            result = self._insert(predicate, base, updates)
            sp.set(rounds=self._rounds - rounds_before)
            return result

    def _insert(
        self,
        predicate: str,
        base: KRelation,
        updates: List[Tuple[Tup, Any]],
    ) -> DatalogResult:
        if self._idempotent:
            # The engine's EDB store *is* the database relation, so the merge
            # inside apply_edb_delta updates both in one step.  (Idempotent
            # addition rules out cancellation: a + a = a with inverses would
            # force a = 0, so the support can only grow here.)
            changelog = self._engine.begin_changelog()
            try:
                self._rounds += self._engine.apply_edb_delta(
                    predicate, updates, self.max_iterations
                )
            finally:
                self._engine.end_changelog()
            self._refresh_edb_annotations(predicate, base, updates)
            self._patch_result(changelog)
            return self.result
        else:
            # Collect mode works on a booleanized copy: merge the real
            # annotations into the database, the support into the engine.
            present_before = {tup for tup, _ in updates if tup in base._annotations}
            changed = base.merge_delta(updates)
            cancelled = [tup for tup in present_before if tup not in base._annotations]
            if cancelled:
                # A negative insertion cancelled EDB facts exactly: a
                # deletion in insert's clothing.  Shrink the maintained
                # support in place with the instantiation-graph DRed pass
                # instead of rebuilding the engine.
                self._engine.delete_support(predicate, cancelled)
                self._result = None
            # Only genuinely changed tuples reach the engine; in particular a
            # zero-valued insertion of an absent tuple must not create
            # support the database does not have.
            self._rounds += self._engine.apply_edb_delta(
                predicate,
                [(tup, value) for tup, value in changed.items()],
                max(self.max_iterations, DEFAULT_MAX_ITERATIONS),
            )
        self._refresh_edb_annotations(predicate, base, updates)
        self._result = None
        return self.result

    def _refresh_edb_annotations(
        self, predicate: str, base: KRelation, updates: List[Tuple[Tup, Any]]
    ) -> None:
        attributes = base.schema.attributes
        edb_annotations: Dict[GroundAtom, Any] = self._engine.edb_annotations
        for tup, _ in updates:
            atom = GroundAtom(predicate, tup.values_for(attributes))
            current = base._annotations.get(tup)
            if current is None:
                edb_annotations.pop(atom, None)
            else:
                edb_annotations[atom] = current

    def remove(self, predicate: str, rows: Iterable[Any]) -> DatalogResult:
        """Remove EDB facts and shrink the fixpoint incrementally.

        Runs the delete/rederive (DRed) pass over the maintained state: the
        removed facts' transitive consequences are over-deleted using the
        engine's own binding indexes, survivors with an untouched alternative
        derivation are re-derived, and only the genuinely affected atoms are
        ever touched.  Entries may be bare rows or ``(row, annotation)``
        pairs (the annotation is ignored -- deletion removes the fact
        entirely).  Removing a fact that is not present is a defined no-op.
        :attr:`last_delete_mode` records the strategy used.

        Returns the updated :attr:`result`.
        """
        base, updates = self._coerce_updates(predicate, rows)
        present: List[Tup] = []
        seen: set = set()
        for tup, _ in updates:
            if tup not in seen:
                seen.add(tup)
                if tup in base._annotations:
                    present.append(tup)
        if not present:
            # Mirrors merge_delta's zero handling: deleting what is absent
            # leaves the maintained engine untouched.
            self.last_delete_mode = "noop"
            return self.result
        with _trace.span(
            "incremental.delete", predicate=predicate, deletes=len(present)
        ) as sp:
            self._delete(predicate, base, present, sp)
        return self.result

    def _delete(
        self, predicate: str, base: KRelation, present: List[Tup], sp: Any
    ) -> None:
        if self._idempotent:
            changelog = self._engine.begin_changelog()
            try:
                overdeleted, rederived, rounds = self._engine.delete_edb(
                    predicate, present, self.max_iterations
                )
            except DivergenceError:
                # The rederive drain exhausted its budget mid-merge; the
                # engine state is no longer trustworthy, so fall back to the
                # last-resort full rebuild from the updated database.
                for tup in present:
                    base.discard(tup)
                self._start_engine()
                self.last_delete_mode = "rebuild"
                sp.set(mode="rebuild")
                return
            finally:
                self._engine.end_changelog()
            self._rounds += rounds
            self._patch_result(changelog)
            self.last_delete_mode = "dred"
            sp.set(
                mode="dred",
                overdeleted=overdeleted,
                rederived=rederived,
                rounds=rounds,
            )
            return
        # Collect mode.  Check the provenance license before the deleted
        # annotations leave the database.
        specializer = None
        old_result = self._result
        if old_result is not None and not old_result.divergent_atoms:
            specializer = self._provenance_specializer(predicate, base, present)
        semiring = self.semiring
        if semiring.has_negation:
            # Ring path: deletion is a negative insertion that cancels
            # exactly (merge_delta's zero handling drops the tuples from the
            # support).
            base.merge_delta(
                [(tup, semiring.negate(base._annotations[tup])) for tup in present]
            )
            mode = "ring"
        else:
            for tup in present:
                base.discard(tup)
            mode = "dred"
        overdeleted, rederived, dead = self._engine.delete_support(predicate, present)
        if specializer is not None:
            # Every surviving atom's polynomial/circuit factors through the
            # deleted facts' variables; setting them to zero is a semiring
            # homomorphism, so patching the cached annotations is exact --
            # no rule refires, no re-solve.
            self._result = DatalogResult(
                annotations={
                    atom: specializer(value)
                    for atom, value in old_result.annotations.items()
                    if atom not in dead
                },
                iterations=self._rounds,
                divergent_atoms=frozenset(),
                ground=self._engine.ground_program(),
            )
            mode = "provenance"
        else:
            self._result = None
        self.last_delete_mode = mode
        sp.set(mode=mode, overdeleted=overdeleted, rederived=rederived)

    def _provenance_specializer(
        self, predicate: str, base: KRelation, present: List[Tup]
    ):
        """A function patching pre-delete annotations to post-delete ones.

        Licensed when every deleted fact's annotation is a *bare provenance
        variable* (``N[X]``, ``Z[X]`` or a circuit ``Var``) that no surviving
        EDB fact mentions: those variables then tag exactly the derivations
        the deleted facts support, and specializing them to zero (the
        evaluation homomorphism ``v -> 0``) computes the exact new annotation
        of every surviving atom -- the paper's specialization machinery
        turned on its own maintenance problem.  Returns ``None`` when the
        license does not hold.
        """
        from repro.circuits.evaluate import restrict_vars
        from repro.circuits.nodes import Node, Var, iter_nodes
        from repro.semirings.integers import ZPolynomial
        from repro.semirings.polynomial import Polynomial

        deleted_vars: set = set()
        for tup in present:
            value = base._annotations[tup]
            if isinstance(value, (Polynomial, ZPolynomial)):
                terms = value.terms
                if len(terms) != 1:
                    return None
                monomial, coefficient = terms[0]
                if coefficient != 1:
                    return None
                powers = monomial.powers
                if len(powers) != 1 or powers[0][1] != 1:
                    return None
                deleted_vars.add(powers[0][0])
            elif isinstance(value, Node):
                if not isinstance(value, Var):
                    return None
                deleted_vars.add(value.name)
            else:
                return None
        attributes = base.schema.attributes
        deleted_atoms = {
            GroundAtom(predicate, tup.values_for(attributes)) for tup in present
        }
        for atom, value in self._engine.edb_annotations.items():
            if atom in deleted_atoms:
                continue
            if isinstance(value, (Polynomial, ZPolynomial)):
                mentioned = value.variables
            elif isinstance(value, Node):
                mentioned = {
                    node.name for node in iter_nodes(value) if isinstance(node, Var)
                }
            else:
                return None
            if mentioned & deleted_vars:
                return None
        frozen = frozenset(deleted_vars)

        def specialize(value: Any) -> Any:
            if isinstance(value, Node):
                return restrict_vars(value, frozen)
            return value.drop_variables(frozen)

        return specialize

    def apply(self, batch: "UpdateBatch | Mapping[str, Any]") -> DatalogResult:
        """Apply a mixed :class:`~repro.incremental.delta.UpdateBatch`.

        Deletions apply first, then insertions, matching
        :func:`~repro.incremental.delta.apply_batch_to_database` semantics.
        """
        batch = UpdateBatch.of(batch)
        for predicate in sorted(batch.deletions):
            rows = batch.deletions[predicate]
            if rows:
                self.remove(predicate, rows)
        for predicate in sorted(batch.insertions):
            entries = batch.insertions[predicate]
            if entries:
                self.insert(predicate, entries)
        return self.result

    # -- invariants --------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify the maintained state against a from-scratch grounding.

        The engine's ``edb_annotations`` must equal
        :func:`~repro.datalog.grounding.collect_edb_annotations` on the
        current database (the audit for mixed insert/delete batches), every
        maintained store must satisfy the stored-zero invariant, and the row
        lists must cover exactly the stored supports.  Raises
        :class:`~repro.errors.DatalogError` on any mismatch.
        """
        engine = self._engine
        expected = collect_edb_annotations(self.program, self.database)
        if engine.edb_annotations != expected:
            raise DatalogError(
                "maintained EDB annotations diverged from the database "
                f"({len(engine.edb_annotations)} maintained, {len(expected)} expected)"
            )
        for name, store in engine.stores.items():
            store.relation.check_consistency()
            rows = {tup for _, tup in store.rows}
            known = set(store.relation._annotations)
            if rows != known:
                raise DatalogError(
                    f"store rows for {name!r} are out of sync with its relation "
                    f"({len(rows)} rows, {len(known)} annotations)"
                )
            if not self._idempotent and name in self.program.edb_predicates:
                support = set(self.database.relation(name)._annotations)
                if known != support:
                    raise DatalogError(
                        f"boolean support of {name!r} diverged from the database "
                        f"({len(known)} maintained, {len(support)} in the database)"
                    )
