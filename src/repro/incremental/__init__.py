"""Incremental view maintenance over delta K-relations.

The semiring annotations of the paper make query results algebraic objects
that can be *maintained* under base-table change, not just recomputed: every
positive-algebra operator is bilinear in ``(+, .)``, so the change to a view
is itself a query over the base relations and their change-valued deltas
(the classic delta rules, stated on K-relations in
:mod:`repro.incremental.delta`).  Insertions work in any commutative
semiring; deletions need additive inverses -- the ring capability
``has_negation`` provided by ``Z`` and ``Z[X]``
(:mod:`repro.semirings.integers`) -- and fall back to bounded recomputation
elsewhere.

Three entry points:

* :func:`view_delta` -- the stateless delta-rule compiler;
* :class:`MaterializedView` -- a query result maintained under
  :class:`UpdateBatch` streams via a materialized operator tree;
* :class:`IncrementalDatalog` -- a semi-naive datalog fixpoint resumed
  in place on EDB insertions.
"""

from repro.incremental.datalog import IncrementalDatalog
from repro.incremental.delta import (
    UpdateBatch,
    apply_batch_to_database,
    apply_delta,
    batch_deltas,
    view_delta,
)
from repro.incremental.view import MaterializedView

__all__ = [
    "UpdateBatch",
    "MaterializedView",
    "IncrementalDatalog",
    "view_delta",
    "apply_delta",
    "batch_deltas",
    "apply_batch_to_database",
]
