"""Delta K-relations: update batches and the delta-rule compiler.

Because every positive-algebra operator is built from the semiring's ``+``
and ``.``, the operators are *bilinear* in their inputs: evaluating a query
over ``R + ΔR`` expands into the old result plus terms that each contain at
least one delta factor.  Collecting those terms gives the classic delta
rules of incremental view maintenance, here stated on K-relations:

* ``Δ(R1 ∪ R2) = ΔR1 ∪ ΔR2``
* ``Δ(π_V R) = π_V (ΔR)``
* ``Δ(σ_P R) = σ_P (ΔR)``
* ``Δ(ρ_β R) = ρ_β (ΔR)``
* ``Δ(R1 ⋈ R2) = (ΔR1 ⋈ R2) ∪ (R1 ⋈ ΔR2) ∪ (ΔR1 ⋈ ΔR2)``

where a *delta relation* is itself a K-relation whose annotations are the
**changes** to be ``+``-combined into the current annotations.  Insertions
are always expressible this way; deletions need the change ``-R(t)``, i.e.
additive inverses, which is why *delta-expressible* deletion is gated on
the semiring's ring capability (``has_negation`` -- the ``Z`` / ``Z[X]``
structures of :mod:`repro.semirings.integers`).  Deletions over other
semirings are still maintained incrementally, just not as deltas:
:class:`~repro.incremental.view.MaterializedView` runs a targeted
delete/rederive pass and :class:`~repro.incremental.datalog.IncrementalDatalog`
runs DRed (see those modules); only the stateless compiler here refuses
them.

:func:`view_delta` is the direct, stateless compiler: it recursively applies
the rules above against the *pre-update* database.  The stateful
:class:`~repro.incremental.view.MaterializedView` avoids re-evaluating
subqueries by materializing every operator node and using the equivalent
two-term join rule ``ΔL ⋈ R_old ∪ L_new ⋈ ΔR``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.algebra import operators
from repro.algebra.ast import (
    EmptyRelation,
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.errors import QueryError, SemiringError
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.tuples import Tup

__all__ = [
    "UpdateBatch",
    "view_delta",
    "apply_delta",
    "batch_deltas",
    "apply_batch_to_database",
]


class UpdateBatch:
    """One batch of base-relation updates: insertions and deletions.

    ``insertions`` maps a relation name to entries in the same shape
    :class:`~repro.relations.krelation.KRelation` accepts: ``(row, change)``
    pairs or bare rows (change ``1``).  The change value combines into the
    tuple's current annotation with the semiring's ``+`` -- over a ring a
    "negative" change is therefore a partial or full retraction.

    ``deletions`` maps a relation name to rows whose annotation should drop
    to zero (removing the tuple from the support).  Deleting a row that is
    not in the support is a no-op.

    Within one batch, deletions are applied before insertions.
    """

    __slots__ = ("insertions", "deletions")

    def __init__(
        self,
        insertions: Mapping[str, Iterable[Any]] | None = None,
        deletions: Mapping[str, Iterable[Any]] | None = None,
    ):
        self.insertions: Dict[str, tuple] = {
            name: tuple(entries) for name, entries in (insertions or {}).items()
        }
        self.deletions: Dict[str, tuple] = {
            name: tuple(rows) for name, rows in (deletions or {}).items()
        }

    @classmethod
    def of(cls, value: "UpdateBatch | Mapping[str, Iterable[Any]]") -> "UpdateBatch":
        """Coerce a plain ``{relation: entries}`` mapping (insertions only)."""
        if isinstance(value, UpdateBatch):
            return value
        return cls(insertions=value)

    @property
    def touched_relations(self) -> frozenset[str]:
        """Names of the base relations this batch updates."""
        return frozenset(self.insertions) | frozenset(self.deletions)

    @property
    def has_deletions(self) -> bool:
        """Whether the batch removes any tuple from a support."""
        return any(rows for rows in self.deletions.values())

    def is_empty(self) -> bool:
        """Whether the batch contains no updates at all."""
        return not any(self.insertions.values()) and not self.has_deletions

    def __repr__(self) -> str:
        inserted = sum(len(e) for e in self.insertions.values())
        deleted = sum(len(r) for r in self.deletions.values())
        return f"UpdateBatch({inserted} insertions, {deleted} deletions)"


def apply_delta(relation: KRelation, delta: KRelation) -> Dict[Tup, Any]:
    """Combine a change-valued ``delta`` into ``relation`` with the semiring ``+``.

    Returns the tuples whose annotation actually changed, mapped to their
    **new** annotations -- the semiring zero for tuples whose annotation was
    cancelled exactly (those are removed from the support, so the relation
    stays :meth:`~repro.relations.krelation.KRelation.check_consistency`
    clean).  Unlike :meth:`KRelation.merge_delta` the returned mapping can
    therefore report removals, which is what view maintenance needs.
    """
    semiring = relation.semiring
    annotations = relation._annotations
    zero = semiring.zero()
    changed: Dict[Tup, Any] = {}
    for tup, change in delta.items():
        current = annotations.get(tup)
        combined = change if current is None else semiring.add(current, change)
        if semiring.is_zero(combined):
            if current is not None:
                del annotations[tup]
                changed[tup] = zero
        elif combined != current:
            annotations[tup] = combined
            changed[tup] = combined
    return changed


def view_delta(
    query: Query, database: Database, deltas: Mapping[str, KRelation]
) -> KRelation:
    """The change-valued delta of ``query`` under base-relation ``deltas``.

    ``database`` must hold the *pre-update* state; ``deltas`` maps base
    relation names to change-valued K-relations (see :func:`batch_deltas`).
    The result is the delta relation ``Δq`` such that evaluating ``query``
    after the update equals the old result ``+`` ``Δq`` tuple-wise -- exact
    in every commutative semiring, because the operators are bilinear and the
    delta annotations only ever enter through ``+`` and ``.``.

    This is the stateless reference compiler: join nodes re-evaluate their
    subqueries against ``database``.  Use
    :class:`~repro.incremental.view.MaterializedView` to maintain those
    intermediates instead of recomputing them per update.
    """
    if isinstance(query, RelationRef):
        delta = deltas.get(query.name)
        if delta is None:
            return operators.empty(
                database.semiring, database.relation(query.name).schema
            )
        return delta
    if isinstance(query, EmptyRelation):
        return operators.empty(database.semiring, query.schema)
    if isinstance(query, Union):
        return operators.union(
            view_delta(query.left, database, deltas),
            view_delta(query.right, database, deltas),
        )
    if isinstance(query, Project):
        return operators.project(
            view_delta(query.child, database, deltas), query.attributes
        )
    if isinstance(query, Select):
        return operators.select(
            view_delta(query.child, database, deltas), query.predicate
        )
    if isinstance(query, Rename):
        return operators.rename(
            view_delta(query.child, database, deltas), query.mapping
        )
    if isinstance(query, Join):
        left_delta = view_delta(query.left, database, deltas)
        right_delta = view_delta(query.right, database, deltas)
        # The cross term also fixes the result schema; each old-side term is
        # guarded so an untouched subquery is never re-evaluated just to be
        # joined against a known-empty delta.
        result = operators.join(left_delta, right_delta)
        if left_delta:
            result = operators.union(
                result, operators.join(left_delta, query.right.evaluate(database))
            )
        if right_delta:
            result = operators.union(
                result, operators.join(query.left.evaluate(database), right_delta)
            )
        return result
    raise QueryError(
        f"no delta rule for query node {type(query).__name__}; "
        "the delta compiler covers the positive algebra of Definition 3.2"
    )


def batch_deltas(database: Database, batch: UpdateBatch) -> Dict[str, KRelation]:
    """Translate an :class:`UpdateBatch` into change-valued delta relations.

    Insertions contribute their change values directly; a deletion of tuple
    ``t`` from ``R`` contributes ``-R(t)``, which requires the semiring to be
    a ring (``has_negation``).  Reads the *current* (pre-update) state of
    ``database``; raises :class:`SemiringError` when deletions are requested
    over a semiring without negation (callers route those through the
    delete/rederive pass instead).
    """
    semiring = database.semiring
    deltas: Dict[str, KRelation] = {}

    def delta_for(name: str) -> KRelation:
        if name not in deltas:
            deltas[name] = KRelation(semiring, database.relation(name).schema)
        return deltas[name]

    for name, rows in batch.deletions.items():
        if not rows:
            continue
        if not semiring.has_negation:
            raise SemiringError(
                f"deletions need additive inverses, but {semiring.name} is not "
                "a ring (has_negation is False); use Z / Z[X] annotations or "
                "recompute the view"
            )
        relation = database.relation(name)
        delta = delta_for(name)
        seen: set[Tup] = set()
        for row in rows:
            tup = relation._coerce_tuple(row)
            if tup in seen:
                continue
            seen.add(tup)
            current = relation._annotations.get(tup)
            if current is not None:
                delta.add(tup, semiring.negate(current))
    for name, entries in batch.insertions.items():
        if not entries:
            continue
        relation = database.relation(name)
        delta = delta_for(name)
        for entry in entries:
            row, change = relation._split_entry(entry)
            delta.add(row, change)
    return deltas


def apply_batch_to_database(
    database: Database, batch: UpdateBatch
) -> Dict[str, Dict[Tup, Any]]:
    """Apply ``batch`` to the base relations of ``database`` in place.

    Deletions first (support removal), then insertions (``+``-combined, with
    exact cancellations dropping tuples from the support).  Works in every
    semiring -- no negation needed, since deletions mutate the stored
    annotation directly rather than going through a delta value.  Returns,
    per touched relation, the tuples whose annotation changed mapped to
    their new annotations (the semiring zero for removed tuples).
    """
    changed: Dict[str, Dict[Tup, Any]] = {}
    for name in sorted(batch.touched_relations):
        relation = database.relation(name)
        semiring = relation.semiring
        zero = semiring.zero()
        before: Dict[Tup, Any] = {}
        annotations = relation._annotations
        for row in batch.deletions.get(name, ()):
            tup = relation._coerce_tuple(row)
            if tup in annotations:
                before.setdefault(tup, annotations[tup])
                del annotations[tup]
        for entry in batch.insertions.get(name, ()):
            row, change = relation._split_entry(entry)
            tup = relation._coerce_tuple(row)
            before.setdefault(tup, annotations.get(tup, zero))
            value = semiring.coerce(change)
            current = annotations.get(tup)
            combined = value if current is None else semiring.add(current, value)
            if semiring.is_zero(combined):
                annotations.pop(tup, None)
            else:
                annotations[tup] = combined
        delta = {
            tup: annotations.get(tup, zero)
            for tup, old in before.items()
            if annotations.get(tup, zero) != old
        }
        if delta:
            changed[name] = delta
    return changed
