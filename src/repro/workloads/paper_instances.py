"""The exact example instances and queries used in the paper's figures.

Every figure of the paper (Figures 1-7) is built from one of two inputs:

* the three-tuple relation ``R(a, b, c)`` of Section 2, queried with

  ``q(R) = π_ac( π_ab R ⋈ π_bc R  ∪  π_ac R ⋈ π_bc R )``

  under maybe-table, c-table, bag, probabilistic, why-provenance and
  polynomial-provenance annotations (Figures 1-5);

* the five-edge graph of Figure 7 with the transitive-closure datalog
  program (Figures 6-7 use the binary ``R`` relations shown there).

This module constructs those inputs exactly as printed, so the tests and the
benchmarks regenerate the paper's tables verbatim.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.algebra.ast import Q, Query
from repro.datalog.grounding import GroundAtom
from repro.datalog.syntax import Program
from repro.incomplete.ctables import CTable
from repro.incomplete.maybe_tables import MaybeTable
from repro.probabilistic.tuple_independent import ProbabilisticDatabase
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.lineage import WhyProvenanceSemiring
from repro.semirings.numeric import CompletedNaturalsSemiring, NaturalsSemiring

__all__ = [
    "SECTION2_TUPLES",
    "section2_query",
    "section2_relation",
    "section2_database",
    "figure1_maybe_table",
    "figure2_ctable_input",
    "figure3_bag_database",
    "figure4_probabilistic_database",
    "figure5_why_database",
    "figure5_provenance_ids",
    "figure6_program",
    "figure6_database",
    "figure7_program",
    "figure7_database",
    "figure7_edb_ids",
    "figure7_idb_ids",
    "transitive_closure_program",
]

#: The three tuples of the Section 2 relation R(a, b, c).
SECTION2_TUPLES: Tuple[tuple, ...] = (
    ("a", "b", "c"),
    ("d", "b", "e"),
    ("f", "g", "e"),
)

#: Tuple-id variable names used by Figure 5 (p, r, s).
_SECTION2_IDS = {
    ("a", "b", "c"): "p",
    ("d", "b", "e"): "r",
    ("f", "g", "e"): "s",
}


def section2_query(relation_name: str = "R") -> Query:
    """The query ``q`` used throughout Section 2 and Figures 1-5."""
    R = Q.relation(relation_name)
    left = R.project("a", "b").join(R.project("b", "c"))
    right = R.project("a", "c").join(R.project("b", "c"))
    return left.union(right).project("a", "c")


def section2_relation(semiring: Semiring, annotations: Dict[tuple, object] | None = None) -> KRelation:
    """The Section 2 relation annotated in an arbitrary semiring.

    ``annotations`` maps the value-tuples of :data:`SECTION2_TUPLES` to
    annotations; missing tuples default to the semiring's ``1``.
    """
    relation = KRelation(semiring, ["a", "b", "c"])
    for values in SECTION2_TUPLES:
        annotation = (annotations or {}).get(values, semiring.one())
        relation.set(values, annotation)
    return relation


def section2_database(
    semiring: Semiring, annotations: Dict[tuple, object] | None = None
) -> Database:
    """A single-relation database holding the Section 2 relation."""
    database = Database(semiring)
    database.register("R", section2_relation(semiring, annotations))
    return database


# ----------------------------------------------------------------------
# Figure 1: maybe-table
# ----------------------------------------------------------------------

def figure1_maybe_table() -> MaybeTable:
    """The maybe-table of Figure 1(a): all three tuples are optional."""
    table = MaybeTable(["a", "b", "c"])
    table.add_maybe(("a", "b", "c"), variable="b1")
    table.add_maybe(("d", "b", "e"), variable="b2")
    table.add_maybe(("f", "g", "e"), variable="b3")
    return table


# ----------------------------------------------------------------------
# Figure 2: the c-table encoding of the maybe-table
# ----------------------------------------------------------------------

def figure2_ctable_input() -> CTable:
    """The Boolean c-table of Figure 1(b) (input to the Figure 2 computation)."""
    table = CTable(["a", "b", "c"])
    table.add(("a", "b", "c"), "b1")
    table.add(("d", "b", "e"), "b2")
    table.add(("f", "g", "e"), "b3")
    return table


# ----------------------------------------------------------------------
# Figure 3: bag semantics
# ----------------------------------------------------------------------

def figure3_bag_database() -> Database:
    """The multiset of Figure 3(a): multiplicities 2, 5, 1."""
    return section2_database(
        NaturalsSemiring(),
        {("a", "b", "c"): 2, ("d", "b", "e"): 5, ("f", "g", "e"): 1},
    )


# ----------------------------------------------------------------------
# Figure 4: probabilistic event table
# ----------------------------------------------------------------------

def figure4_probabilistic_database() -> ProbabilisticDatabase:
    """The event table of Figure 4(a): events x, y, z with Pr 0.6, 0.5, 0.1."""
    pdb = ProbabilisticDatabase()
    pdb.add_relation(
        "R",
        ["a", "b", "c"],
        [
            (("a", "b", "c"), "x", 0.6),
            (("d", "b", "e"), "y", 0.5),
            (("f", "g", "e"), "z", 0.1),
        ],
    )
    return pdb


# ----------------------------------------------------------------------
# Figure 5: why-provenance and provenance polynomials
# ----------------------------------------------------------------------

def figure5_why_database() -> Database:
    """The Section 2 relation annotated with singleton why-provenance sets."""
    return section2_database(
        WhyProvenanceSemiring(),
        {values: frozenset({name}) for values, name in _SECTION2_IDS.items()},
    )


def figure5_provenance_ids() -> Dict[str, Dict[tuple, str]]:
    """Tuple-id assignment (p, r, s) used when abstractly tagging the relation."""
    return {"R": dict(_SECTION2_IDS)}


# ----------------------------------------------------------------------
# Figure 6: conjunctive query under bag semantics
# ----------------------------------------------------------------------

def figure6_program() -> Program:
    """The conjunctive query ``Q(x, y) :- R(x, z), R(z, y)`` of Figure 6(a)."""
    return Program.parse("Q(x, y) :- R(x, z), R(z, y)")


def figure6_database() -> Database:
    """The N-relation of Figure 6(b): R(a,a)=2, R(a,b)=3, R(b,b)=4."""
    database = Database(NaturalsSemiring())
    database.create(
        "R", ["x", "y"], [(("a", "a"), 2), (("a", "b"), 3), (("b", "b"), 4)]
    )
    return database


# ----------------------------------------------------------------------
# Figure 7: transitive closure with bag semantics / datalog provenance
# ----------------------------------------------------------------------

def transitive_closure_program(
    edge_relation: str = "R", output: str = "Q", *, linear: bool = False
) -> Program:
    """The transitive-closure program of Figure 7(c).

    With ``linear=True`` the right-recursive variant
    ``Q(x,y) :- R(x,z), Q(z,y)`` is returned instead of the quadratic
    ``Q(x,y) :- Q(x,z), Q(z,y)`` -- an ablation used by the benchmarks to
    show how the rule shape changes provenance (fewer derivation trees) but
    not the Boolean answer.
    """
    if linear:
        text = (
            f"{output}(x, y) :- {edge_relation}(x, y)\n"
            f"{output}(x, y) :- {edge_relation}(x, z), {output}(z, y)"
        )
    else:
        text = (
            f"{output}(x, y) :- {edge_relation}(x, y)\n"
            f"{output}(x, y) :- {output}(x, z), {output}(z, y)"
        )
    return Program.parse(text, output=output)


def figure7_program() -> Program:
    """The (quadratic) transitive-closure program used by Figure 7."""
    return transitive_closure_program()


def figure7_database(semiring: Semiring | None = None) -> Database:
    """The five-edge relation of Figure 7(a)/(b) with multiplicities 2,3,2,1,1.

    By default annotated in ``N-inf`` (the semiring in which the paper
    evaluates it); pass another semiring to reuse the same support.
    """
    semiring = semiring or CompletedNaturalsSemiring()
    database = Database(semiring)
    multiplicities = {
        ("a", "b"): 2,
        ("a", "c"): 3,
        ("c", "b"): 2,
        ("b", "d"): 1,
        ("d", "d"): 1,
    }
    relation = KRelation(semiring, ["x", "y"])
    for values, count in multiplicities.items():
        if isinstance(semiring, (NaturalsSemiring, CompletedNaturalsSemiring)):
            relation.set(values, semiring.coerce(count))
        elif isinstance(semiring, BooleanSemiring):
            relation.set(values, True)
        else:
            relation.set(values, semiring.one())
    database.register("R", relation)
    return database


def figure7_edb_ids() -> Dict[GroundAtom, str]:
    """The tuple-id names m, n, p, r, s of Figure 7(d)."""
    return {
        GroundAtom("R", ("a", "b")): "m",
        GroundAtom("R", ("a", "c")): "n",
        GroundAtom("R", ("c", "b")): "p",
        GroundAtom("R", ("b", "d")): "r",
        GroundAtom("R", ("d", "d")): "s",
    }


def figure7_idb_ids() -> Dict[GroundAtom, str]:
    """The output-tuple variable names x, y, z, u, v, w of Figure 7(e).

    The paper's figure omits the derivable tuple ``Q(c, d)``; our system
    assigns it a generated name (``q1``) and EXPERIMENTS.md discusses the
    discrepancy.
    """
    return {
        GroundAtom("Q", ("a", "b")): "x",
        GroundAtom("Q", ("a", "c")): "y",
        GroundAtom("Q", ("c", "b")): "z",
        GroundAtom("Q", ("b", "d")): "u",
        GroundAtom("Q", ("d", "d")): "v",
        GroundAtom("Q", ("a", "d")): "w",
    }
