"""Synthetic workload generators for the scaling benchmarks.

The paper's own examples are tiny (they fit in a figure); these generators
produce larger instances that exercise the same code paths so the benchmark
suite can measure how provenance computation scales relative to plain
evaluation:

* random binary relations / star-join schemas for the positive algebra;
* random directed graphs, chains, cycles and DAGs for datalog transitive
  closure across semirings;
* tuple-independent probabilistic relations with controllable uncertainty;
* random update streams (batches of insertions and deletions against a
  database snapshot) for the incremental view-maintenance benchmarks and
  the differential update-stream harness.

All generators are deterministic given a seed, so benchmark runs are
reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.datalog.syntax import Program
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.semirings.base import Semiring
from repro.semirings.boolean import BooleanSemiring
from repro.semirings.numeric import NaturalsSemiring
from repro.semirings.polynomial import Polynomial
from repro.semirings.posbool import BoolExpr
from repro.workloads.paper_instances import transitive_closure_program

__all__ = [
    "random_relation",
    "random_annotation",
    "star_join_database",
    "random_graph_database",
    "chain_graph_database",
    "dag_database",
    "triangle_query",
    "transitive_closure_program",
    "random_update_stream",
    "random_edge_insert_stream",
]


def random_annotation(semiring: Semiring, rng: random.Random, index: int) -> object:
    """A plausible non-zero annotation for the given semiring.

    Numeric semirings get small integers, lattice/line semirings get values
    drawn from their natural element pools, provenance semirings get a fresh
    variable per tuple (the abstract-tagging convention).
    """
    name = semiring.name
    if name == "B":
        return True
    if name.startswith("N∞") and "[[" in name:
        from repro.semirings.power_series import FormalPowerSeries

        return FormalPowerSeries.var(f"x{index}")
    if name in ("N", "N∞", "Z"):
        return semiring.coerce(rng.randint(1, 5))
    if name in ("Fuzzy", "Viterbi"):
        # dyadic values keep float products exact, so algebraic identities can
        # be checked with plain equality in the tests
        return rng.choice([0.0625, 0.125, 0.25, 0.5, 0.75, 1.0])
    if name == "Tropical":
        return float(rng.randint(1, 20))
    if name.startswith("PosBool"):
        return BoolExpr.var(f"x{index}")
    if name.startswith("Why"):
        return frozenset({f"x{index}"})
    if name in ("N[X]", "N∞[X]"):
        return Polynomial.var(f"x{index}")
    if name == "Z[X]":
        from repro.semirings.integers import ZPolynomial

        return ZPolynomial.var(f"x{index}")
    if name.startswith("P(Ω)"):
        # A random event over roughly half the space: unions and
        # intersections both stay informative.
        worlds = sorted(semiring.space.worlds, key=str)
        return frozenset(rng.sample(worlds, (len(worlds) + 1) // 2))
    return semiring.one()


def random_relation(
    semiring: Semiring,
    attributes: Sequence[str],
    *,
    num_tuples: int,
    domain_size: int,
    seed: int = 0,
    annotation_offset: int = 0,
) -> KRelation:
    """A random K-relation with ``num_tuples`` distinct tuples."""
    rng = random.Random(seed)
    relation = KRelation(semiring, attributes)
    seen = set()
    index = annotation_offset
    attempts = 0
    while len(seen) < num_tuples and attempts < num_tuples * 50:
        attempts += 1
        values = tuple(f"v{rng.randrange(domain_size)}" for _ in attributes)
        if values in seen:
            continue
        seen.add(values)
        index += 1
        relation.set(values, random_annotation(semiring, rng, index))
    return relation


def star_join_database(
    semiring: Semiring,
    *,
    fact_tuples: int = 200,
    dimension_tuples: int = 40,
    domain_size: int = 30,
    seed: int = 0,
) -> Database:
    """A small star schema: one fact table ``F(a, b, c)`` and dimensions ``D1(a, x)``, ``D2(b, y)``.

    Used by the RA⁺ scaling benchmark: the canonical provenance-vs-plain
    comparison query joins the fact table with both dimensions and projects.
    """
    database = Database(semiring)
    database.register(
        "F",
        random_relation(
            semiring,
            ["a", "b", "c"],
            num_tuples=fact_tuples,
            domain_size=domain_size,
            seed=seed,
        ),
    )
    database.register(
        "D1",
        random_relation(
            semiring,
            ["a", "x"],
            num_tuples=dimension_tuples,
            domain_size=domain_size,
            seed=seed + 1,
            annotation_offset=fact_tuples,
        ),
    )
    database.register(
        "D2",
        random_relation(
            semiring,
            ["b", "y"],
            num_tuples=dimension_tuples,
            domain_size=domain_size,
            seed=seed + 2,
            annotation_offset=fact_tuples + dimension_tuples,
        ),
    )
    return database


def _edge_relation(
    semiring: Semiring, edges: Iterable[tuple[str, str]], seed: int
) -> KRelation:
    rng = random.Random(seed)
    relation = KRelation(semiring, ["x", "y"])
    for index, (source, target) in enumerate(sorted(set(edges)), start=1):
        relation.set((source, target), random_annotation(semiring, rng, index))
    return relation


def random_graph_database(
    semiring: Semiring,
    *,
    nodes: int = 20,
    edge_probability: float = 0.15,
    seed: int = 0,
    relation_name: str = "R",
) -> Database:
    """A random directed graph as an edge relation (Erdos-Renyi style)."""
    rng = random.Random(seed)
    edges = [
        (f"n{i}", f"n{j}")
        for i in range(nodes)
        for j in range(nodes)
        if i != j and rng.random() < edge_probability
    ]
    database = Database(semiring)
    database.register(relation_name, _edge_relation(semiring, edges, seed + 1))
    return database


def chain_graph_database(
    semiring: Semiring, *, length: int = 30, seed: int = 0, relation_name: str = "R"
) -> Database:
    """A simple path ``n0 -> n1 -> ... -> n_length`` (acyclic, polynomial provenance)."""
    edges = [(f"n{i}", f"n{i + 1}") for i in range(length)]
    database = Database(semiring)
    database.register(relation_name, _edge_relation(semiring, edges, seed))
    return database


def dag_database(
    semiring: Semiring,
    *,
    layers: int = 5,
    width: int = 4,
    seed: int = 0,
    relation_name: str = "R",
) -> Database:
    """A layered DAG with all edges between consecutive layers.

    Transitive closure over a layered DAG has exponentially many derivation
    trees per layer distance but no cycles, so provenance stays polynomial --
    a useful contrast with cyclic graphs in the datalog benchmarks.
    """
    edges = []
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                edges.append((f"l{layer}_{i}", f"l{layer + 1}_{j}"))
    database = Database(semiring)
    database.register(relation_name, _edge_relation(semiring, edges, seed))
    return database


def triangle_query() -> Program:
    """The triangle-counting conjunctive query ``T(x,y,z) :- R(x,y), R(y,z), R(z,x)``."""
    return Program.parse("T(x, y, z) :- R(x, y), R(y, z), R(z, x)")


def random_update_stream(
    database: Database,
    *,
    batches: int,
    inserts_per_batch: int = 4,
    deletes_per_batch: int = 0,
    domain_size: int = 30,
    seed: int = 0,
    relation_names: Sequence[str] | None = None,
):
    """A reproducible stream of :class:`~repro.incremental.UpdateBatch` objects.

    Each batch inserts ``inserts_per_batch`` random tuples (fresh annotations
    from :func:`random_annotation`, ``+``-combined on collision) and deletes
    ``deletes_per_batch`` tuples drawn from the relations' *live* supports,
    spread over ``relation_names`` (default: every relation of ``database``).
    The generator tracks the evolving supports itself, so the stream can be
    produced up front and replayed against any copy of ``database`` -- the
    database passed in is only read, never mutated.
    """
    from repro.incremental import UpdateBatch

    rng = random.Random(seed)
    names = list(relation_names or database.names())
    semiring = database.semiring
    live: dict[str, dict] = {}
    schemas: dict[str, Sequence[str]] = {}
    for name in names:
        relation = database.relation(name)
        schemas[name] = relation.schema.attributes
        live[name] = {tup.values_for(schemas[name]): None for tup in relation}
    index = sum(len(rows) for rows in live.values())
    stream = []
    for _ in range(batches):
        insertions: dict[str, list] = {}
        deletions: dict[str, list] = {}
        for _ in range(inserts_per_batch):
            name = rng.choice(names)
            values = tuple(
                f"v{rng.randrange(domain_size)}" for _ in schemas[name]
            )
            index += 1
            insertions.setdefault(name, []).append(
                (values, random_annotation(semiring, rng, index))
            )
            live[name][values] = None
        for _ in range(deletes_per_batch):
            name = rng.choice(names)
            if not live[name]:
                continue
            values = rng.choice(list(live[name]))
            deletions.setdefault(name, []).append(values)
            del live[name][values]
        stream.append(UpdateBatch(insertions=insertions, deletions=deletions))
    return stream


def random_edge_insert_stream(
    semiring: Semiring,
    *,
    nodes: int,
    batches: int,
    edges_per_batch: int = 2,
    seed: int = 0,
    relation_name: str = "R",
):
    """Batches of random edge insertions for the incremental datalog workloads.

    Returns a list of batches, each a list of ``((source, target),
    annotation)`` entries ready for
    :meth:`repro.incremental.IncrementalDatalog.insert` on ``relation_name``.
    """
    rng = random.Random(seed)
    stream = []
    index = 0
    for _ in range(batches):
        batch = []
        for _ in range(edges_per_batch):
            source = rng.randrange(nodes)
            target = rng.randrange(nodes)
            if source == target:
                target = (target + 1) % nodes
            index += 1
            batch.append(
                (
                    (f"n{source}", f"n{target}"),
                    random_annotation(semiring, rng, index),
                )
            )
        stream.append(batch)
    return stream


def boolean_copy(database: Database) -> Database:
    """Re-annotate a database in the Boolean semiring (same support)."""
    boolean = BooleanSemiring()
    return database.map_annotations(lambda _: True, boolean)


def bag_copy(database: Database, multiplicity: int = 1) -> Database:
    """Re-annotate a database in the bag semiring with a constant multiplicity."""
    bag = NaturalsSemiring()
    return database.map_annotations(lambda _: multiplicity, bag)
