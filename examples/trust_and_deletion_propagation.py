"""Provenance-driven what-if analysis: deletion propagation and trust scoring.

The paper motivates how-provenance with applications where sources differ in
trust or may be retracted.  This example builds a small data-integration
scenario (claims collected from three feeds, joined with a reference table),
computes the provenance polynomial of every answer once, and then answers
several what-if questions *without re-running the query* -- just by
re-evaluating the polynomials under different valuations (Theorem 4.3):

* deletion propagation: which answers survive if feed B is retracted?
* trust scores: fuzzy confidence of each answer from per-source trust;
* counting: how many derivations each answer has, and which collapse.

Run with:  python examples/trust_and_deletion_propagation.py
"""

from repro import Database, NaturalsSemiring, Q
from repro.algebra import provenance_of_query
from repro.semirings import BooleanSemiring, FuzzySemiring, NaturalsSemiring as Bag
from repro.semirings.polynomial import Polynomial


def build_database() -> Database:
    """Claims(person, city) gathered from feeds; Reference(city, country)."""
    bag = NaturalsSemiring()
    database = Database(bag)
    database.create(
        "Claims",
        ["person", "city", "feed"],
        [
            (("ada", "paris", "feedA"), 1),
            (("ada", "paris", "feedB"), 1),
            (("bob", "lima", "feedB"), 1),
            (("bob", "lima", "feedC"), 1),
            (("cyd", "oslo", "feedC"), 1),
        ],
    )
    database.create(
        "Reference",
        ["city", "country"],
        [
            (("paris", "france"), 1),
            (("lima", "peru"), 1),
            (("oslo", "norway"), 1),
        ],
    )
    return database


def main() -> None:
    database = build_database()
    query = (
        Q.relation("Claims")
        .join(Q.relation("Reference"))
        .project("person", "country")
    )

    # Stage 1: compute provenance polynomials once.
    provenance, tagged = provenance_of_query(query, database)
    print("== Provenance of person-country answers ==")
    print(provenance.to_table(), "\n")

    # Human-readable names for the tuple ids.
    def describe(variable: str) -> str:
        relation_name, tup = tagged.tuple_for(variable)
        return f"{relation_name}{tuple(tup.as_dict().values())}"

    print("Tuple ids:")
    for variable in sorted(tagged.valuation):
        print(f"  {variable} = {describe(variable)}")
    print()

    # Stage 2a: deletion propagation -- retract everything from feedB.
    boolean = BooleanSemiring()
    surviving_valuation = {}
    for variable in tagged.valuation:
        relation_name, tup = tagged.tuple_for(variable)
        from_feed_b = relation_name == "Claims" and tup["feed"] == "feedB"
        surviving_valuation[variable] = not from_feed_b
    survivors = provenance.map_annotations(
        lambda poly: Polynomial.of(poly).evaluate(boolean, surviving_valuation), boolean
    )
    print("== After retracting feedB (deletion propagation) ==")
    print(survivors.to_table(), "\n")

    # Stage 2b: trust scores -- per-feed trust, combined with the fuzzy lattice.
    fuzzy = FuzzySemiring()
    feed_trust = {"feedA": 0.9, "feedB": 0.4, "feedC": 0.75}
    trust_valuation = {}
    for variable in tagged.valuation:
        relation_name, tup = tagged.tuple_for(variable)
        if relation_name == "Claims":
            trust_valuation[variable] = feed_trust[tup["feed"]]
        else:
            trust_valuation[variable] = 1.0
    trust = provenance.map_annotations(
        lambda poly: Polynomial.of(poly).evaluate(fuzzy, trust_valuation), fuzzy
    )
    print("== Trust scores (fuzzy semiring: max over derivations of min over sources) ==")
    print(trust.to_table(), "\n")

    # Stage 2c: derivation counts (bag semantics from the same polynomials).
    bag = Bag()
    counts = provenance.map_annotations(
        lambda poly: Polynomial.of(poly).evaluate(bag, {v: 1 for v in tagged.valuation}), bag
    )
    print("== Number of independent derivations per answer ==")
    print(counts.to_table())


if __name__ == "__main__":
    main()
