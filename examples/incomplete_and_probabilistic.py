"""Incomplete and probabilistic sensor data, queried with one engine.

Scenario: a deployment of sensors reports readings, but some reports are
unreliable.  We model the same data twice:

1. as an *incomplete database* (a Boolean c-table): each doubtful reading is
   guarded by a condition variable, and queries return conditions that say
   exactly in which possible worlds an answer holds (Figures 1-2);
2. as a *probabilistic database*: each doubtful reading has a probability,
   and queries return exact answer probabilities (Figure 4), including a
   recursive "connected through working links" datalog query (Section 8).

Run with:  python examples/incomplete_and_probabilistic.py
"""

from repro import Q
from repro.incomplete import CTable, certain_answers, ctable_database, possible_answers
from repro.probabilistic import ProbabilisticDatabase
from repro.workloads import transitive_closure_program


def incomplete_view() -> None:
    print("== Incomplete view: which rooms are too warm? ==")
    readings = CTable(["room", "status"])
    readings.add(("server-room", "hot"), True)           # trusted reading
    readings.add(("lab", "hot"), "flaky_sensor_7")        # only if sensor 7 is right
    readings.add(("lab", "ok"), "maintenance_done")       # only if maintenance happened
    readings.add(("office", "ok"), True)

    query = Q.relation("Readings").where_eq("status", "hot").project("room")
    database = ctable_database({"Readings": readings})
    result = query.evaluate(database)
    print(result.to_table())
    print("certain answers:", sorted(str(t) for t in certain_answers(query, readings, "Readings")))
    print("possible answers:", sorted(str(t) for t in possible_answers(query, readings, "Readings")))
    print()


def probabilistic_view() -> None:
    print("== Probabilistic view: alert probability and network reachability ==")
    pdb = ProbabilisticDatabase()
    pdb.add_relation(
        "Readings",
        ["room", "status"],
        [
            (("server-room", "hot"), "r1", 0.95),
            (("lab", "hot"), "r2", 0.40),
            (("office", "hot"), "r3", 0.05),
        ],
    )
    pdb.add_relation(
        "Link",
        ["src", "dst"],
        [
            (("gateway", "switch-a"), "l1", 0.9),
            (("switch-a", "server-room"), "l2", 0.8),
            (("gateway", "switch-b"), "l3", 0.5),
            (("switch-b", "server-room"), "l4", 0.5),
            (("switch-a", "switch-b"), "l5", 0.7),
        ],
    )

    hot_rooms = Q.relation("Readings").where_eq("status", "hot").project("room")
    print("P(room is hot):")
    for tup, probability in sorted(pdb.query_probabilities(hot_rooms).items(), key=lambda kv: str(kv[0])):
        print(f"  {tup['room']}: {probability:.3f}")
    print()

    reachability = transitive_closure_program(edge_relation="Link", output="Reach")
    print("P(gateway can reach a node through working links) -- recursive datalog over P(Ω):")
    probabilities = pdb.datalog_probabilities(reachability)
    for tup, probability in sorted(probabilities.items(), key=lambda kv: str(kv[0])):
        if tup["x"] == "gateway":
            print(f"  gateway ~> {tup['y']}: {probability:.4f}")


def main() -> None:
    incomplete_view()
    probabilistic_view()


if __name__ == "__main__":
    main()
