"""Recursive datalog provenance on a package-dependency graph.

Scenario: a package registry with DEPENDS(pkg, dep) edges.  We ask the
recursive reachability question "which packages (transitively) depend on
which libraries?", and use the machinery of Sections 5-7:

* bag semantics over N-inf counts dependency paths (with infinity where the
  graph has cycles);
* the algebraic system of Definition 5.5 is printed for inspection;
* All-Trees (Figure 8) separates packages with polynomial provenance from
  those affected by dependency cycles;
* the power-series provenance and Monomial-Coefficient (Figure 9) answer
  "in how many distinct ways does app depend on libz using edge e twice?";
* the tropical semiring turns the same program into a shortest-dependency-
  chain computation.

Run with:  python examples/datalog_graph_provenance.py
"""

from repro import CompletedNaturalsSemiring, Database, TropicalSemiring
from repro.datalog import (
    GroundAtom,
    all_trees,
    build_algebraic_system,
    datalog_provenance,
    evaluate,
    monomial_coefficient,
)
from repro.workloads import transitive_closure_program

EDGES = [
    ("app", "web", 1.0),
    ("app", "core", 2.0),
    ("web", "core", 1.0),
    ("core", "libz", 1.0),
    ("web", "libz", 4.0),
    # a cycle: plugin <-> core (mutually recursive packages)
    ("core", "plugin", 1.0),
    ("plugin", "core", 1.0),
]


def dependency_database(semiring, use_costs: bool = False) -> Database:
    database = Database(semiring)
    rows = []
    for source, target, cost in EDGES:
        annotation = cost if use_costs else semiring.one()
        rows.append(((source, target), annotation))
    database.create("R", ["pkg", "dep"], rows)
    return database


def main() -> None:
    program = transitive_closure_program()  # Q(x,y) :- R(x,y) | Q(x,z), Q(z,y)

    print("== Path counts over N∞ (∞ marks dependencies through the plugin/core cycle) ==")
    natinf = CompletedNaturalsSemiring()
    counts = evaluate(program, dependency_database(natinf))
    print(counts.to_table(), "\n")

    print("== The algebraic system Q-bar = T_q(R, Q-bar) (Definition 5.5) ==")
    system = build_algebraic_system(program, dependency_database(natinf))
    print(system, "\n")

    print("== All-Trees (Figure 8): who has polynomial provenance? ==")
    trees = all_trees(program, dependency_database(natinf))
    for atom in sorted(trees.ground.output_atoms(), key=str):
        provenance = trees.provenance(atom)
        rendered = "∞ (cycle-affected)" if provenance is None else str(provenance)
        print(f"  {atom}: {rendered}")
    print()
    print("  tuple ids:", {str(k): v for k, v in sorted(trees.edb_ids.items(), key=lambda kv: kv[1])})
    print()

    print("== Power-series provenance of app -> core (Section 6) ==")
    provenance = datalog_provenance(program, dependency_database(natinf), truncation_degree=4)
    series = provenance.provenance(GroundAtom("Q", ("app", "core")))
    print(f"  {series}\n")

    print("== Monomial-Coefficient (Figure 9) ==")
    ids = provenance.edb_ids
    core_plugin = ids[GroundAtom("R", ("core", "plugin"))]
    plugin_core = ids[GroundAtom("R", ("plugin", "core"))]
    app_core = ids[GroundAtom("R", ("app", "core"))]
    monomial = f"{app_core}*{core_plugin}^2*{plugin_core}^2"
    result = monomial_coefficient(program, dependency_database(natinf), ("app", "core"), monomial)
    print(f"  coefficient of {monomial} in Q(app, core) = {result.coefficient}")
    print("  (number of derivations that bounce through the plugin cycle exactly twice)\n")

    print("== Shortest dependency chains (tropical semiring) ==")
    tropical = TropicalSemiring()
    distances = evaluate(program, dependency_database(tropical, use_costs=True))
    print(distances.to_table())


if __name__ == "__main__":
    main()
