"""Quickstart: one query, every annotation semiring.

Reproduces the running example of the paper (Sections 2-4): the query

    q(R) = pi_ac( pi_ab R |x| pi_bc R  U  pi_ac R |x| pi_bc R )

is evaluated over the same three-tuple relation under set semantics, bag
semantics, c-table conditions, probabilities, why-provenance and provenance
polynomials -- all with the *same* query object and the same generic
evaluation algorithm, which is the point of K-relations.

Run with:  python examples/quickstart.py
"""

from repro import (
    BooleanSemiring,
    CircuitSemiring,
    Database,
    NaturalsSemiring,
    PosBoolSemiring,
    Q,
    TropicalSemiring,
    WhyProvenanceSemiring,
    factorized_evaluate,
    specialize,
)
from repro.semirings.posbool import BoolExpr
from repro.workloads import (
    figure3_bag_database,
    figure4_probabilistic_database,
    figure5_provenance_ids,
    section2_query,
)


def build_query():
    """The Section 2 query, written with the fluent builder."""
    R = Q.relation("R")
    left = R.project("a", "b").join(R.project("b", "c"))
    right = R.project("a", "c").join(R.project("b", "c"))
    return left.union(right).project("a", "c")


def main() -> None:
    query = build_query()
    assert str(query) == str(section2_query())

    print("== Set semantics (Boolean semiring) ==")
    boolean_db = Database(BooleanSemiring())
    boolean_db.create("R", ["a", "b", "c"], [("a", "b", "c"), ("d", "b", "e"), ("f", "g", "e")])
    print(query.evaluate(boolean_db).to_table(), "\n")

    print("== Bag semantics (Figure 3: multiplicities 2, 5, 1) ==")
    print(query.evaluate(figure3_bag_database()).to_table(), "\n")

    print("== Incomplete database (Figure 2: c-table conditions) ==")
    ctable_db = Database(PosBoolSemiring())
    ctable_db.create(
        "R",
        ["a", "b", "c"],
        [
            (("a", "b", "c"), BoolExpr.var("b1")),
            (("d", "b", "e"), BoolExpr.var("b2")),
            (("f", "g", "e"), BoolExpr.var("b3")),
        ],
    )
    print(query.evaluate(ctable_db).to_table(), "\n")

    print("== Probabilistic database (Figure 4: Pr x=0.6, y=0.5, z=0.1) ==")
    pdb = figure4_probabilistic_database()
    for tup, probability in sorted(pdb.query_probabilities(query).items(), key=lambda kv: str(kv[0])):
        print(f"  {tup}: Pr = {probability:.2f}")
    print()

    print("== Why-provenance (Figure 5(b)) ==")
    why_db = Database(WhyProvenanceSemiring())
    why_db.create(
        "R",
        ["a", "b", "c"],
        [
            (("a", "b", "c"), frozenset({"p"})),
            (("d", "b", "e"), frozenset({"r"})),
            (("f", "g", "e"), frozenset({"s"})),
        ],
    )
    print(query.evaluate(why_db).to_table(), "\n")

    print("== Provenance polynomials (Figure 5(c)) and Theorem 4.3 ==")
    result = factorized_evaluate(query, figure3_bag_database(), ids=figure5_provenance_ids())
    print(result.provenance.to_table())
    print()
    print("Evaluating the polynomials at p=2, r=5, s=1 recovers the bag result:")
    print(result.evaluated.to_table())
    print()

    print("== Provenance circuits: one query, one DAG, three semirings ==")
    # The compact successor to the expanded polynomials above: annotate the
    # inputs with hash-consed circuit variables, run the *same* query object
    # once, and specialize the shared provenance DAG into any semiring with
    # one memoized pass each (no re-evaluation per monomial, no re-running
    # the query).
    circ = CircuitSemiring()
    circuit_db = Database(circ)
    circuit_db.create(
        "R",
        ["a", "b", "c"],
        [
            (("a", "b", "c"), circ.var("p")),
            (("d", "b", "e"), circ.var("r")),
            (("f", "g", "e"), circ.var("s")),
        ],
    )
    circuits = query.evaluate(circuit_db)
    print(circuits.to_table())
    print()
    print("...specialized to bags (p=2, r=5, s=1):")
    print(specialize(circuits, NaturalsSemiring(), {"p": 2, "r": 5, "s": 1}).to_table())
    print()
    print("...to min-cost (tropical; costs 1.0, 2.0, 5.0):")
    print(specialize(circuits, TropicalSemiring(), {"p": 1.0, "r": 2.0, "s": 5.0}).to_table())
    print()
    print("...to c-table conditions (PosBool):")
    print(
        specialize(
            circuits,
            PosBoolSemiring(),
            {"p": BoolExpr.var("b1"), "r": BoolExpr.var("b2"), "s": BoolExpr.var("b3")},
        ).to_table()
    )


if __name__ == "__main__":
    main()
