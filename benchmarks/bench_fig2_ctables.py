"""E2 / Figure 2: the Imielinski-Lipski computation on c-tables via PosBool(B).

Regenerates the simplified c-table of Figure 2(b).
"""

from conftest import report

from repro.incomplete import CTable, ctable_database
from repro.semirings.posbool import BoolExpr
from repro.workloads import figure2_ctable_input, section2_query

EXPECTED = {
    ("a", "c"): "b1",
    ("a", "e"): "b1 ∧ b2",
    ("d", "c"): "b1 ∧ b2",
    ("d", "e"): "b2",
    ("f", "e"): "b3",
}


def _imielinski_lipski():
    database = ctable_database({"R": figure2_ctable_input()})
    return section2_query().evaluate(database)


def test_fig2_ctable_query_answering(benchmark):
    result = benchmark(_imielinski_lipski)
    rows = []
    for tup, condition in sorted(result.items(), key=lambda kv: str(kv[0])):
        key = (tup["a"], tup["c"])
        assert str(condition) == EXPECTED[key]
        rows.append(f"{key[0]} {key[1]}   {condition}")
    report("Figure 2(b): simplified c-table result", rows)


def test_fig2_result_world_set_equivalence(benchmark):
    """The c-table result represents exactly the Figure 1(c) worlds."""
    result = _imielinski_lipski()
    output = CTable.from_relation(result)

    def world_set():
        return output.world_set(variables=["b1", "b2", "b3"])

    worlds = benchmark(world_set)
    assert len(worlds) == 8


def test_fig2_condition_simplification(benchmark):
    """The raw Figure 2(a) conditions simplify (absorption) to Figure 2(b)."""

    def simplify():
        b1, b2, b3 = BoolExpr.var("b1"), BoolExpr.var("b2"), BoolExpr.var("b3")
        return [
            (b1 & b1) | (b1 & b1),
            (b2 & b2) | (b2 & b2) | (b2 & b3),
            (b3 & b3) | (b3 & b3) | (b2 & b3),
        ]

    simplified = benchmark(simplify)
    assert [str(e) for e in simplified] == ["b1", "b2", "b3"]
