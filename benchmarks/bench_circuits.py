"""S3: provenance circuits vs expanded polynomials.

Pits the hash-consed ``Circ[X]`` representation against the paper's expanded
``N[X]`` polynomials on the same workloads the scaling benchmarks use:

* the star-join query of ``bench_scaling_ra.py`` (RA depth), and
* linear transitive closure on the layered DAG of
  ``bench_scaling_datalog.py`` (fixpoint depth; the *largest* instance
  there is ``layers=5, width=3``).

For each workload we measure wall time for the provenance computation, the
annotation size (total monomial/variable occurrences for polynomials vs
distinct DAG nodes with sharing for circuits), and the time to evaluate the
provenance into the bag semiring (``Eval_v``).  The acceptance bar for this
file is a >= 5x circuit win (time or size) on the largest datalog instance.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_circuits.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_circuits.py``.
"""

import time

from conftest import check_speedup, report
from reporting import consing_snapshot, emit

from repro.algebra import Q
from repro.circuits import CircuitEvaluator, CircuitSemiring, node_count
from repro.datalog import evaluate_program
from repro.relations.tagging import abstractly_tag_database
from repro.semirings import NaturalsSemiring, Polynomial
from repro.workloads import (
    dag_database,
    star_join_database,
    transitive_closure_program,
)

RA_QUERY = (
    Q.relation("F")
    .join(Q.relation("D1"))
    .join(Q.relation("D2"))
    .project("a", "b", "x", "y")
)

#: The largest instance of bench_scaling_datalog.py's DAG series.
DATALOG_LAYERS, DATALOG_WIDTH = 5, 3


def _polynomial_size(value) -> int:
    """Expanded size: one unit per coefficient plus per variable occurrence."""
    return sum(1 + monomial.degree for monomial, _ in Polynomial.of(value).terms)


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _compare(tag, poly_run, circ_run, annotations_of):
    """Run both representations, returning a comparison record."""
    poly_result, poly_time = _timed(poly_run)
    circ_result, circ_time = _timed(circ_run)

    poly_annotations = annotations_of(poly_result)
    circ_annotations = annotations_of(circ_result)
    poly_size = sum(_polynomial_size(p) for p in poly_annotations)
    circ_size = node_count(*circ_annotations)

    bag = NaturalsSemiring()
    valuation = {name: 1 for name in _variables(poly_annotations)}
    _, poly_eval_time = _timed(
        lambda: [p.evaluate(bag, valuation) for p in poly_annotations]
    )
    evaluator = CircuitEvaluator(bag, valuation)
    _, circ_eval_time = _timed(lambda: [evaluator(c) for c in circ_annotations])

    return {
        "tag": tag,
        "poly_time": poly_time,
        "circ_time": circ_time,
        "poly_size": poly_size,
        "circ_size": circ_size,
        "poly_eval_time": poly_eval_time,
        "circ_eval_time": circ_eval_time,
    }


def _variables(polynomials):
    names = set()
    for polynomial in polynomials:
        names |= Polynomial.of(polynomial).variables
    return names


def _lines(record):
    time_ratio = record["poly_time"] / max(record["circ_time"], 1e-9)
    size_ratio = record["poly_size"] / max(record["circ_size"], 1)
    eval_ratio = record["poly_eval_time"] / max(record["circ_eval_time"], 1e-9)
    return [
        f"{record['tag']}",
        f"  compute   N[X] {record['poly_time'] * 1e3:8.1f} ms   Circ[X] {record['circ_time'] * 1e3:8.1f} ms   ({time_ratio:.1f}x)",
        f"  size      N[X] {record['poly_size']:8d} units  Circ[X] {record['circ_size']:8d} nodes  ({size_ratio:.1f}x)",
        f"  Eval_v    N[X] {record['poly_eval_time'] * 1e3:8.1f} ms   Circ[X] {record['circ_eval_time'] * 1e3:8.1f} ms   ({eval_ratio:.1f}x)",
    ]


def _ra_record(fact_tuples=150, dimension_tuples=30):
    base = star_join_database(
        NaturalsSemiring(),
        fact_tuples=fact_tuples,
        dimension_tuples=dimension_tuples,
        seed=5,
    )
    poly_db = abstractly_tag_database(base).database
    circ_db = abstractly_tag_database(base, semiring=CircuitSemiring()).database
    return _compare(
        f"RA star join (facts={fact_tuples})",
        lambda: RA_QUERY.evaluate(poly_db),
        lambda: RA_QUERY.evaluate(circ_db),
        lambda relation: list(relation.annotations()),
    )


def _datalog_record(layers=DATALOG_LAYERS, width=DATALOG_WIDTH):
    base = dag_database(NaturalsSemiring(), layers=layers, width=width)
    program = transitive_closure_program(linear=True)
    poly_db = abstractly_tag_database(base).database
    circ_db = abstractly_tag_database(base, semiring=CircuitSemiring()).database
    return _compare(
        f"datalog TC on layered DAG (layers={layers}, width={width})",
        lambda: evaluate_program(program, poly_db),
        lambda: evaluate_program(program, circ_db),
        lambda result: list(result.annotations.values()),
    )


def test_circuits_beat_polynomials_on_ra_star_join():
    record = _ra_record()
    report("S3: circuits vs polynomials (RA star join)", _lines(record))
    # Star joins build monomials, not sums, so parity is the expectation;
    # circuits must at least not regress by more than noise.
    assert record["circ_size"] <= record["poly_size"] * 2


def test_circuits_beat_polynomials_on_largest_datalog_instance():
    record = _datalog_record()
    report(
        "S3: circuits vs polynomials (largest bench_scaling_datalog instance)",
        _lines(record),
    )
    best_ratio = max(
        record["poly_time"] / max(record["circ_time"], 1e-9),
        record["poly_size"] / max(record["circ_size"], 1),
    )
    check_speedup(best_ratio, 5.0, "circuit win on the largest datalog instance")


def test_circuit_advantage_grows_with_depth():
    shallow = _datalog_record(layers=3, width=3)
    deep = _datalog_record(layers=5, width=3)
    shallow_ratio = shallow["poly_size"] / max(shallow["circ_size"], 1)
    deep_ratio = deep["poly_size"] / max(deep["circ_size"], 1)
    report(
        "S3: circuit size advantage by fixpoint depth",
        [
            f"layers=3: {shallow_ratio:.1f}x smaller,  layers=5: {deep_ratio:.1f}x smaller",
            "sharing wins grow with join/fixpoint depth (the asymptotic claim)",
        ],
    )
    assert deep_ratio > shallow_ratio


def _circuit_consing(fact_tuples=150, dimension_tuples=30):
    """Hash-consing hit rate while computing the RA circuit provenance."""
    base = star_join_database(
        NaturalsSemiring(),
        fact_tuples=fact_tuples,
        dimension_tuples=dimension_tuples,
        seed=5,
    )
    circ_db = abstractly_tag_database(base, semiring=CircuitSemiring()).database
    return consing_snapshot(lambda: RA_QUERY.evaluate(circ_db))


def main() -> None:
    records = [_ra_record(), _datalog_record()]
    for record in records:
        for line in _lines(record):
            print(line)
    best = records[-1]
    best_ratio = max(
        best["poly_time"] / max(best["circ_time"], 1e-9),
        best["poly_size"] / max(best["circ_size"], 1),
    )
    print(f"\nlargest-datalog-instance circuit win: {best_ratio:.1f}x (need >= 5x)")
    emit(
        "circuits",
        records,
        summary={
            "largest_win": best_ratio,
            "required_win": 5.0,
            "datalog_instance": {"layers": DATALOG_LAYERS, "width": DATALOG_WIDTH},
            "consing": {
                "workload": "RA star join circuit provenance (facts=150)",
                **_circuit_consing(),
            },
        },
    )
    check_speedup(best_ratio, 5.0, "circuit win on the largest datalog instance")


if __name__ == "__main__":
    main()
