"""S5: partition-parallel datalog vs the serial columnar engine.

Times the semi-naive engine with a four-worker :class:`repro.parallel.ParallelExecutor`
against its own serial columnar run on linear transitive closure over
layered DAGs annotated in the event semiring ``(P(Omega), U, intersection)``
-- probabilistic reachability in the style of the paper's event-table
example (Figure 4): every edge carries an event over a 256-world sample
space and every derived path the intersection/union combination of its
derivations.  The workload is chosen to favour neither side artificially:
events are exactly the kind of non-vectorizable annotation the columnar
backend cannot batch through numpy, while the complete-bipartite layers
give each delta row a full layer of join partners, so the fan-in work
dominates the partition/ship/merge overhead.

The acceptance bar is a >= 2x parallel-over-serial win with four workers on
the largest instance of the series.  Four workers cannot beat that floor on
fewer than four cores, so the hard check additionally requires
``os.cpu_count() >= 4`` (skipped with a visible note otherwise -- CI's
runners qualify); every run cross-checks that parallel and serial produced
identical annotations, so the benchmark doubles as an end-to-end
equivalence test.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_parallel.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py``.
"""

import os
import time

from conftest import check_speedup, report
from reporting import emit

from repro.datalog import evaluate_program
from repro.parallel import ParallelExecutor
from repro.semirings.events import EventSemiring, EventSpace
from repro.workloads import dag_database, transitive_closure_program

#: Layer widths of the instance series (layers and worlds stay fixed; the
#: middle layer's fan-in grows with the width).  The last entry is "the
#: largest scaling instance" the acceptance criterion refers to.
WIDTHS = [40, 56, 72]
LAYERS = 3
WORLDS = 256
WORKERS = 4
SEED = 9

REQUIRED_SPEEDUP = 2.0


def _semiring() -> EventSemiring:
    space = EventSpace({f"w{i}": 1.0 for i in range(WORLDS)}, normalize=True)
    return EventSemiring(space)


def _database(width: int):
    return dag_database(_semiring(), layers=LAYERS, width=width, seed=SEED)


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _record(width: int, executor: ParallelExecutor):
    database = _database(width)
    program = transitive_closure_program(linear=True)
    serial, serial_time = _timed(
        lambda: evaluate_program(
            program, database, engine="seminaive", storage="columnar"
        )
    )
    parallel, parallel_time = _timed(
        lambda: evaluate_program(
            program,
            database,
            engine="seminaive",
            storage="columnar",
            parallel=executor,
        )
    )
    assert parallel.annotations == serial.annotations, (
        f"parallel and serial runs disagree at width={width}"
    )
    assert parallel.iterations == serial.iterations
    return {
        "tag": (
            f"linear TC on layered DAG (P(Ω), {WORLDS} worlds, "
            f"layers={LAYERS}, width={width})"
        ),
        "width": width,
        "serial_time": serial_time,
        "parallel_time": parallel_time,
        "workers": executor.workers,
        "rounds": parallel.iterations,
        "tuples": len(parallel.annotations),
    }


def _speedup(record):
    return record["serial_time"] / max(record["parallel_time"], 1e-9)


def _lines(record):
    return [
        f"{record['tag']}: {record['tuples']} derived tuples in {record['rounds']} rounds",
        f"  seminaive, serial columnar        {record['serial_time'] * 1e3:8.1f} ms",
        f"  seminaive, {record['workers']} partition workers  {record['parallel_time'] * 1e3:8.1f} ms"
        f"  ({_speedup(record):.1f}x faster, shared-nothing rounds)",
    ]


def _enough_cores() -> bool:
    return (os.cpu_count() or 1) >= WORKERS


def _warmup(executor: ParallelExecutor) -> None:
    """Pay pool start-up and worker import cost outside the timed region."""
    evaluate_program(
        transitive_closure_program(linear=True),
        _database(8),
        engine="seminaive",
        storage="columnar",
        parallel=executor,
    )


def test_parallel_matches_serial_on_small_instance():
    with ParallelExecutor(2) as executor:
        record = _record(24, executor)
    report("S5: partition-parallel vs serial datalog (smoke)", _lines(record))


def test_parallel_beats_serial_on_largest_instance():
    import pytest

    if not _enough_cores():
        pytest.skip(
            f"the >= {REQUIRED_SPEEDUP:g}x floor needs >= {WORKERS} cores "
            f"(this machine has {os.cpu_count()})"
        )
    with ParallelExecutor(WORKERS) as executor:
        _warmup(executor)
        record = _record(WIDTHS[-1], executor)
    report(
        "S5: partition-parallel vs serial datalog (largest instance)",
        _lines(record),
    )
    check_speedup(
        _speedup(record), REQUIRED_SPEEDUP, "parallel win on the largest instance"
    )


def main() -> None:
    with ParallelExecutor(WORKERS) as executor:
        _warmup(executor)
        records = [_record(width, executor) for width in WIDTHS]
    for record in records:
        record["speedup"] = _speedup(record)
        for line in _lines(record):
            print(line)
    largest = records[-1]
    print(
        f"\nlargest-instance parallel win: {_speedup(largest):.1f}x "
        f"(need >= {REQUIRED_SPEEDUP:g}x on >= {WORKERS} cores)"
    )
    summary = {
        "largest_speedup": _speedup(largest),
        "required_speedup": REQUIRED_SPEEDUP,
        "workers": WORKERS,
        "cores": os.cpu_count(),
        "instances": [
            {"semiring": _semiring().name, "layers": LAYERS, "width": w}
            for w in WIDTHS
        ],
    }
    emit("parallel", records, summary=summary)
    if _enough_cores():
        check_speedup(
            _speedup(largest),
            REQUIRED_SPEEDUP,
            "parallel win on the largest instance",
        )
    else:
        print(
            f"speedup floor not enforced: {WORKERS} workers cannot beat "
            f"{REQUIRED_SPEEDUP:g}x on {os.cpu_count()} core(s)"
        )


if __name__ == "__main__":
    main()
