"""T6 / Section 9: conjunctive-query containment under K-relation semantics."""

from conftest import report

from repro.algebra import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    contained_in_semiring,
    cq_contained_set,
    ucq_contained_set,
)
from repro.semirings import FuzzySemiring, NaturalsSemiring, PosBoolSemiring

Q_SPECIFIC = ConjunctiveQuery.parse("Q(x) :- R(x, x)")
Q_GENERAL = ConjunctiveQuery.parse("Q(x) :- R(x, y)")
Q_DOUBLE = ConjunctiveQuery.parse("Q(x) :- R(x, y), R(x, z)")
Q_TWO_STEP = ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)")
Q_ONE_STEP = ConjunctiveQuery.parse("Q(x, y) :- R(x, y)")


def test_sec9_chandra_merlin_containment(benchmark):
    def run():
        return (
            cq_contained_set(Q_SPECIFIC, Q_GENERAL),
            cq_contained_set(Q_GENERAL, Q_SPECIFIC),
            ucq_contained_set(Q_TWO_STEP, UnionOfConjunctiveQueries([Q_ONE_STEP, Q_TWO_STEP])),
        )

    results = benchmark(run)
    assert results == (True, False, True)


def test_sec9_theorem92_lattice_containment(benchmark):
    """For distributive lattices, ⊑_K is decided via the set-semantics procedure."""

    def run():
        rows = []
        for lattice in (PosBoolSemiring(), FuzzySemiring()):
            forward = contained_in_semiring(Q_SPECIFIC, Q_GENERAL, lattice)
            backward = contained_in_semiring(Q_GENERAL, Q_SPECIFIC, lattice)
            rows.append((lattice.name, forward, backward))
        return rows

    rows = benchmark(run)
    for name, forward, backward in rows:
        assert forward is True and backward is False
    report(
        "Theorem 9.2: q_specific ⊑_K q_general iff ⊑_B (distributive lattices K)",
        [f"{name}: forward={forward}, backward={backward}" for name, forward, backward in rows],
    )


def test_sec9_bag_containment_differs_from_set(benchmark):
    """Set-equivalent queries need not be bag-contained (randomized refutation)."""

    def run():
        set_equivalent = cq_contained_set(Q_DOUBLE, Q_GENERAL) and cq_contained_set(
            Q_GENERAL, Q_DOUBLE
        )
        bag_contained = contained_in_semiring(Q_DOUBLE, Q_GENERAL, NaturalsSemiring(), trials=40)
        return set_equivalent, bag_contained

    set_equivalent, bag_contained = benchmark(run)
    assert set_equivalent is True and bag_contained is False
    report(
        "Section 9: set vs bag containment for Q(x):-R(x,y),R(x,z) vs Q(x):-R(x,y)",
        [f"equivalent under B: {set_equivalent}", f"contained under N: {bag_contained}"],
    )
