"""T5 / Section 8: terminating datalog on finite distributive lattices
(c-tables, event tables, Boolean sanity check)."""

from conftest import report

from repro.datalog import evaluate_on_lattice, lattice_condition_provenance
from repro.probabilistic import ProbabilisticDatabase
from repro.relations import Database
from repro.semirings import BooleanSemiring, FuzzySemiring, PosBoolSemiring
from repro.semirings.posbool import BoolExpr
from repro.workloads import figure7_database, figure7_program, transitive_closure_program


def test_sec8_boolean_sanity_check(benchmark):
    """Datalog over B via the lattice algorithm: every derivable tuple is true."""
    database = figure7_database(BooleanSemiring())
    program = figure7_program()
    result = benchmark(lambda: evaluate_on_lattice(program, database))
    assert len(result) == 7 and all(v is True for v in result.annotations())


def test_sec8_datalog_on_ctables(benchmark):
    """Datalog on Boolean c-tables: recursive queries over PosBool(B) terminate."""
    posbool = PosBoolSemiring()
    database = Database(posbool)
    database.create(
        "R",
        ["x", "y"],
        [
            (("a", "b"), BoolExpr.var("e1")),
            (("b", "c"), BoolExpr.var("e2")),
            (("c", "a"), BoolExpr.var("e3")),
            (("c", "d"), BoolExpr.var("e4")),
        ],
    )
    program = transitive_closure_program()
    result = benchmark(lambda: evaluate_on_lattice(program, database))
    assert result.annotation(("a", "d")) == (
        BoolExpr.var("e1") & BoolExpr.var("e2") & BoolExpr.var("e4")
    )
    report(
        "Section 8: datalog on a Boolean c-table (transitive closure conditions)",
        [f"{t['x']} {t['y']}   {result.annotation(t)}" for t in sorted(result.support, key=str)],
    )


def test_sec8_probabilistic_datalog(benchmark):
    """Datalog over P(Omega): exact probabilities for recursive reachability."""
    pdb = ProbabilisticDatabase()
    pdb.add_relation(
        "R",
        ["x", "y"],
        [
            (("a", "b"), "e1", 0.5),
            (("b", "c"), "e2", 0.5),
            (("c", "a"), "e3", 0.5),
            (("a", "c"), "e4", 0.2),
            (("c", "d"), "e5", 0.4),
        ],
    )
    program = transitive_closure_program()
    probabilities = benchmark(lambda: pdb.datalog_probabilities(program))
    rows = [f"{t['x']} {t['y']}   Pr = {p:.4f}" for t, p in sorted(probabilities.items(), key=lambda kv: str(kv[0]))]
    report("Section 8: probabilistic datalog (reachability probabilities)", rows)
    assert all(0.0 <= p <= 1.0 for p in probabilities.values())


def test_sec8_condition_provenance_then_fuzzy(benchmark):
    """Compute PosBool(X) conditions once, then specialize to the fuzzy lattice."""
    database = figure7_database(FuzzySemiring())
    relation = database["R"]
    for index, tup in enumerate(sorted(relation.support, key=str)):
        relation.set(tup, [1.0, 0.75, 0.5, 0.25, 0.125][index])
    program = figure7_program()

    def pipeline():
        provenance = lattice_condition_provenance(program, database)
        from repro.datalog import ground_program

        ground = ground_program(program, database)
        valuation = {
            provenance.edb_ids[atom]: ground.edb_annotation(atom) for atom in ground.edb_atoms
        }
        return provenance.evaluate(FuzzySemiring(), valuation)

    values = benchmark(pipeline)
    assert all(0.0 <= v <= 1.0 for v in values.values())
