"""E9 / Figure 9: Algorithm Monomial-Coefficient -- exact coefficients of the
provenance series, including detection of infinite coefficients."""

from conftest import report

from repro.datalog import monomial_coefficient
from repro.relations import Database
from repro.semirings import CompletedNaturalsSemiring, Monomial, NatInf
from repro.workloads import figure7_database, figure7_edb_ids, figure7_program

CATALAN = {1: 1, 2: 1, 3: 2, 4: 5, 5: 14, 6: 42}


def test_fig9_catalan_coefficients(benchmark):
    database = figure7_database()
    program = figure7_program()

    def coefficients():
        return {
            n: monomial_coefficient(
                program, database, ("d", "d"), Monomial.var("s", n), edb_ids=figure7_edb_ids()
            ).coefficient
            for n in range(1, 7)
        }

    values = benchmark(coefficients)
    for n, expected in CATALAN.items():
        assert values[n] == NatInf(expected)
    report(
        "Figure 9: coefficients of s^n in v (Catalan numbers, paper footnote 6)",
        [f"[s^{n}] v = {values[n]}" for n in sorted(values)],
    )


def test_fig9_w_coefficient(benchmark):
    """Coefficient of r·n·p·s³ in w: 42 on the full instantiation (see EXPERIMENTS.md
    for the discussion of the paper's claimed value of 5)."""
    database = figure7_database()
    program = figure7_program()
    result = benchmark(
        lambda: monomial_coefficient(
            program, database, ("a", "d"), "r*n*p*s^3", edb_ids=figure7_edb_ids()
        )
    )
    assert result.coefficient == NatInf(42)
    report(
        "Figure 9: coefficient of r·n·p·s^3 in w",
        [f"[r·n·p·s^3] w = {result.coefficient} (paper text claims 5; see EXPERIMENTS.md)"],
    )


def test_fig9_infinite_coefficient_detection(benchmark):
    """A unit-rule cycle makes a coefficient infinite (Theorem 6.5)."""
    natinf = CompletedNaturalsSemiring()
    database = Database(natinf)
    database.create("E", ["x"], [(("a",), 1)])
    program = "P(x) :- E(x)\nP(x) :- T(x)\nT(x) :- P(x)"
    result = benchmark(lambda: monomial_coefficient(program, database, ("a",), "t1"))
    assert result.is_infinite
