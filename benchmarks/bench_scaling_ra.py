"""S1: cost of annotation propagation in the positive algebra across semirings.

The paper argues one generic algorithm serves set, bag, c-table, probabilistic
and provenance annotations; this benchmark measures what the *choice of
semiring* costs on the same star-join workload (who is cheap, who pays for
symbolic annotations, and by roughly what factor provenance polynomials are
heavier than plain Boolean evaluation).
"""

import pytest
from conftest import report

from repro.algebra import Q
from repro.semirings import (
    BooleanSemiring,
    NaturalsSemiring,
    PosBoolSemiring,
    ProvenancePolynomialSemiring,
    TropicalSemiring,
    WhyProvenanceSemiring,
)
from repro.workloads import star_join_database

SEMIRINGS = [
    BooleanSemiring(),
    NaturalsSemiring(),
    TropicalSemiring(),
    WhyProvenanceSemiring(),
    PosBoolSemiring(),
    ProvenancePolynomialSemiring(),
]

QUERY = (
    Q.relation("F")
    .join(Q.relation("D1"))
    .join(Q.relation("D2"))
    .project("a", "b", "x", "y")
)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_star_join_across_semirings(benchmark, semiring):
    database = star_join_database(semiring, fact_tuples=150, dimension_tuples=30, seed=5)
    result = benchmark(lambda: QUERY.evaluate(database))
    assert len(result) > 0
    report(
        "S1: star join across semirings (see pytest-benchmark table for timings)",
        ["the same query AST runs unchanged over every annotation semiring"],
    )


@pytest.mark.parametrize("fact_tuples", [50, 150, 400], ids=lambda n: f"facts={n}")
def test_provenance_scaling_with_input_size(benchmark, fact_tuples):
    """How provenance-polynomial evaluation scales with the fact-table size."""
    database = star_join_database(
        ProvenancePolynomialSemiring(), fact_tuples=fact_tuples, dimension_tuples=30, seed=5
    )
    result = benchmark(lambda: QUERY.evaluate(database))
    assert len(result) >= 0
