"""E4 / Figure 4: event tables and exact output-tuple probabilities."""

import pytest
from conftest import report

from repro.workloads import figure4_probabilistic_database, section2_query

EXPECTED_EVENTS = {
    ("a", "c"): "x",
    ("a", "e"): "x ∩ y",
    ("d", "c"): "x ∩ y",
    ("d", "e"): "y",
    ("f", "e"): "z",
}
EXPECTED_PROBABILITIES = {
    ("a", "c"): 0.6,
    ("a", "e"): 0.3,
    ("d", "c"): 0.3,
    ("d", "e"): 0.5,
    ("f", "e"): 0.1,
}


def test_fig4_event_table_query(benchmark):
    pdb = figure4_probabilistic_database()
    query = section2_query()
    events = benchmark(lambda: pdb.query_events(query))
    assert len(events) == 5


def test_fig4_output_probabilities(benchmark):
    pdb = figure4_probabilistic_database()
    query = section2_query()
    probabilities = benchmark(lambda: pdb.query_probabilities(query))
    rows = []
    for tup, probability in sorted(probabilities.items(), key=lambda kv: str(kv[0])):
        key = (tup["a"], tup["c"])
        assert probability == pytest.approx(EXPECTED_PROBABILITIES[key])
        rows.append(f"{key[0]} {key[1]}   {EXPECTED_EVENTS[key]:7s}  Pr = {probability:.2f}")
    report("Figure 4(b): event-table result with probabilities (Pr x=0.6, y=0.5, z=0.1)", rows)
