"""Machine-readable benchmark reports: ``BENCH_<name>.json`` emission.

Every ``bench_*.py`` main() prints its human-readable table *and* calls
:func:`emit` with its record dicts, producing one ``BENCH_<name>.json`` per
benchmark next to the repository root (override the directory with
``REPRO_BENCH_OUT``).  The JSON carries the instance parameters, raw
timings, derived speedups and -- where the benchmark provides them --
semiring-operation counts measured with
:class:`repro.obs.semiring.InstrumentedSemiring`, so successive runs can be
diffed mechanically and CI can upload the files as artifacts.

The helpers :func:`ops_snapshot` / :func:`consing_snapshot` run a workload
under the instrumented-semiring wrapper / the circuit hash-consing counters
and return the counts; benchmarks use them on a representative instance so
op counts (which are deterministic) ride along with the wall-clock numbers
(which are not).
"""

from __future__ import annotations

import json
import os
import platform
from typing import Any, Callable, Dict, List

__all__ = ["emit", "output_path", "ops_snapshot", "consing_snapshot", "storage_kind"]


def storage_kind() -> str:
    """The session-default storage backend benchmarks run under."""
    from repro.relations.storage import resolve_storage_kind

    return resolve_storage_kind(None)


def output_path(name: str) -> str:
    """Where the report goes: repo root, or ``REPRO_BENCH_OUT``.

    Named ``BENCH_<name>.json`` under the default (row) backend and
    ``BENCH_<name>.<kind>.json`` when ``REPRO_STORAGE`` selects another
    one, so runs against different backends keep distinct seed files.
    """
    out_dir = os.environ.get("REPRO_BENCH_OUT")
    if not out_dir:
        out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
    kind = storage_kind()
    suffix = "" if kind == "row" else f".{kind}"
    return os.path.abspath(os.path.join(out_dir, f"BENCH_{name}{suffix}.json"))


def emit(
    name: str,
    records: List[Dict[str, Any]],
    *,
    summary: Dict[str, Any] | None = None,
) -> str:
    """Write a benchmark's machine-readable report; return the file path.

    ``records`` are the benchmark's per-instance dicts as-is (values that are
    not JSON-native degrade to ``str``); ``summary`` carries whole-run facts
    such as the acceptance speedup and semiring-op counts.
    """
    payload: Dict[str, Any] = {
        "benchmark": name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "storage": storage_kind(),
        "records": records,
    }
    if summary is not None:
        payload["summary"] = summary
    path = output_path(name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"\nwrote {path}")
    return path


def ops_snapshot(semiring, run: Callable[[Any], Any]) -> Dict[str, int]:
    """Semiring-op counts of ``run(instrumented)`` over a counting wrapper.

    ``run`` receives an annotation-identical instrumented view of
    ``semiring`` and should execute the representative workload against it
    (instrumented and plain relations interoperate -- semirings are compared
    by name).  Returns the ``plus``/``times``/``is_zero`` call counts.
    """
    from repro.obs import InstrumentedSemiring, OpCounter

    ops = OpCounter()
    run(InstrumentedSemiring(semiring, ops))
    return ops.snapshot()


def consing_snapshot(run: Callable[[], Any]) -> Dict[str, float]:
    """Circuit hash-consing hits/misses/hit-rate accumulated during ``run()``."""
    from repro.obs.metrics import consing

    was_enabled = consing.enabled
    before_hits, before_misses = consing.hits, consing.misses
    consing.enabled = True
    try:
        run()
    finally:
        consing.enabled = was_enabled
    hits = consing.hits - before_hits
    misses = consing.misses - before_misses
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }
