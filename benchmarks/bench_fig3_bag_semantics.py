"""E3 / Figure 3: bag-semantics evaluation (multiplicities 8, 10, 10, 55, 7)."""

from conftest import report

from repro.workloads import figure3_bag_database, section2_query

EXPECTED = {("a", "c"): 8, ("a", "e"): 10, ("d", "c"): 10, ("d", "e"): 55, ("f", "e"): 7}


def test_fig3_bag_multiplicities(benchmark):
    database = figure3_bag_database()
    query = section2_query()
    result = benchmark(lambda: query.evaluate(database))
    rows = []
    for tup, multiplicity in sorted(result.items(), key=lambda kv: str(kv[0])):
        key = (tup["a"], tup["c"])
        assert multiplicity == EXPECTED[key]
        rows.append(f"{key[0]} {key[1]}   {multiplicity}")
    report("Figure 3(b): bag-semantics result of q", rows)
