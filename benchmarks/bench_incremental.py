"""S5: incremental view maintenance vs full recomputation.

Replays random update streams against materialized positive-algebra views
(:class:`repro.incremental.MaterializedView`) and an incrementally
maintained datalog fixpoint (:class:`repro.incremental.IncrementalDatalog`),
timing the maintained path against recomputing the result from scratch after
every batch.  A dedicated deletion series removes single facts from the
largest maintained TC fixpoint and times the delete/rederive (DRed) pass
against rebuilding the engine from the post-delete database.  Every instance
cross-checks the two paths tuple-for-tuple, so the benchmark doubles as an
end-to-end differential test; the acceptance bars are a >= 5x incremental
win on the largest update-stream instance and a >= 5x single-fact deletion
win over rebuild.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_incremental.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py``.
"""

import time

from conftest import check_speedup, report
from reporting import emit, ops_snapshot

from repro.algebra.ast import Q
from repro.datalog import evaluate_program
from repro.incremental import IncrementalDatalog, MaterializedView, apply_batch_to_database
from repro.semirings import IntegerRing, NaturalsSemiring, TropicalSemiring
from repro.workloads import (
    chain_graph_database,
    random_edge_insert_stream,
    random_graph_database,
    random_update_stream,
    star_join_database,
    transitive_closure_program,
)

#: The RA instance series: (semiring, fact tuples, batches, deletes per batch).
#: Deletions ride along only on the ring instance (Z), where they propagate
#: incrementally; the last entry is "the largest update-stream instance" the
#: acceptance criterion refers to.
RA_INSTANCES = [
    (NaturalsSemiring(), 400, 10, 0),
    (IntegerRing(), 800, 12, 2),
    (TropicalSemiring(), 1500, 15, 0),
    (NaturalsSemiring(), 4000, 25, 0),
]

SEED = 5

#: The star-schema comparison view: F ⋈ D1 ⋈ D2 projected on (a, x, y).
VIEW_QUERY = (
    Q.relation("F").join(Q.relation("D1")).join(Q.relation("D2")).project("a", "x", "y")
)


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _ra_record(semiring, fact_tuples, batches, deletes_per_batch):
    database = star_join_database(
        semiring,
        fact_tuples=fact_tuples,
        dimension_tuples=max(20, fact_tuples // 50),
        domain_size=max(15, fact_tuples // 20),
        seed=SEED,
    )
    shadow = database.copy()
    stream = random_update_stream(
        database,
        batches=batches,
        inserts_per_batch=4,
        deletes_per_batch=deletes_per_batch,
        domain_size=max(15, fact_tuples // 20),
        seed=SEED + 1,
        relation_names=["F"],
    )

    view, build_time = _timed(lambda: MaterializedView(VIEW_QUERY, database))
    incremental_time = 0.0
    recompute_time = 0.0
    recomputed = None
    for batch in stream:
        _, elapsed = _timed(lambda: view.apply(batch))
        incremental_time += elapsed

        def full():
            apply_batch_to_database(shadow, batch)
            return VIEW_QUERY.evaluate(shadow)

        recomputed, elapsed = _timed(full)
        recompute_time += elapsed
    assert recomputed is not None and view.relation.equal_to(recomputed), (
        f"incremental view diverged from recompute ({semiring.name}, "
        f"fact_tuples={fact_tuples})"
    )
    return {
        "tag": (
            f"star view on {semiring.name} (F={fact_tuples}, "
            f"{len(stream)} batches, {deletes_per_batch} deletes/batch)"
        ),
        "build_time": build_time,
        "incremental_time": incremental_time,
        "recompute_time": recompute_time,
        "view_tuples": len(view.relation),
    }


def _datalog_record(semiring, nodes, batches):
    database = random_graph_database(
        semiring, nodes=nodes, edge_probability=0.12, seed=SEED
    )
    program = transitive_closure_program()
    stream = random_edge_insert_stream(
        semiring, nodes=nodes, batches=batches, edges_per_batch=2, seed=SEED + 2
    )

    maintained, build_time = _timed(lambda: IncrementalDatalog(program, database))
    incremental_time = 0.0
    recompute_time = 0.0
    fresh = None
    for batch in stream:
        _, elapsed = _timed(lambda: maintained.insert("R", batch))
        incremental_time += elapsed
        fresh, elapsed = _timed(
            lambda: evaluate_program(program, database, engine="seminaive")
        )
        recompute_time += elapsed
    assert fresh is not None and maintained.result.annotations == fresh.annotations, (
        f"incremental datalog diverged from fresh evaluation ({semiring.name})"
    )
    return {
        "tag": f"TC maintenance on {semiring.name} (nodes={nodes}, {batches} batches)",
        "build_time": build_time,
        "incremental_time": incremental_time,
        "recompute_time": recompute_time,
        "view_tuples": len(maintained.result.annotations),
    }


def _deletion_record(semiring, length, deletions):
    """Single-fact deletions from a maintained TC fixpoint vs full rebuild.

    The maintained engine runs its delete/rederive (DRed) pass per removed
    edge; the baseline re-evaluates the whole program from the post-delete
    database -- exactly what ``remove`` used to do before deletions became
    incremental.  The instance is the TC of a long chain (the biggest
    fixpoint this benchmark builds: ``length * (length + 1) / 2`` tuples),
    deleting tail edges whose doomed cone is small -- the regime DRed is
    for; a deletion's cost tracks the affected atoms, not the fixpoint size.
    The right-linear TC variant keeps the re-derivation head-driven plans
    probing the EDB edge relation first (O(out-degree) work per doomed
    atom); the quadratic rule would enumerate the closure instead.  Every
    step cross-checks the two annotation maps.
    """
    database = chain_graph_database(semiring, length=length, seed=SEED)
    program = transitive_closure_program(linear=True)
    maintained, build_time = _timed(lambda: IncrementalDatalog(program, database))
    incremental_time = 0.0
    recompute_time = 0.0
    for index in range(deletions):
        edge = (f"n{length - 1 - index}", f"n{length - index}")
        _, elapsed = _timed(lambda: maintained.remove("R", [edge]))
        incremental_time += elapsed
        assert maintained.last_delete_mode == "dred"
        fresh, elapsed = _timed(
            lambda: evaluate_program(program, database, engine="seminaive")
        )
        recompute_time += elapsed
        assert maintained.result.annotations == fresh.annotations, (
            f"incremental deletion diverged from fresh evaluation "
            f"({semiring.name}, length={length}, deleted {edge})"
        )
    return {
        "tag": (
            f"TC single-fact deletion on {semiring.name} "
            f"(chain length={length}, {deletions} deletions)"
        ),
        "build_time": build_time,
        "incremental_time": incremental_time,
        "recompute_time": recompute_time,
        "view_tuples": len(maintained.result.annotations),
    }


def _speedup(record):
    return record["recompute_time"] / max(record["incremental_time"], 1e-9)


def _lines(record):
    return [
        f"{record['tag']}: {record['view_tuples']} maintained tuples",
        f"  initial build {record['build_time'] * 1e3:8.1f} ms",
        f"  recompute     {record['recompute_time'] * 1e3:8.1f} ms over the stream",
        f"  incremental   {record['incremental_time'] * 1e3:8.1f} ms over the stream"
        f"  ({_speedup(record):.1f}x faster)",
    ]


#: The deletion series instance: (semiring, chain length, deletions) -- the
#: largest maintained TC fixpoint the benchmark builds, from which single
#: facts are removed one at a time.
DELETION_INSTANCE = (TropicalSemiring(), 200, 10)


def test_incremental_matches_recompute_across_series():
    lines = []
    for semiring, fact_tuples, batches, deletes in RA_INSTANCES[:-1]:
        lines.extend(_lines(_ra_record(semiring, fact_tuples, batches, deletes)))
    lines.extend(_lines(_datalog_record(TropicalSemiring(), 24, 8)))
    report("S5: incremental maintenance vs recompute (series)", lines)


def test_incremental_beats_recompute_on_largest_instance():
    semiring, fact_tuples, batches, deletes = RA_INSTANCES[-1]
    record = _ra_record(semiring, fact_tuples, batches, deletes)
    report("S5: incremental vs recompute (largest update-stream instance)", _lines(record))
    check_speedup(
        _speedup(record), 5.0, "incremental win on the largest update-stream instance"
    )


def test_single_fact_deletion_beats_rebuild():
    semiring, length, deletions = DELETION_INSTANCE
    record = _deletion_record(semiring, length, deletions)
    report("S5: incremental deletion (DRed) vs rebuild", _lines(record))
    check_speedup(
        _speedup(record), 5.0, "single-fact deletion win over from-scratch rebuild"
    )


def _maintenance_ops(semiring, fact_tuples, batches, deletes_per_batch):
    """Semiring-op counts of maintaining the star view over the stream."""

    def run(instrumented):
        database = star_join_database(
            instrumented,
            fact_tuples=fact_tuples,
            dimension_tuples=max(20, fact_tuples // 50),
            domain_size=max(15, fact_tuples // 20),
            seed=SEED,
        )
        stream = random_update_stream(
            database,
            batches=batches,
            inserts_per_batch=4,
            deletes_per_batch=deletes_per_batch,
            domain_size=max(15, fact_tuples // 20),
            seed=SEED + 1,
            relation_names=["F"],
        )
        view = MaterializedView(VIEW_QUERY, database)
        for batch in stream:
            view.apply(batch)

    return ops_snapshot(semiring, run)


def main() -> None:
    records = [
        _ra_record(semiring, fact_tuples, batches, deletes)
        for semiring, fact_tuples, batches, deletes in RA_INSTANCES
    ]
    records.append(_datalog_record(TropicalSemiring(), 24, 8))
    deletion_semiring, deletion_length, deletion_count = DELETION_INSTANCE
    deletion = _deletion_record(deletion_semiring, deletion_length, deletion_count)
    records.append(deletion)
    for record in records:
        record["speedup"] = _speedup(record)
        for line in _lines(record):
            print(line)
    largest = records[len(RA_INSTANCES) - 1]
    print(f"\nlargest-instance incremental win: {_speedup(largest):.1f}x (need >= 5x)")
    print(f"single-fact deletion win over rebuild: {_speedup(deletion):.1f}x (need >= 5x)")
    ops_semiring, ops_facts, ops_batches, ops_deletes = RA_INSTANCES[0]
    emit(
        "incremental",
        records,
        summary={
            "largest_speedup": _speedup(largest),
            "deletion_speedup": _speedup(deletion),
            "required_speedup": 5.0,
            "deletion_instance": {
                "semiring": deletion_semiring.name,
                "chain_length": deletion_length,
                "deletions": deletion_count,
            },
            "ra_instances": [
                {"semiring": s.name, "facts": f, "batches": b, "deletes": d}
                for s, f, b, d in RA_INSTANCES
            ],
            "semiring_ops": {
                "workload": (
                    f"view maintenance ({ops_semiring.name}, facts={ops_facts}, "
                    f"batches={ops_batches})"
                ),
                **_maintenance_ops(ops_semiring, ops_facts, ops_batches, ops_deletes),
            },
        },
    )
    check_speedup(
        _speedup(largest), 5.0, "incremental win on the largest update-stream instance"
    )
    check_speedup(
        _speedup(deletion), 5.0, "single-fact deletion win over from-scratch rebuild"
    )


if __name__ == "__main__":
    main()
