"""S2: datalog transitive closure on synthetic graphs across semirings,
plus the linear-vs-quadratic recursion ablation.

The ablation shows a design point the paper leaves implicit: the *rule shape*
changes provenance (the quadratic rule re-brackets paths into many derivation
trees) but not the Boolean answer, and the fixpoint engine's cost tracks the
annotation structure, not just the relation sizes.
"""

import pytest
from conftest import report

from repro.datalog import all_trees, evaluate
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    FuzzySemiring,
    TropicalSemiring,
)
from repro.workloads import (
    chain_graph_database,
    dag_database,
    random_graph_database,
    transitive_closure_program,
)

SEMIRINGS = [
    BooleanSemiring(),
    CompletedNaturalsSemiring(),
    TropicalSemiring(),
    FuzzySemiring(),
]


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_transitive_closure_random_graph(benchmark, semiring):
    database = random_graph_database(semiring, nodes=16, edge_probability=0.18, seed=9)
    program = transitive_closure_program()
    result = benchmark(lambda: evaluate(program, database))
    assert len(result) > 0
    report(
        "S2: transitive closure on a random 16-node graph (timings per semiring above)",
        ["cyclic graphs diverge under N∞ only where reachability passes through a cycle"],
    )


@pytest.mark.parametrize("linear", [False, True], ids=["quadratic-rule", "linear-rule"])
def test_rule_shape_ablation_on_chain(benchmark, linear):
    """Ablation: same answer, different provenance/derivation structure."""
    natinf = CompletedNaturalsSemiring()
    database = chain_graph_database(natinf, length=14).map_annotations(
        lambda _: natinf.one(), natinf
    )
    program = transitive_closure_program(linear=linear)
    result = benchmark(lambda: evaluate(program, database))
    multiplicity = result.annotation(("n0", "n13"))
    if linear:
        assert multiplicity.finite_value() == 1
    else:
        assert multiplicity.finite_value() > 100  # Catalan-many re-bracketings


@pytest.mark.parametrize("layers", [3, 4, 5], ids=lambda n: f"layers={n}")
def test_all_trees_scaling_on_dags(benchmark, layers):
    """All-Trees provenance on layered DAGs: polynomial sizes grow with depth."""
    natinf = CompletedNaturalsSemiring()
    database = dag_database(natinf, layers=layers, width=3)
    program = transitive_closure_program(linear=True)
    result = benchmark(lambda: all_trees(program, database))
    assert not result.infinite
