"""Knowledge compilation: exact TC probabilities beyond enumeration reach.

Computes exact output-tuple probabilities for the transitive closure of a
random tuple-independent uncertain graph two ways: ``method="compile"``
(knowledge-compile the provenance lineage into an ordered decision diagram,
weighted-model-count it) and ``method="enumerate"`` (intensional evaluation
over the explicit ``2^n`` possible-world space).  Every common instance
cross-checks the two paths probability-for-probability, so the benchmark
doubles as an end-to-end differential test; the acceptance bars are a
>= 5x compile win at the largest instance enumeration can still handle, and
a compile-only series with >= 2x more uncertain tuples than the enumeration
cap (2^28 worlds -- far beyond materializing) that completes exactly,
anchored by a closed-form chain instance.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_compile.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_compile.py``.
"""

import random
import time

from conftest import check_speedup, report
from reporting import emit

from repro.probabilistic import ProbabilisticDatabase

#: Uncertain-edge counts where both paths run; the last entry is "the
#: largest common instance" of the >= 5x acceptance floor (2^14 worlds).
COMMON_EDGE_COUNTS = [8, 10, 12, 14]

#: Compile-only edge counts -- at least 2x the enumeration cap above.
#: 2^28 worlds is far beyond anything the enumeration path could hold.
SCALE_EDGE_COUNTS = [28, 40]

REQUIRED_SPEEDUP = 5.0

SEED = 7

PROGRAM = "Q(x,y) :- R(x,y).\nQ(x,z) :- Q(x,y), R(y,z)."


def _tc_pdb(edges: int, seed: int = SEED) -> ProbabilisticDatabase:
    """A random uncertain digraph: ``edges`` tuple-independent edges."""
    rng = random.Random(seed)
    nodes = max(4, edges // 2)
    pairs = [(f"n{u}", f"n{v}") for u in range(nodes) for v in range(nodes) if u != v]
    rng.shuffle(pairs)
    pdb = ProbabilisticDatabase()
    pdb.add_relation(
        "R",
        ["x", "y"],
        [
            (pair, f"e{i}", round(rng.uniform(0.3, 0.95), 2))
            for i, pair in enumerate(pairs[:edges])
        ],
    )
    return pdb


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _common_record(edges: int) -> dict:
    compiled, compile_time = _timed(
        lambda: _tc_pdb(edges).datalog_probabilities(PROGRAM)
    )
    enumerated, enumerate_time = _timed(
        lambda: _tc_pdb(edges).datalog_probabilities(PROGRAM, method="enumerate")
    )
    assert set(compiled) == set(enumerated), f"answer sets diverged at {edges} edges"
    for tup, probability in enumerated.items():
        assert abs(compiled[tup] - probability) < 1e-9, (
            f"probability diverged on {tup} at {edges} edges"
        )
    return {
        "tag": f"TC probabilities, {edges} uncertain edges (2^{edges} worlds)",
        "edges": edges,
        "answers": len(compiled),
        "compile_time": compile_time,
        "enumerate_time": enumerate_time,
    }


def _scale_record(edges: int) -> dict:
    """Compile-only: the world space must never be materialized."""
    pdb = _tc_pdb(edges)
    probabilities, compile_time = _timed(lambda: pdb.datalog_probabilities(PROGRAM))
    assert pdb._space is None, "compiled path touched the 2^n world space"
    assert all(0.0 <= p <= 1.0 + 1e-12 for p in probabilities.values())
    return {
        "tag": f"TC probabilities, {edges} uncertain edges (compile only)",
        "edges": edges,
        "answers": len(probabilities),
        "compile_time": compile_time,
        "enumerate_time": None,
    }


def _chain_anchor(length: int = 40) -> dict:
    """Closed form: on an uncertain chain, Pr(n0 ~> nk) = prod of edge marginals."""
    from repro.relations import Tup

    pdb = ProbabilisticDatabase()
    pdb.add_relation(
        "R",
        ["x", "y"],
        [((f"n{i}", f"n{i + 1}"), f"w{i}", 0.9) for i in range(length)],
    )
    probabilities, compile_time = _timed(lambda: pdb.datalog_probabilities(PROGRAM))
    assert len(probabilities) == length * (length + 1) // 2
    assert abs(probabilities[Tup(x="n0", y=f"n{length}")] - 0.9**length) < 1e-9
    return {
        "tag": f"chain anchor, {length} edges: Pr(n0~>n{length}) = 0.9^{length}",
        "edges": length,
        "answers": len(probabilities),
        "compile_time": compile_time,
        "enumerate_time": None,
    }


def _compile_stats(edges: int) -> dict:
    """Compilation counters (node counts, cache hit rate) for one instance."""
    from repro.circuits.compile import clear_compile_cache
    from repro.obs.metrics import compilation

    clear_compile_cache()
    before = compilation.snapshot()
    _tc_pdb(edges).datalog_probabilities(PROGRAM)
    return compilation.delta(before)


def _speedup(record) -> float:
    if record["enumerate_time"] is None:
        return float("nan")
    return record["enumerate_time"] / max(record["compile_time"], 1e-9)


def _lines(record) -> list:
    lines = [
        f"{record['tag']}: {record['answers']} answers",
        f"  compile    {record['compile_time'] * 1e3:8.1f} ms",
    ]
    if record["enumerate_time"] is not None:
        lines.append(
            f"  enumerate  {record['enumerate_time'] * 1e3:8.1f} ms"
            f"  ({_speedup(record):.1f}x slower)"
        )
    return lines


def test_compile_matches_enumeration_across_series():
    lines = []
    for edges in COMMON_EDGE_COUNTS[:-1]:
        lines.extend(_lines(_common_record(edges)))
    report("KC: compiled vs enumerated TC probabilities (series)", lines)


def test_compile_beats_enumeration_on_largest_common_instance():
    record = _common_record(COMMON_EDGE_COUNTS[-1])
    report("KC: compile vs enumerate (largest common instance)", _lines(record))
    check_speedup(
        _speedup(record), REQUIRED_SPEEDUP, "compile win on the largest common instance"
    )


def test_compile_scales_beyond_enumeration():
    lines = []
    for edges in SCALE_EDGE_COUNTS:
        lines.extend(_lines(_scale_record(edges)))
    lines.extend(_lines(_chain_anchor()))
    report("KC: beyond enumeration reach (compile only)", lines)


def main() -> None:
    records = [_common_record(edges) for edges in COMMON_EDGE_COUNTS]
    records.extend(_scale_record(edges) for edges in SCALE_EDGE_COUNTS)
    records.append(_chain_anchor())
    for record in records:
        record["speedup"] = _speedup(record)
        for line in _lines(record):
            print(line)
    largest = records[len(COMMON_EDGE_COUNTS) - 1]
    print(
        f"\nlargest-common-instance compile win: {_speedup(largest):.1f}x "
        f"(need >= {REQUIRED_SPEEDUP:g}x)"
    )
    emit(
        "compile",
        records,
        summary={
            "largest_speedup": _speedup(largest),
            "required_speedup": REQUIRED_SPEEDUP,
            "common_edge_counts": COMMON_EDGE_COUNTS,
            "scale_edge_counts": SCALE_EDGE_COUNTS,
            "compilation": _compile_stats(COMMON_EDGE_COUNTS[-1]),
        },
    )
    check_speedup(
        _speedup(largest), REQUIRED_SPEEDUP, "compile win on the largest common instance"
    )


if __name__ == "__main__":
    main()
