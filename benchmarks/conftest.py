"""Shared helpers for the benchmark harness.

Every ``bench_figN_*.py`` regenerates the corresponding figure of the paper:
the benchmarked callable returns the reproduced rows, which are printed once
(per benchmark) in the same shape the paper reports, and asserted against the
expected values so a benchmark run doubles as a reproduction check.
"""

from __future__ import annotations

_printed: set[str] = set()


def report(title: str, lines: list[str]) -> None:
    """Print a reproduced table exactly once per benchmark session."""
    if title in _printed:
        return
    _printed.add(title)
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(f"  {line}")
