"""Shared helpers for the benchmark harness.

Every ``bench_figN_*.py`` regenerates the corresponding figure of the paper:
the benchmarked callable returns the reproduced rows, which are printed once
(per benchmark) in the same shape the paper reports, and asserted against the
expected values so a benchmark run doubles as a reproduction check.

Speedup thresholds
------------------
The performance benchmarks assert absolute speedup floors (>=3x planner,
>=5x circuits/semi-naive/incremental, >=3x engine).  Wall-clock ratios flake
on loaded shared runners, so the *hard* assertions are gated behind
``REPRO_BENCH_STRICT=1`` -- set in CI's dedicated bench job, where the
machine is quiet -- and degrade to a loud warning everywhere else
(:func:`check_speedup`).  Correctness cross-checks inside the benchmarks
always assert.
"""

from __future__ import annotations

import os

_printed: set[str] = set()


def strict_benchmarks() -> bool:
    """Whether speedup floors are hard assertions (``REPRO_BENCH_STRICT=1``)."""
    return os.environ.get("REPRO_BENCH_STRICT") == "1"


def check_speedup(actual: float, required: float, label: str) -> None:
    """Enforce (strict mode) or warn about (default) a speedup floor."""
    if actual >= required:
        return
    message = (
        f"{label}: expected a >={required:g}x speedup, got {actual:.2f}x"
    )
    if strict_benchmarks():
        raise AssertionError(message)
    print(f"WARNING [REPRO_BENCH_STRICT off, not failing]: {message}")


def report(title: str, lines: list[str]) -> None:
    """Print a reproduced table exactly once per benchmark session."""
    if title in _printed:
        return
    _printed.add(title)
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(f"  {line}")
