"""S8: observability overhead -- tracing off must cost <= 5%.

The engine is permanently instrumented (span gates in ``execute``, an
``observer`` slot per physical operator, an ``enabled`` check per kernel
call), so the question this benchmark answers is: what do those dormant
hooks cost?  It times the ordinary tracing-off execution path against a
*bare* drain of the same compiled plan -- ``compile_query`` + the pipeline
breaker with no span bookkeeping around it -- on ``bench_engine.py``'s
largest two-hop instance (N, 4000 edges).  Runs are interleaved and the
minimum of several repetitions is compared, which cancels cache and
scheduler noise; the acceptance bar is a ratio <= 1.05 (hard-asserted only
under ``REPRO_BENCH_STRICT=1``, like every wall-clock floor in this suite).

The tracing-*on* ratio is also measured (in-memory sink attached) and
reported for information -- enabled tracing is allowed to cost more; only
the disabled fast path has a budget.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py``.
"""

import time

from conftest import report, strict_benchmarks
from reporting import emit

from repro.algebra.ast import Q
from repro.engine.compile import compile_query, drain, execute
from repro.obs import tracing
from repro.relations.database import Database
from repro.semirings import NaturalsSemiring
from repro.workloads import random_relation

#: bench_engine.py's largest two-hop instance.
EDGES, DOMAIN = 4000, 120
SEED = 13
REPETITIONS = 7
BUDGET = 1.05  # <= 5% tracing-off overhead


def _database():
    semiring = NaturalsSemiring()
    database = Database(semiring)
    database.register(
        "E",
        random_relation(
            semiring, ["a", "b"], num_tuples=EDGES, domain_size=DOMAIN, seed=SEED
        ),
    )
    return database


def _query():
    return (
        Q.relation("E")
        .join(Q.relation("E").rename({"a": "b", "b": "c"}))
        .project("a", "c")
    )


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _measure():
    database = _database()
    plan = _query().optimized(database)

    def bare():
        # The minimal path: compile + breaker, no span gates around them.
        drain(compile_query(plan, database), database)

    def instrumented_off():
        # The ordinary path: execute() with tracing disabled (the fast path
        # every normal caller takes).
        execute(plan, database)

    def instrumented_on():
        with tracing():
            execute(plan, database)

    bare_times, off_times, on_times = [], [], []
    for repetition in range(REPETITIONS):
        # Interleave so drift (thermal, allocator growth) hits all three, and
        # alternate the bare/off order so neither side systematically runs in
        # the (slightly favored) first slot of a pair.
        if repetition % 2 == 0:
            bare_times.append(_timed(bare))
            off_times.append(_timed(instrumented_off))
        else:
            off_times.append(_timed(instrumented_off))
            bare_times.append(_timed(bare))
        on_times.append(_timed(instrumented_on))

    bare_best, off_best, on_best = min(bare_times), min(off_times), min(on_times)
    return {
        "tag": f"two-hop reachability (N, edges={EDGES}, domain={DOMAIN})",
        "bare_time": bare_best,
        "tracing_off_time": off_best,
        "tracing_on_time": on_best,
        "tracing_off_ratio": off_best / max(bare_best, 1e-9),
        "tracing_on_ratio": on_best / max(bare_best, 1e-9),
        "repetitions": REPETITIONS,
    }


def _lines(record):
    return [
        f"{record['tag']} (min of {record['repetitions']} interleaved runs)",
        f"  bare compile+drain   {record['bare_time'] * 1e3:8.1f} ms",
        f"  tracing off          {record['tracing_off_time'] * 1e3:8.1f} ms"
        f"  ({(record['tracing_off_ratio'] - 1) * 100:+.1f}%, budget +5%)",
        f"  tracing on           {record['tracing_on_time'] * 1e3:8.1f} ms"
        f"  ({(record['tracing_on_ratio'] - 1) * 100:+.1f}%, informative)",
    ]


def _check_budget(ratio):
    message = (
        f"tracing-off overhead {(ratio - 1) * 100:+.1f}% exceeds the "
        f"{(BUDGET - 1) * 100:.0f}% budget"
    )
    if ratio <= BUDGET:
        return
    if strict_benchmarks():
        raise AssertionError(message)
    print(f"WARNING [REPRO_BENCH_STRICT off, not failing]: {message}")


def test_tracing_off_overhead_within_budget():
    record = _measure()
    report("S8: observability overhead (tracing off)", _lines(record))
    _check_budget(record["tracing_off_ratio"])


def main() -> None:
    record = _measure()
    for line in _lines(record):
        print(line)
    emit(
        "obs_overhead",
        [record],
        summary={
            "tracing_off_ratio": record["tracing_off_ratio"],
            "tracing_on_ratio": record["tracing_on_ratio"],
            "budget_ratio": BUDGET,
        },
    )
    _check_budget(record["tracing_off_ratio"])


if __name__ == "__main__":
    main()
