"""E1 / Figure 1: possible worlds of the query over the maybe-table.

Regenerates Figure 1(c): the eight answer worlds of ``q`` over the three
optional tuples, and checks that the world set is *not* representable by a
maybe-table (the paper's motivation for c-tables).
"""

from conftest import report

from repro.incomplete import MaybeTable, answer_world_set
from repro.workloads import figure1_maybe_table, figure2_ctable_input, section2_query


def _answer_worlds():
    query = section2_query()
    table = figure2_ctable_input()
    return answer_world_set(query, table, "R", variables=["b1", "b2", "b3"])


def test_fig1_possible_worlds(benchmark):
    worlds = benchmark(_answer_worlds)
    assert len(worlds) == 8
    assert not MaybeTable.can_represent(sorted(worlds, key=len))
    rendered = sorted(
        "{" + ", ".join(sorted(f"({t['a']},{t['c']})" for t in world)) + "}" for world in worlds
    )
    report(
        "Figure 1(c): answer worlds of q over the maybe-table",
        rendered + ["not representable as a maybe-table: True"],
    )


def test_fig1_maybe_table_expansion(benchmark):
    table = figure1_maybe_table()
    worlds = benchmark(lambda: list(table.possible_worlds()))
    assert len(worlds) == 8
