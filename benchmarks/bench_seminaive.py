"""S4: semi-naive vs naive datalog engine.

Times both engines of :func:`repro.datalog.evaluate_program` on the
transitive-closure workloads of ``bench_scaling_datalog.py``, scaled up to
graph sizes where the naive engine's ground-everything-then-iterate strategy
hits its wall.  The acceptance bar for this file is a >= 5x semi-naive win
on the largest instance of the series (every run also cross-checks that the
two engines produced identical annotations, so the benchmark doubles as an
end-to-end equivalence test).

A second series compares the semi-naive engine against itself across the
two storage backends (``storage="row"`` vs ``storage="columnar"``) on much
larger graphs: the columnar backend batches whole rounds through the
vectorized linear-join kernel (:func:`repro.engine.vectorized.fire_linear_join`)
instead of descending per derivation.  Its acceptance bar is a >= 5x
columnar-over-row win on the largest instance; the series needs a numpy
runtime and is skipped (with a visible note) without one.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_seminaive.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_seminaive.py``.
"""

import time

from conftest import check_speedup, report
from reporting import emit, ops_snapshot

from repro.datalog import evaluate_program
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    TropicalSemiring,
)
from repro.workloads import random_graph_database, transitive_closure_program

#: The instance series: (semiring, node count).  The last entry is "the
#: largest scaling instance" the acceptance criterion refers to.
INSTANCES = [
    (BooleanSemiring(), 12),
    (CompletedNaturalsSemiring(), 16),
    (TropicalSemiring(), 16),
    (BooleanSemiring(), 16),
    (TropicalSemiring(), 24),
]

#: The columnar-vs-row series: both sides run the semi-naive engine on the
#: same graph, differing only in ``storage=``.  Sized well past where the
#: naive engine could follow; the last entry is the largest instance the
#: >= 5x acceptance bar refers to.
COLUMNAR_INSTANCES = [
    (BooleanSemiring(), 64),
    (TropicalSemiring(), 64),
    (TropicalSemiring(), 80),
]

EDGE_PROBABILITY = 0.18
SEED = 9


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _record(semiring, nodes):
    database = random_graph_database(
        semiring, nodes=nodes, edge_probability=EDGE_PROBABILITY, seed=SEED
    )
    program = transitive_closure_program()
    naive, naive_time = _timed(lambda: evaluate_program(program, database))
    seminaive, seminaive_time = _timed(
        lambda: evaluate_program(program, database, engine="seminaive")
    )
    assert naive.annotations == seminaive.annotations, (
        f"engines disagree on {semiring.name}, nodes={nodes}"
    )
    return {
        "tag": f"TC on random graph ({semiring.name}, nodes={nodes})",
        "naive_time": naive_time,
        "seminaive_time": seminaive_time,
        "naive_rounds": naive.iterations,
        "seminaive_rounds": seminaive.iterations,
        "tuples": len(seminaive.annotations),
    }


def _columnar_record(semiring, nodes):
    database = random_graph_database(
        semiring, nodes=nodes, edge_probability=EDGE_PROBABILITY, seed=SEED
    )
    program = transitive_closure_program()
    row, row_time = _timed(
        lambda: evaluate_program(program, database, engine="seminaive", storage="row")
    )
    columnar, columnar_time = _timed(
        lambda: evaluate_program(
            program, database, engine="seminaive", storage="columnar"
        )
    )
    assert row.annotations == columnar.annotations, (
        f"storage backends disagree on {semiring.name}, nodes={nodes}"
    )
    return {
        "tag": f"TC columnar vs row ({semiring.name}, nodes={nodes})",
        "row_time": row_time,
        "columnar_time": columnar_time,
        "rounds": columnar.iterations,
        "baseline_storage": "row",
        "contender_storage": "columnar",
        "tuples": len(columnar.annotations),
    }


def _columnar_speedup(record):
    return record["row_time"] / max(record["columnar_time"], 1e-9)


def _columnar_lines(record):
    return [
        f"{record['tag']}: {record['tuples']} derived tuples in {record['rounds']} rounds",
        f"  seminaive, row backend      {record['row_time'] * 1e3:8.1f} ms",
        f"  seminaive, columnar backend {record['columnar_time'] * 1e3:8.1f} ms"
        f"  ({_columnar_speedup(record):.1f}x faster, whole-column rounds)",
    ]


def _vector_runtime() -> bool:
    from repro.engine.vectorized import numpy_available

    return numpy_available()


def _lines(record):
    ratio = record["naive_time"] / max(record["seminaive_time"], 1e-9)
    return [
        f"{record['tag']}: {record['tuples']} derived tuples",
        f"  naive     {record['naive_time'] * 1e3:8.1f} ms in {record['naive_rounds']} rounds",
        f"  seminaive {record['seminaive_time'] * 1e3:8.1f} ms in {record['seminaive_rounds']} rounds  ({ratio:.1f}x faster)",
    ]


def _speedup(record):
    return record["naive_time"] / max(record["seminaive_time"], 1e-9)


def test_seminaive_matches_naive_across_series():
    lines = []
    for semiring, nodes in INSTANCES[:-1]:
        lines.extend(_lines(_record(semiring, nodes)))
    report("S4: semi-naive vs naive datalog engine (series)", lines)


def test_seminaive_beats_naive_on_largest_instance():
    semiring, nodes = INSTANCES[-1]
    record = _record(semiring, nodes)
    report("S4: semi-naive vs naive (largest scaling instance)", _lines(record))
    check_speedup(_speedup(record), 5.0, "semi-naive win on the largest instance")


def test_columnar_backend_matches_row_backend_across_series():
    import pytest

    if not _vector_runtime():
        pytest.skip("columnar vectorized rounds need a numpy runtime")
    lines = []
    for semiring, nodes in COLUMNAR_INSTANCES[:-1]:
        lines.extend(_columnar_lines(_columnar_record(semiring, nodes)))
    report("S4: semi-naive columnar vs row storage (series)", lines)


def test_columnar_backend_beats_row_backend_on_largest_instance():
    import pytest

    if not _vector_runtime():
        pytest.skip("columnar vectorized rounds need a numpy runtime")
    semiring, nodes = COLUMNAR_INSTANCES[-1]
    record = _columnar_record(semiring, nodes)
    report(
        "S4: semi-naive columnar vs row storage (largest instance)",
        _columnar_lines(record),
    )
    check_speedup(
        _columnar_speedup(record), 5.0, "columnar-over-row win on the largest instance"
    )


def _seminaive_ops(semiring, nodes):
    """Semiring-op counts of the semi-naive fixpoint (deterministic)."""

    def run(instrumented):
        database = random_graph_database(
            instrumented, nodes=nodes, edge_probability=EDGE_PROBABILITY, seed=SEED
        )
        evaluate_program(transitive_closure_program(), database, engine="seminaive")

    return ops_snapshot(semiring, run)


def main() -> None:
    records = [_record(semiring, nodes) for semiring, nodes in INSTANCES]
    for record in records:
        record["speedup"] = _speedup(record)
        for line in _lines(record):
            print(line)
    largest = records[-1]
    print(f"\nlargest-instance semi-naive win: {_speedup(largest):.1f}x (need >= 5x)")

    columnar_records = []
    if _vector_runtime():
        for semiring, nodes in COLUMNAR_INSTANCES:
            record = _columnar_record(semiring, nodes)
            record["speedup"] = _columnar_speedup(record)
            columnar_records.append(record)
            for line in _columnar_lines(record):
                print(line)
        print(
            f"\nlargest-instance columnar win: "
            f"{_columnar_speedup(columnar_records[-1]):.1f}x (need >= 5x)"
        )
    else:
        print("\ncolumnar series skipped: no numpy runtime for the vectorized rounds")

    ops_semiring, ops_nodes = INSTANCES[0]
    summary = {
        "largest_speedup": _speedup(largest),
        "required_speedup": 5.0,
        "instances": [{"semiring": s.name, "nodes": n} for s, n in INSTANCES],
        "columnar_instances": [
            {"semiring": s.name, "nodes": n} for s, n in COLUMNAR_INSTANCES
        ],
        "semiring_ops": {
            "workload": f"semi-naive TC ({ops_semiring.name}, nodes={ops_nodes})",
            **_seminaive_ops(ops_semiring, ops_nodes),
        },
    }
    if columnar_records:
        summary["largest_columnar_speedup"] = _columnar_speedup(columnar_records[-1])
        summary["required_columnar_speedup"] = 5.0
    emit("seminaive", records + columnar_records, summary=summary)
    check_speedup(_speedup(largest), 5.0, "semi-naive win on the largest instance")
    if columnar_records:
        check_speedup(
            _columnar_speedup(columnar_records[-1]),
            5.0,
            "columnar-over-row win on the largest instance",
        )


if __name__ == "__main__":
    main()
